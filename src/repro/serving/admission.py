"""Admission control: bound how much work the front door accepts.

Under open-loop traffic ("heavy traffic from millions of users") the queue
of admitted-but-unfinished work must be bounded, or latency grows without
limit while every queued request still misses its deadline.  The
controller tracks requests in flight (admitted, not yet finalized) and
sheds arrivals beyond ``max_queue`` — the classic load-shedding trade: a
fast typed rejection now beats a useless answer later.

Thread-safe: the threaded front door admits from caller threads while its
scheduler loop releases from its own.
"""

from __future__ import annotations

import threading

__all__ = ["AdmissionController"]


class AdmissionController:
    """Counting semaphore with shed statistics (never blocks).

    Parameters
    ----------
    max_queue:
        Maximum requests in flight (queued + running).  ``None`` means
        unbounded — every request is admitted.
    """

    def __init__(self, max_queue: int | None = None) -> None:
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = max_queue
        self.admitted = 0
        self.shed = 0
        self._in_flight = 0
        self._lock = threading.Lock()

    @property
    def in_flight(self) -> int:
        """Requests admitted and not yet finalized."""
        return self._in_flight

    def try_admit(self) -> bool:
        """Admit one request if capacity allows; records the decision."""
        with self._lock:
            if self.max_queue is not None and self._in_flight >= self.max_queue:
                self.shed += 1
                return False
            self._in_flight += 1
            self.admitted += 1
            return True

    def release(self) -> None:
        """One admitted request was finalized (any status)."""
        with self._lock:
            if self._in_flight <= 0:  # pragma: no cover - defensive
                raise RuntimeError("release() without a matching try_admit()")
            self._in_flight -= 1

    def describe(self) -> dict:
        return {
            "max_queue": self.max_queue,
            "in_flight": self._in_flight,
            "admitted": self.admitted,
            "shed": self.shed,
        }
