"""The asyncio serving front door: multi-tenant, awaitable, single-threaded.

:class:`AsyncFrontDoor` is the asyncio *driver* over the same pure
scheduling core the thread door runs on
(:class:`~repro.serving.engine.ServingEngine`): one scheduler task pumps
engine steps inside the event loop, yielding to the loop between slices so
concurrent submitters (one coroutine per client) interleave freely without
a single lock.  Everything semantic — policy choice, deadlines,
feasibility shedding, settlement, admission release — is the engine's;
the driver only owns *when* steps happen and *how* callers wait.

Typical multi-tenant use, one task group, many clients::

    registry = SessionRegistry(backend="sharded")
    registry.add_dataset("flights", flights.table)
    registry.add_dataset("taxi", taxi.table)

    async def client(door, request):
        handle = await door.submit(request)        # AdmissionRejected if full
        outcome = await handle.outcome()           # awaitable, no blocking
        return outcome.report

    async def main():
        async with AsyncFrontDoor(registry, policy="edf-f",
                                  max_queue=32) as door:
            reports = await asyncio.gather(
                client(door, QueryRequest(q1, dataset="flights")),
                client(door, QueryRequest(q2, dataset="taxi")),
            )

Run the service on a :class:`~repro.system.clock.WallClock` for real-time
deadlines, or keep the default :class:`SimulatedClock` for deterministic
studies — the driver is clock-agnostic.  Because engine steps execute in
the event loop, a step is the scheduling granularity: keep
``default_max_step_rows`` bounded so the loop stays responsive.

The async driver never changes what a query computes: per-request answers
are byte-identical to the thread front door and the batch drain under
every policy.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

from ..obs.tracer import NULL_TRACER
from .admission import AdmissionController
from .engine import ServingEngine, ServingOutcome, TrackedJob
from .frontdoor import admit_request
from .metrics import ServingMetrics
from .policies import SchedulingPolicy
from .request import QueryRequest, ServingError

__all__ = ["AsyncFrontDoor", "AsyncResponseHandle"]


class AsyncResponseHandle:
    """Awaitable handle for one admitted request."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._event = asyncio.Event()
        self._outcome: ServingOutcome | None = None

    def _resolve(self, outcome: ServingOutcome) -> None:
        self._outcome = outcome
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    async def outcome(self) -> ServingOutcome:
        """The full serving record; awaits finalization."""
        await self._event.wait()
        assert self._outcome is not None
        return self._outcome

    async def result(self):
        """The :class:`~repro.system.report.RunReport`, complete or partial.

        Raises the outcome's typed error (:class:`DeadlineMiss` on a
        no-partial deadline expiry, :class:`ServingError` on cancellation)
        when no answer was produced.
        """
        outcome = await self.outcome()
        if outcome.report is None:
            assert outcome.error is not None
            raise outcome.error
        return outcome.report


class AsyncFrontDoor:
    """Asyncio admission + scheduling in front of one serving *service*.

    Parameters
    ----------
    service:
        A :class:`~repro.system.MatchSession` or
        :class:`~repro.system.SessionRegistry` (requests route by their
        ``dataset`` key) — anything exposing ``job_for_request``,
        ``clock``, ``backend``, and ``close``.  :meth:`shutdown` (or the
        ``async with`` exit) closes it.
    policy, max_queue, default_deadline_ns, default_max_step_rows:
        As for the thread :class:`~repro.serving.FrontDoor`.
    max_concurrent_steps:
        Step-execution slots.  The default 1 keeps the classic
        single-tasked loop: steps run inline in the scheduler task, fully
        deterministic on a simulated clock.  Above 1 the scheduler
        offloads picked steps to a bounded thread-pool executor
        (``loop.run_in_executor``) and settles each as it completes, so
        steps of *different* requests overlap on a multi-core machine —
        the counting kernels release the GIL.  Answers stay byte-identical
        in either mode; only wall-clock latency changes.

    All methods must be called from one event loop.  In single-slot mode
    the door is single-threaded by construction; in multi-slot mode all
    scheduling still happens in the event loop (pick, settle, admission,
    handles) and only ``job.step()`` runs on executor threads.
    """

    def __init__(
        self,
        service,
        *,
        policy: str | SchedulingPolicy = "edf",
        max_queue: int | None = None,
        default_deadline_ns: float | None = None,
        default_max_step_rows: int | None = None,
        max_concurrent_steps: int = 1,
        tracer=None,
    ) -> None:
        if max_concurrent_steps < 1:
            raise ValueError(
                f"max_concurrent_steps must be >= 1, got {max_concurrent_steps}"
            )
        self.service = service
        self.max_concurrent_steps = max_concurrent_steps
        # Tracing: explicit tracer beats the service's (sessions/registries
        # carry one when constructed with tracer=...); default is the no-op.
        self.tracer = (
            tracer
            if tracer is not None
            else getattr(service, "tracer", None) or NULL_TRACER
        )
        self.metrics = ServingMetrics()
        if self.tracer.enabled:
            if self.tracer.clock is None:
                self.tracer.clock = service.clock
            # Per-stage sketches fill from the same spans the trace records.
            self.tracer.subscribe(self.metrics)
        self.admission = AdmissionController(max_queue)
        self.default_deadline_ns = default_deadline_ns
        self.default_max_step_rows = default_max_step_rows
        self.engine = ServingEngine(
            service.clock,
            policy=policy,
            backend=service.backend,
            admission=self.admission,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self._handles: dict[int, AsyncResponseHandle] = {}
        self._task: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None
        self._accepting = True
        self._stopping = False
        self._drain_on_stop = True
        self._shutdown_started = False
        self._closed = asyncio.Event()

    # --------------------------------------------------------------- lifecycle

    def start(self) -> "AsyncFrontDoor":
        """Spawn the scheduler task in the running event loop."""
        if self._stopping:
            raise ServingError("async front door is shut down")
        if self._task is None:
            self._wake = asyncio.Event()
            self._task = asyncio.get_running_loop().create_task(
                self._loop(), name="repro-async-front-door"
            )
        return self

    async def __aenter__(self) -> "AsyncFrontDoor":
        return self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown()

    # ------------------------------------------------------------- submission

    async def submit(self, request: QueryRequest) -> AsyncResponseHandle:
        """Admit one request; returns an awaitable handle immediately.

        Raises :class:`AdmissionRejected` when shed and
        :class:`ServingError` after shutdown.  Preparation (artifact cache
        work) happens inline in the submitting coroutine — admitted
        requests are scheduler-ready by the time the handle exists.
        """
        if not self._accepting:
            raise ServingError("async front door is shut down")
        entry = admit_request(
            self.service,
            self.engine,
            self.admission,
            self.metrics,
            request,
            self.default_deadline_ns,
            self.default_max_step_rows,
            tracer=self.tracer,
        )
        handle = AsyncResponseHandle(entry.name)
        self._handles[entry.seq] = handle
        if self._wake is not None:
            self._wake.set()
        return handle

    # -------------------------------------------------------------- execution

    def _dispatch(self) -> list[ServingOutcome]:
        """Resolve handles for everything finalized since the last call."""
        outcomes = []
        for entry in self.engine.take_finished():
            assert entry.outcome is not None
            outcomes.append(entry.outcome)
            handle = self._handles.pop(entry.seq, None)
            if handle is not None:
                handle._resolve(entry.outcome)
        return outcomes

    async def _loop(self) -> None:
        if self.max_concurrent_steps > 1:
            await self._loop_concurrent()
            return
        reason = "async front door shut down mid-flight"
        assert self._wake is not None
        try:
            while True:
                if self._stopping and (not self._drain_on_stop or self.engine.idle):
                    break
                if self.engine.idle:
                    # Park until a submit or shutdown wakes the scheduler.
                    # No timeout needed: submit() and shutdown() both set
                    # the event, and there is no await between the idle
                    # check and this clear, so (single event loop) no
                    # wakeup can slip through the gap.
                    self._wake.clear()
                    if self._stopping:
                        continue  # re-check the exit condition, don't park
                    await self._wake.wait()
                    continue
                self.engine.step()
                self._dispatch()
                # One engine step per loop turn: submitters and other tasks
                # get the loop between slices.
                await asyncio.sleep(0)
        except asyncio.CancelledError:
            reason = "async front door task cancelled"
            raise
        except Exception as exc:
            # A failing job must not strand the other requests' handles.
            reason = f"async front door scheduler failed: {exc!r}"
        finally:
            self._stopping = True
            self._accepting = False
            self.engine.cancel_pending(reason)
            self._dispatch()

    async def _loop_concurrent(self) -> None:
        """Multi-slot scheduler loop: pick → ``run_in_executor`` → settle.

        All engine calls stay in the event loop; executor threads only run
        ``job.step()``.  The loop waits on whichever fires first — a step
        completion or the wake event (submit/shutdown) — so it dispatches
        new work the moment a slot frees or a request arrives.
        """
        reason = "async front door shut down mid-flight"
        assert self._wake is not None
        loop = asyncio.get_running_loop()
        executor = ThreadPoolExecutor(
            max_workers=self.max_concurrent_steps,
            thread_name_prefix="repro-step",
        )
        inflight: dict[asyncio.Future, TrackedJob] = {}
        try:
            while True:
                if self._stopping and (
                    not self._drain_on_stop or (self.engine.idle and not inflight)
                ):
                    break
                while len(inflight) < self.max_concurrent_steps:
                    entry = self.engine.pick()
                    if entry is None:
                        break
                    future = loop.run_in_executor(executor, entry.job.step)
                    inflight[future] = entry
                # pick() finalizes expiries/sheds even when nothing is
                # dispatchable; resolve those handles promptly.
                self._dispatch()
                if not inflight:
                    # Park until a submit or shutdown wakes the scheduler
                    # (same no-lost-wakeup argument as the single-slot
                    # loop: no await between the pick and this clear).
                    self._wake.clear()
                    if self._stopping:
                        continue  # re-check the exit condition, don't park
                    await self._wake.wait()
                    continue
                waker = asyncio.ensure_future(self._wake.wait())
                done, _ = await asyncio.wait(
                    {waker, *inflight}, return_when=asyncio.FIRST_COMPLETED
                )
                if waker not in done:
                    waker.cancel()
                self._wake.clear()
                for future in done:
                    if future is waker:
                        continue
                    entry = inflight.pop(future)
                    err = future.exception()
                    if err is not None:
                        raise err
                    self.engine.settle(entry)
                self._dispatch()
        except asyncio.CancelledError:
            reason = "async front door task cancelled"
            raise
        except Exception as exc:
            # A failing step must not strand the other requests' handles.
            reason = f"async front door scheduler failed: {exc!r}"
        finally:
            # Let in-flight steps finish before cancelling what remains —
            # the service close that follows shutdown must not pull the
            # backend out from under a running step.
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            executor.shutdown(wait=True)
            self._stopping = True
            self._accepting = False
            self.engine.cancel_pending(reason)
            self._dispatch()

    async def pump(self) -> list[ServingOutcome]:
        """Serve until idle without a scheduler task (no-task mode); yields
        to the event loop between slices.  Returns the outcomes finalized
        by this call, in submission order."""
        if self._task is not None:
            raise ServingError("pump() cannot run alongside start()")
        while self.engine.step():
            await asyncio.sleep(0)
        return self._dispatch()

    # ---------------------------------------------------------------- shutdown

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, finish (or cancel) in-flight work, close the service.

        ``drain=True`` serves every admitted request to its normal outcome
        first; ``drain=False`` cancels in-flight requests, resolving their
        handles with a :class:`ServingError`.  Idempotent and safe under
        concurrent callers: the first caller drains and closes, later
        callers wait for that close instead of closing the service under
        the still-draining scheduler task.
        """
        if self._shutdown_started:
            await self._closed.wait()
            return
        self._shutdown_started = True
        already = self._stopping  # the loop marks itself stopped on failure
        self._accepting = False
        self._stopping = True
        self._drain_on_stop = drain
        try:
            if self._task is not None:
                if self._wake is not None:
                    self._wake.set()
                task, self._task = self._task, None
                await task
            elif not already:
                if drain:
                    while self.engine.step():
                        await asyncio.sleep(0)
                self.engine.cancel_pending(
                    "async front door shut down mid-flight"
                )
                self._dispatch()
        finally:
            # Close even when the drain raised (task cancelled, loop torn
            # down): _closed must never be set with the service — worker
            # pool, shared-memory segments — still open, or later callers
            # would believe the close happened.
            self.service.close()
            self._closed.set()
