"""The thread serving front door: accept queries while others are running.

:class:`FrontDoor` is one of the thin *drivers* over the pure scheduling
core (:class:`~repro.serving.engine.ServingEngine`); the asyncio driver
lives in :mod:`repro.serving.async_frontdoor`, the batch drain in
:mod:`repro.system.scheduler`.  A driver owns concurrency (threads here,
a task there, nothing for the drain) and delegates every scheduling
decision — policy, deadlines, feasibility shedding, settlement — to the
engine, so all drivers share one semantics.

The door serves a *service*: either one
:class:`~repro.system.MatchSession` (single dataset) or a
:class:`~repro.system.SessionRegistry` (many datasets, requests routed by
their ``dataset`` key).  Either way:

- **admission control** — arrivals beyond ``max_queue`` requests in flight
  are shed with a typed :class:`AdmissionRejected` *before* any
  preparation work is spent on them;
- **deadline-aware scheduling** — admitted requests become resumable
  stepper jobs time-sliced by a pluggable policy, with per-request
  deadlines settled by the engine (ε-relaxed partial answers or typed
  misses) on each job's own clock;
- **two drive modes** — :meth:`start` spawns a scheduler thread so
  :meth:`submit` can be called while earlier queries run (handles resolve
  asynchronously), while :meth:`replay` runs a whole open-loop arrival
  trace synchronously on a *virtual* clock (deterministic; used by the
  benchmark and the CLI trace mode).

The front door never changes what a query computes: a request served here
(any policy, no deadline) returns byte-identical results to a standalone
:func:`repro.match_histograms` call with the same parameters.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable

from ..obs.tracer import NULL_TRACER
from .admission import AdmissionController
from .engine import ServingEngine, ServingOutcome, TrackedJob
from .metrics import SHED, ServingMetrics
from .policies import SchedulingPolicy
from .request import AdmissionRejected, QueryRequest, ServingError

__all__ = ["FrontDoor", "ResponseHandle", "admit_request"]


def admit_request(
    service,
    engine: ServingEngine,
    admission: AdmissionController,
    metrics: ServingMetrics,
    request: QueryRequest,
    default_deadline_ns: float | None,
    default_max_step_rows: int | None,
    tracer=NULL_TRACER,
) -> TrackedJob:
    """Admission + routing + job construction + engine submission.

    The shared admit path of every online driver (thread and asyncio).
    Raises :class:`AdmissionRejected` without building the job when the
    queue is full — load shedding must not pay preparation costs.  The
    caller provides mutual exclusion.
    """
    name = request.name or request.query.name or "query"
    if not admission.try_admit():
        tenant = getattr(request, "dataset", None)
        metrics.record_shed(
            had_deadline=(request.deadline_ns or default_deadline_ns) is not None,
            tenant=tenant,
        )
        if tracer.enabled:
            tracer.event(
                "admission.shed",
                clock=service.clock,
                name=name,
                tenant=tenant,
                in_flight=admission.in_flight,
                max_queue=admission.max_queue,
            )
        raise AdmissionRejected(name, admission.in_flight, admission.max_queue)
    if tracer.enabled:
        tracer.event(
            "admission.accept",
            clock=service.clock,
            name=name,
            tenant=getattr(request, "dataset", None),
            in_flight=admission.in_flight,
        )
    try:
        job = service.job_for_request(
            request, default_max_step_rows=default_max_step_rows
        )
        return engine.submit(
            job,
            deadline_ns=(
                request.deadline_ns
                if request.deadline_ns is not None
                else default_deadline_ns
            ),
            on_deadline=request.on_deadline,
            name=request.name,
        )
    except Exception:
        # The slot was acquired but no job will ever release it.
        admission.release()
        raise


class ResponseHandle:
    """Future-like handle for one admitted request."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._event = threading.Event()
        self._outcome: ServingOutcome | None = None

    def _resolve(self, outcome: ServingOutcome) -> None:
        self._outcome = outcome
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def outcome(self, timeout: float | None = None) -> ServingOutcome:
        """The full serving record; blocks until finalized (threaded mode)."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"request {self.name!r} is still being served")
        assert self._outcome is not None
        return self._outcome

    def result(self, timeout: float | None = None):
        """The :class:`~repro.system.report.RunReport`, complete or partial.

        Raises the outcome's typed error (:class:`DeadlineMiss` on a
        no-partial deadline expiry, :class:`ServingError` on cancellation)
        when no answer was produced.
        """
        outcome = self.outcome(timeout)
        if outcome.report is None:
            assert outcome.error is not None
            raise outcome.error
        return outcome.report


class FrontDoor:
    """Online admission + scheduling in front of one serving *service*.

    Parameters
    ----------
    service:
        A :class:`~repro.system.MatchSession` (single dataset) or
        :class:`~repro.system.SessionRegistry` (many datasets; requests
        route by ``dataset`` key) — anything exposing ``job_for_request``,
        ``clock``, ``backend``, and ``close``.  :meth:`shutdown` closes it
        (safe even if the caller closes it again — closes are idempotent).
    policy:
        Scheduling policy name or instance (default ``"edf"``).
    max_queue:
        Admission bound on requests in flight; ``None`` = unbounded.
    default_deadline_ns:
        Deadline applied to requests that do not set their own.
    default_max_step_rows:
        Time-slice granularity for requests that do not set their own
        (``None`` keeps per-round steps).
    max_concurrent_steps:
        Step-execution slots.  The default 1 keeps the classic
        deterministic single-slot loop (steps run inline in the scheduler
        thread).  Above 1 the scheduler dispatches picked steps to a
        bounded executor, so steps of *different* requests run
        concurrently — answers stay byte-identical (each job consumes its
        own fixed sampling order), only wall-clock latency changes.
    """

    def __init__(
        self,
        service,
        *,
        policy: str | SchedulingPolicy = "edf",
        max_queue: int | None = None,
        default_deadline_ns: float | None = None,
        default_max_step_rows: int | None = None,
        max_concurrent_steps: int = 1,
        tracer=None,
    ) -> None:
        if max_concurrent_steps < 1:
            raise ValueError(
                f"max_concurrent_steps must be >= 1, got {max_concurrent_steps}"
            )
        self.service = service
        self.max_concurrent_steps = max_concurrent_steps
        # Tracing: explicit tracer beats the service's (sessions/registries
        # carry one when constructed with tracer=...); default is the no-op.
        self.tracer = (
            tracer
            if tracer is not None
            else getattr(service, "tracer", None) or NULL_TRACER
        )
        self.metrics = ServingMetrics()
        if self.tracer.enabled:
            if self.tracer.clock is None:
                self.tracer.clock = service.clock
            # Per-stage sketches fill from the same spans the trace records.
            self.tracer.subscribe(self.metrics)
        self.admission = AdmissionController(max_queue)
        self.default_deadline_ns = default_deadline_ns
        self.default_max_step_rows = default_max_step_rows
        self.engine = ServingEngine(
            service.clock,
            policy=policy,
            backend=service.backend,
            admission=self.admission,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._thread: threading.Thread | None = None
        self._accepting = True
        self._stopping = False
        self._drain_on_stop = True
        self._handles: dict[int, ResponseHandle] = {}

    @property
    def session(self):
        """The served service (historical name; may be a registry)."""
        return self.service

    @property
    def scheduler(self) -> ServingEngine:
        """The scheduling core (historical name for :attr:`engine`)."""
        return self.engine

    # ------------------------------------------------------------- submission

    def _admit(self, request: QueryRequest) -> TrackedJob:
        """Admission + job construction + scheduling (caller holds the lock)."""
        return admit_request(
            self.service,
            self.engine,
            self.admission,
            self.metrics,
            request,
            self.default_deadline_ns,
            self.default_max_step_rows,
            tracer=self.tracer,
        )

    def submit(self, request: QueryRequest) -> ResponseHandle:
        """Admit one request while others run; returns a handle immediately.

        Raises :class:`AdmissionRejected` synchronously when shed, and
        :class:`ServingError` after shutdown.  Usable from any thread once
        :meth:`start` has been called; without a running thread, call
        :meth:`pump` (or :meth:`replay`) to actually serve.
        """
        with self._wake:
            if not self._accepting:
                raise ServingError("front door is shut down")
            entry = self._admit(request)
            handle = ResponseHandle(entry.name)
            self._handles[entry.seq] = handle
            self._wake.notify_all()
            return handle

    # -------------------------------------------------------------- execution

    def _dispatch(self) -> list[ServingOutcome]:
        """Resolve handles for everything finalized since the last call."""
        outcomes = []
        for entry in self.engine.take_finished():
            assert entry.outcome is not None
            outcomes.append(entry.outcome)
            handle = self._handles.pop(entry.seq, None)
            if handle is not None:
                handle._resolve(entry.outcome)
        return outcomes

    def pump(self) -> list[ServingOutcome]:
        """Serve synchronously until idle (no-thread mode); returns the
        outcomes finalized by this call, in submission order."""
        with self._lock:
            while self.engine.step():
                pass
            return self._dispatch()

    def _loop(self) -> None:
        if self.max_concurrent_steps > 1:
            self._loop_concurrent()
            return
        reason = "front door shut down mid-flight"
        try:
            while True:
                with self._wake:
                    if self._stopping and (
                        not self._drain_on_stop or self.engine.idle
                    ):
                        break
                    if self.engine.idle:
                        self._wake.wait(timeout=0.05)
                        continue
                    self.engine.step()
                    self._dispatch()
        except Exception as exc:
            # A failing job must not strand the other requests' handles:
            # the failure is folded into every unresolved outcome below.
            reason = f"front door scheduler failed: {exc!r}"
        finally:
            with self._wake:
                self._stopping = True
                self._accepting = False
                self.engine.cancel_pending(reason)
                self._dispatch()

    def _loop_concurrent(self) -> None:
        """Multi-slot scheduler loop: pick → dispatch to the executor →
        settle on completion.

        The engine stays single-threaded — every pick/settle/dispatch runs
        in this scheduler thread under the door lock; only ``job.step()``
        itself executes on executor threads.  Worker threads report
        completions into ``completed`` and pulse the condition, so the
        scheduler wakes for completions and submissions alike.
        """
        reason = "front door shut down mid-flight"
        inflight: set[TrackedJob] = set()
        completed: deque[tuple[TrackedJob, Exception | None]] = deque()
        executor = ThreadPoolExecutor(
            max_workers=self.max_concurrent_steps,
            thread_name_prefix="repro-step",
        )

        def run_step(entry: TrackedJob) -> None:
            try:
                entry.job.step()
                err: Exception | None = None
            except Exception as exc:  # noqa: BLE001 - folded into outcomes
                err = exc
            with self._wake:
                completed.append((entry, err))
                self._wake.notify_all()

        try:
            while True:
                with self._wake:
                    while completed:
                        entry, err = completed.popleft()
                        inflight.discard(entry)
                        if err is not None:
                            raise err
                        self.engine.settle(entry)
                    if self._stopping and (
                        not self._drain_on_stop
                        or (self.engine.idle and not inflight)
                    ):
                        break
                    dispatched = False
                    while len(inflight) < self.max_concurrent_steps:
                        entry = self.engine.pick()
                        if entry is None:
                            break
                        inflight.add(entry)
                        executor.submit(run_step, entry)
                        dispatched = True
                    # pick() finalizes expiries/sheds even when nothing is
                    # dispatchable; resolve those handles promptly.
                    self._dispatch()
                    if not dispatched and not completed:
                        self._wake.wait(timeout=0.05)
        except Exception as exc:
            # A failing step must not strand the other requests' handles:
            # the failure is folded into every unresolved outcome below.
            reason = f"front door scheduler failed: {exc!r}"
        finally:
            # Let in-flight steps finish before cancelling what remains —
            # shutdown must not close the backend under a running step.
            # (Outside the lock: workers need it to report completion.)
            executor.shutdown(wait=True)
            with self._wake:
                self._stopping = True
                self._accepting = False
                self.engine.cancel_pending(reason)
                self._dispatch()

    def start(self) -> "FrontDoor":
        """Spawn the scheduler thread; requests are then served as they come."""
        with self._wake:
            if self._stopping:
                raise ServingError("front door is shut down")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="repro-front-door", daemon=True
                )
                self._thread.start()
        return self

    # ----------------------------------------------------------------- replay

    def replay(
        self, trace: Iterable[tuple[float, QueryRequest]]
    ) -> tuple[ServingOutcome, ...]:
        """Serve an open-loop arrival trace on the service's virtual clock.

        ``trace`` holds ``(arrival_ns, request)`` pairs.  Arrivals are
        injected once the clock reaches their timestamp — the server cannot
        peek at future requests — and the clock *idles forward* to the next
        arrival whenever the queue is empty, exactly like a real server
        waiting for traffic.  Requests that arrive while the server is
        mid-slice are admitted at the next step boundary but backdated to
        their arrival time, so latency and deadlines are measured
        open-loop.  Shed arrivals yield :data:`SHED` outcomes.

        Synchronous and deterministic; mutually exclusive with
        :meth:`start`, and only meaningful on a virtual
        (:class:`~repro.system.clock.SimulatedClock`) timeline — a wall
        clock cannot be idled forward.  Returns every outcome of the
        trace, in arrival order.
        """
        with self._lock:
            if self._thread is not None:
                raise ServingError("replay() cannot run alongside start()")
            if not self._accepting:
                raise ServingError("front door is shut down")
            clock = self.service.clock
            if not getattr(clock, "virtual", False):
                raise ServingError(
                    "replay() needs a virtual clock (SimulatedClock); "
                    f"the service runs on {type(clock).__name__}"
                )
            events = sorted(trace, key=lambda pair: pair[0])
            by_arrival: dict[int, ServingOutcome] = {}
            arrival_of: dict[int, int] = {}  # entry.seq -> arrival index
            cursor = 0
            while True:
                while (
                    cursor < len(events)
                    and events[cursor][0] <= clock.elapsed_ns
                ):
                    arrival_ns, request = events[cursor]
                    index = cursor
                    cursor += 1
                    try:
                        entry = self._admit(request)
                        # Open-loop: latency and deadline run from arrival,
                        # and so does the lifecycle span tiling.
                        entry.submitted_ns = arrival_ns
                        entry.last_progress_ns = arrival_ns
                        if request.deadline_ns is not None:
                            entry.deadline_ns = arrival_ns + request.deadline_ns
                        elif self.default_deadline_ns is not None:
                            entry.deadline_ns = arrival_ns + self.default_deadline_ns
                        arrival_of[entry.seq] = index
                    except AdmissionRejected as exc:
                        by_arrival[index] = ServingOutcome(
                            name=exc.name,
                            status=SHED,
                            report=None,
                            submitted_ns=arrival_ns,
                            finished_ns=arrival_ns,
                            steps=0,
                            service_ns=0.0,
                            deadline_ns=None,
                            error=exc,
                        )
                worked = self.engine.step()
                for entry in self.engine.take_finished():
                    assert entry.outcome is not None
                    index = arrival_of.get(entry.seq)
                    if index is not None:
                        by_arrival[index] = entry.outcome
                    # Requests submitted via submit() before the replay have
                    # no trace arrival; they report through their handles
                    # only and stay out of the trace's outcome list.
                    handle = self._handles.pop(entry.seq, None)
                    if handle is not None:
                        handle._resolve(entry.outcome)
                if not worked:
                    if cursor >= len(events):
                        break
                    clock.idle_until(events[cursor][0])
            return tuple(by_arrival[i] for i in sorted(by_arrival))

    # ---------------------------------------------------------------- shutdown

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Stop accepting, finish (or cancel) in-flight work, close the service.

        ``drain=True`` serves every admitted request to its normal outcome
        first; ``drain=False`` cancels in-flight requests, resolving their
        handles with a :class:`ServingError`.  Idempotent, and the service
        close underneath is idempotent too — a caller that also closes the
        session/registry (or calls shutdown twice) is safe.

        Returns True once everything is stopped and the service is closed.
        When ``timeout`` expires with the scheduler thread still draining,
        returns False *without* closing the service (closing the backend
        under a thread that is still stepping would fail its in-flight
        query); call :meth:`shutdown` again to finish.
        """
        with self._wake:
            already = self._stopping
            self._accepting = False
            self._stopping = True
            self._drain_on_stop = drain
            self._wake.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout)
            if thread.is_alive():
                return False
        elif not already:
            with self._lock:
                if drain:
                    while self.engine.step():
                        pass
                self.engine.cancel_pending("front door shut down mid-flight")
                self._dispatch()
        self.service.close()
        return True

    def __enter__(self) -> "FrontDoor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
