"""The async serving front door: accept queries while others are running.

:class:`FrontDoor` sits in front of a :class:`~repro.system.MatchSession`
and turns the batch drain into an online server:

- **admission control** — arrivals beyond ``max_queue`` requests in flight
  are shed with a typed :class:`AdmissionRejected` *before* any
  preparation work is spent on them;
- **deadline-aware scheduling** — admitted requests become resumable
  stepper jobs time-sliced by a pluggable policy on the session's shared
  simulated clock, with per-request deadlines settled by the
  :class:`~repro.serving.scheduler.ServingScheduler` core (ε-relaxed
  partial answers or typed misses);
- **two drive modes** — :meth:`start` spawns a scheduler thread so
  :meth:`submit` can be called while earlier queries run (handles resolve
  asynchronously), while :meth:`replay` runs a whole open-loop arrival
  trace synchronously on the simulated clock (deterministic; used by the
  benchmark and the CLI trace mode).

The front door never changes what a query computes: a request served here
(any policy, no deadline) returns byte-identical results to a standalone
:func:`repro.match_histograms` call with the same parameters.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from .admission import AdmissionController
from .metrics import SHED, ServingMetrics
from .policies import SchedulingPolicy
from .request import AdmissionRejected, QueryRequest, ServingError
from .scheduler import ServingOutcome, ServingScheduler

__all__ = ["FrontDoor", "ResponseHandle"]


class ResponseHandle:
    """Future-like handle for one admitted request."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._event = threading.Event()
        self._outcome: ServingOutcome | None = None

    def _resolve(self, outcome: ServingOutcome) -> None:
        self._outcome = outcome
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def outcome(self, timeout: float | None = None) -> ServingOutcome:
        """The full serving record; blocks until finalized (threaded mode)."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"request {self.name!r} is still being served")
        assert self._outcome is not None
        return self._outcome

    def result(self, timeout: float | None = None):
        """The :class:`~repro.system.report.RunReport`, complete or partial.

        Raises the outcome's typed error (:class:`DeadlineMiss` on a
        no-partial deadline expiry, :class:`ServingError` on cancellation)
        when no answer was produced.
        """
        outcome = self.outcome(timeout)
        if outcome.report is None:
            assert outcome.error is not None
            raise outcome.error
        return outcome.report


class FrontDoor:
    """Online admission + scheduling in front of one ``MatchSession``.

    Parameters
    ----------
    session:
        The :class:`~repro.system.MatchSession` that prepares artifacts and
        builds resumable jobs.  The front door drives the session's shared
        clock and backend; :meth:`shutdown` closes the session (safe even
        if the caller closes it again — ``close`` is idempotent).
    policy:
        Scheduling policy name or instance (default ``"edf"``).
    max_queue:
        Admission bound on requests in flight; ``None`` = unbounded.
    default_deadline_ns:
        Deadline applied to requests that do not set their own.
    default_max_step_rows:
        Time-slice granularity for requests that do not set their own
        (``None`` keeps per-round steps).
    """

    def __init__(
        self,
        session,
        *,
        policy: str | SchedulingPolicy = "edf",
        max_queue: int | None = None,
        default_deadline_ns: float | None = None,
        default_max_step_rows: int | None = None,
    ) -> None:
        self.session = session
        self.metrics = ServingMetrics()
        self.admission = AdmissionController(max_queue)
        self.default_deadline_ns = default_deadline_ns
        self.default_max_step_rows = default_max_step_rows
        self.scheduler = ServingScheduler(
            session.clock,
            policy=policy,
            backend=session.backend,
            admission=self.admission,
            metrics=self.metrics,
        )
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._thread: threading.Thread | None = None
        self._accepting = True
        self._stopping = False
        self._drain_on_stop = True
        self._handles: dict[int, ResponseHandle] = {}

    # ------------------------------------------------------------- submission

    def _admit(self, request: QueryRequest):
        """Admission + job construction + scheduling (caller holds the lock).

        Raises :class:`AdmissionRejected` without building the job when the
        queue is full — load shedding must not pay preparation costs.
        """
        name = request.name or request.query.name or "query"
        if not self.admission.try_admit():
            self.metrics.record_shed(
                had_deadline=(request.deadline_ns or self.default_deadline_ns)
                is not None
            )
            raise AdmissionRejected(
                name, self.admission.in_flight, self.admission.max_queue
            )
        try:
            job = self.session.make_job(
                request.query,
                approach=request.approach,
                config=request.config,
                seed=request.seed,
                max_step_rows=(
                    request.max_step_rows
                    if request.max_step_rows is not None
                    else self.default_max_step_rows
                ),
                name=request.name,
            )
            return self.scheduler.submit(
                job,
                deadline_ns=(
                    request.deadline_ns
                    if request.deadline_ns is not None
                    else self.default_deadline_ns
                ),
                on_deadline=request.on_deadline,
                name=request.name,
            )
        except Exception:
            # The slot was acquired but no job will ever release it.
            self.admission.release()
            raise

    def submit(self, request: QueryRequest) -> ResponseHandle:
        """Admit one request while others run; returns a handle immediately.

        Raises :class:`AdmissionRejected` synchronously when shed, and
        :class:`ServingError` after shutdown.  Usable from any thread once
        :meth:`start` has been called; without a running thread, call
        :meth:`pump` (or :meth:`replay`) to actually serve.
        """
        with self._wake:
            if not self._accepting:
                raise ServingError("front door is shut down")
            entry = self._admit(request)
            handle = ResponseHandle(entry.name)
            self._handles[entry.seq] = handle
            self._wake.notify_all()
            return handle

    # -------------------------------------------------------------- execution

    def _dispatch(self) -> list[ServingOutcome]:
        """Resolve handles for everything finalized since the last call."""
        outcomes = []
        for entry in self.scheduler.take_finished():
            assert entry.outcome is not None
            outcomes.append(entry.outcome)
            handle = self._handles.pop(entry.seq, None)
            if handle is not None:
                handle._resolve(entry.outcome)
        return outcomes

    def pump(self) -> list[ServingOutcome]:
        """Serve synchronously until idle (no-thread mode); returns the
        outcomes finalized by this call, in submission order."""
        with self._lock:
            while self.scheduler.step():
                pass
            return self._dispatch()

    def _loop(self) -> None:
        reason = "front door shut down mid-flight"
        try:
            while True:
                with self._wake:
                    if self._stopping and (
                        not self._drain_on_stop or self.scheduler.idle
                    ):
                        break
                    if self.scheduler.idle:
                        self._wake.wait(timeout=0.05)
                        continue
                    self.scheduler.step()
                    self._dispatch()
        except Exception as exc:
            # A failing job must not strand the other requests' handles:
            # the failure is folded into every unresolved outcome below.
            reason = f"front door scheduler failed: {exc!r}"
        finally:
            with self._wake:
                self._stopping = True
                self._accepting = False
                self.scheduler.cancel_pending(reason)
                self._dispatch()

    def start(self) -> "FrontDoor":
        """Spawn the scheduler thread; requests are then served as they come."""
        with self._wake:
            if self._stopping:
                raise ServingError("front door is shut down")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="repro-front-door", daemon=True
                )
                self._thread.start()
        return self

    # ----------------------------------------------------------------- replay

    def replay(
        self, trace: Iterable[tuple[float, QueryRequest]]
    ) -> tuple[ServingOutcome, ...]:
        """Serve an open-loop arrival trace on the simulated clock.

        ``trace`` holds ``(arrival_ns, request)`` pairs.  Arrivals are
        injected once the clock reaches their timestamp — the server cannot
        peek at future requests — and the clock *idles forward* to the next
        arrival whenever the queue is empty, exactly like a real server
        waiting for traffic.  Requests that arrive while the server is
        mid-slice are admitted at the next step boundary but backdated to
        their arrival time, so latency and deadlines are measured
        open-loop.  Shed arrivals yield :data:`SHED` outcomes.

        Synchronous and deterministic; mutually exclusive with
        :meth:`start`.  Returns every outcome of the trace, in arrival
        order.
        """
        with self._lock:
            if self._thread is not None:
                raise ServingError("replay() cannot run alongside start()")
            if not self._accepting:
                raise ServingError("front door is shut down")
            events = sorted(trace, key=lambda pair: pair[0])
            clock = self.session.clock
            by_arrival: dict[int, ServingOutcome] = {}
            arrival_of: dict[int, int] = {}  # entry.seq -> arrival index
            cursor = 0
            while True:
                while (
                    cursor < len(events)
                    and events[cursor][0] <= clock.elapsed_ns
                ):
                    arrival_ns, request = events[cursor]
                    index = cursor
                    cursor += 1
                    try:
                        entry = self._admit(request)
                        # Open-loop: latency and deadline run from arrival.
                        entry.submitted_ns = arrival_ns
                        if request.deadline_ns is not None:
                            entry.deadline_ns = arrival_ns + request.deadline_ns
                        elif self.default_deadline_ns is not None:
                            entry.deadline_ns = arrival_ns + self.default_deadline_ns
                        arrival_of[entry.seq] = index
                    except AdmissionRejected as exc:
                        by_arrival[index] = ServingOutcome(
                            name=exc.name,
                            status=SHED,
                            report=None,
                            submitted_ns=arrival_ns,
                            finished_ns=arrival_ns,
                            steps=0,
                            service_ns=0.0,
                            deadline_ns=None,
                            error=exc,
                        )
                worked = self.scheduler.step()
                for entry in self.scheduler.take_finished():
                    assert entry.outcome is not None
                    index = arrival_of.get(entry.seq)
                    if index is not None:
                        by_arrival[index] = entry.outcome
                    # Requests submitted via submit() before the replay have
                    # no trace arrival; they report through their handles
                    # only and stay out of the trace's outcome list.
                    handle = self._handles.pop(entry.seq, None)
                    if handle is not None:
                        handle._resolve(entry.outcome)
                if not worked:
                    if cursor >= len(events):
                        break
                    gap = events[cursor][0] - clock.elapsed_ns
                    if gap > 0:
                        clock.charge_serial(idle=gap)
            return tuple(by_arrival[i] for i in sorted(by_arrival))

    # ---------------------------------------------------------------- shutdown

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Stop accepting, finish (or cancel) in-flight work, close the session.

        ``drain=True`` serves every admitted request to its normal outcome
        first; ``drain=False`` cancels in-flight requests, resolving their
        handles with a :class:`ServingError`.  Idempotent, and the session
        close underneath is idempotent too — a caller that also closes the
        session (or calls shutdown twice) is safe.

        Returns True once everything is stopped and the session is closed.
        When ``timeout`` expires with the scheduler thread still draining,
        returns False *without* closing the session (closing the backend
        under a thread that is still stepping would fail its in-flight
        query); call :meth:`shutdown` again to finish.
        """
        with self._wake:
            already = self._stopping
            self._accepting = False
            self._stopping = True
            self._drain_on_stop = drain
            self._wake.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout)
            if thread.is_alive():
                return False
        elif not already:
            with self._lock:
                if drain:
                    while self.scheduler.step():
                        pass
                self.scheduler.cancel_pending("front door shut down mid-flight")
                self._dispatch()
        self.session.close()
        return True

    def __enter__(self) -> "FrontDoor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
