"""Request/response vocabulary of the serving front door.

A :class:`QueryRequest` is what an online client hands the front door: the
histogram-matching question plus serving-level intent — a deadline on the
simulated clock and what should happen when it is missed.  Admission and
deadline failures are typed (:class:`AdmissionRejected`,
:class:`DeadlineMiss`) so callers can branch on them instead of parsing
strings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import HistSimConfig
from ..query.spec import HistogramQuery

__all__ = [
    "ON_DEADLINE",
    "AdmissionRejected",
    "DeadlineMiss",
    "InfeasibleDeadline",
    "QueryRequest",
    "ServingError",
    "UnknownDataset",
]

#: What to do when a request's deadline expires before its run completes:
#: ``"partial"`` returns the current top-k with its actually-achieved ε/δ;
#: ``"miss"`` returns no answer and a typed :class:`DeadlineMiss`.
ON_DEADLINE = ("partial", "miss")


class ServingError(RuntimeError):
    """Base class for serving-layer failures."""


class AdmissionRejected(ServingError):
    """The front door shed a request because its queue was full (or closed)."""

    def __init__(self, name: str, in_flight: int, max_queue: int | None) -> None:
        self.name = name
        self.in_flight = in_flight
        self.max_queue = max_queue
        bound = "closed" if max_queue is None else f"max_queue={max_queue}"
        super().__init__(
            f"request {name!r} shed: {in_flight} request(s) in flight ({bound})"
        )


class UnknownDataset(ServingError):
    """A request named a dataset the serving registry does not hold."""

    def __init__(self, dataset: str | None, known: tuple[str, ...]) -> None:
        self.dataset = dataset
        self.known = known
        what = "no dataset key" if dataset is None else f"dataset {dataset!r}"
        super().__init__(
            f"request carries {what}; registry serves {sorted(known)!r}"
        )


class DeadlineMiss(ServingError):
    """A request's deadline expired and it asked for no partial answer."""

    def __init__(self, name: str, deadline_ns: float, elapsed_ns: float) -> None:
        self.name = name
        self.deadline_ns = deadline_ns
        self.elapsed_ns = elapsed_ns
        super().__init__(
            f"request {name!r} missed its deadline "
            f"({deadline_ns * 1e-6:.3f} ms; clock at {elapsed_ns * 1e-6:.3f} ms)"
        )


class InfeasibleDeadline(DeadlineMiss):
    """A feasibility-aware policy declared the deadline unmeetable *before*
    it elapsed: the request's remaining-cost lookahead no longer fit.

    A subclass of :class:`DeadlineMiss` so callers that only branch on
    misses keep working, while the message (and type) distinguish a
    predictive shed from a real expiry.
    """

    def __init__(
        self,
        name: str,
        deadline_ns: float,
        elapsed_ns: float,
        estimated_remaining_ns: float,
    ) -> None:
        self.name = name
        self.deadline_ns = deadline_ns
        self.elapsed_ns = elapsed_ns
        self.estimated_remaining_ns = estimated_remaining_ns
        # Skip DeadlineMiss's "missed its deadline" message: nothing has
        # expired yet, the deadline was *predicted* unmeetable.
        ServingError.__init__(
            self,
            f"request {name!r} declared infeasible at "
            f"{elapsed_ns * 1e-6:.3f} ms: estimated "
            f"{estimated_remaining_ns * 1e-6:.3f} ms of service remain but "
            f"its deadline is {deadline_ns * 1e-6:.3f} ms",
        )


@dataclass(frozen=True)
class QueryRequest:
    """One online histogram-matching request.

    Attributes
    ----------
    query:
        The histogram-generating query template.
    approach:
        Execution approach (as in :func:`repro.match_histograms`).
    config:
        Optional explicit :class:`HistSimConfig`; defaults to the session's
        per-query default (``k`` from the query, moderate tolerances).
    seed:
        Sampling/shuffle seed — requests with equal seeds share prepared
        artifacts through the session cache.
    max_step_rows:
        Scheduler time-slice: rows sampled per step.  ``None`` keeps the
        stepper's natural (per-round) granularity; smaller values preempt
        finer at slightly more stepping overhead.
    deadline_ns:
        Deadline on the simulated clock, **relative to admission** (or to
        the open-loop arrival time during trace replay).  ``None`` means no
        deadline.
    on_deadline:
        ``"partial"`` (default) or ``"miss"`` — see :data:`ON_DEADLINE`.
    name:
        Display name; defaults to the query's name.
    dataset:
        Routing key for a multi-tenant front door over a
        :class:`~repro.system.SessionRegistry`: the request is served by
        the session registered under this key.  ``None`` routes to the
        registry's only session (and is ignored by a single-session door).
    """

    query: HistogramQuery
    approach: str = "fastmatch"
    config: HistSimConfig | None = None
    seed: int = 0
    max_step_rows: int | None = None
    deadline_ns: float | None = None
    on_deadline: str = "partial"
    name: str | None = None
    dataset: str | None = None

    def __post_init__(self) -> None:
        if self.on_deadline not in ON_DEADLINE:
            raise ValueError(
                f"on_deadline must be one of {ON_DEADLINE}, got {self.on_deadline!r}"
            )
        if self.deadline_ns is not None and self.deadline_ns <= 0:
            raise ValueError(f"deadline_ns must be positive, got {self.deadline_ns}")
        if self.max_step_rows is not None and self.max_step_rows < 1:
            raise ValueError(
                f"max_step_rows must be >= 1, got {self.max_step_rows}"
            )
