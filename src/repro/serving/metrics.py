"""Serving metrics: what the front door observed, snapshottable at any time.

The counters update as requests finalize; :meth:`ServingMetrics.snapshot`
condenses them into a frozen :class:`~repro.system.report.ServingReport`
(percentile latencies, deadline-hit rate, shed count) for benchmarks and
the CLI.  Internally locked: with executor-offloaded steps
(``max_concurrent_steps > 1``) settles can land from multiple threads, so
recording and snapshotting serialize on the metrics' own lock rather than
relying on any driver's.
"""

from __future__ import annotations

import threading

import numpy as np

from ..system.report import ServingReport

__all__ = ["ServingMetrics"]

#: Outcome statuses (mirrored by :class:`repro.serving.ServingOutcome`).
COMPLETED = "completed"
PARTIAL = "partial"
MISS = "miss"
SHED = "shed"
CANCELLED = "cancelled"


class ServingMetrics:
    """Mutable counters + latency samples behind the snapshot API."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.completed = 0
        self.partial = 0
        self.missed = 0
        self.shed = 0
        self.cancelled = 0
        self.deadline_requests = 0
        self.deadline_hits = 0
        self._latencies_ns: list[float] = []
        self._service_ns: list[float] = []

    # ------------------------------------------------------------- recording

    def record_outcome(self, outcome) -> None:
        """Fold one finalized :class:`ServingOutcome` into the counters."""
        if outcome.status not in (COMPLETED, PARTIAL, MISS, CANCELLED):
            # pragma: no cover - statuses are closed
            raise ValueError(f"unknown outcome status {outcome.status!r}")
        with self._lock:
            if outcome.status == COMPLETED:
                self.completed += 1
            elif outcome.status == PARTIAL:
                self.partial += 1
            elif outcome.status == MISS:
                self.missed += 1
            else:
                self.cancelled += 1
            if outcome.deadline_ns is not None:
                self.deadline_requests += 1
                if outcome.deadline_hit:
                    self.deadline_hits += 1
            self._latencies_ns.append(outcome.latency_ns)
            self._service_ns.append(outcome.service_ns)

    def record_shed(self, had_deadline: bool = True) -> None:
        """One request shed at admission (it never ran; no latency sample).

        Shed requests count against the deadline-hit rate when they carried
        a deadline — shedding must not flatter the rate it exists to
        protect.
        """
        with self._lock:
            self.shed += 1
            if had_deadline:
                self.deadline_requests += 1

    # ------------------------------------------------------------- snapshot

    @property
    def requests(self) -> int:
        return (
            self.completed + self.partial + self.missed + self.cancelled + self.shed
        )

    @property
    def deadline_hit_rate(self) -> float:
        """Hits over deadline-carrying requests (1.0 when none had deadlines)."""
        if self.deadline_requests == 0:
            return 1.0
        return self.deadline_hits / self.deadline_requests

    def snapshot(self) -> ServingReport:
        """Frozen aggregate view of everything recorded so far."""
        with self._lock:
            lat = np.asarray(self._latencies_ns, dtype=np.float64)
            svc = np.asarray(self._service_ns, dtype=np.float64)
            p50, p95, p99 = (
                (np.percentile(lat, (50, 95, 99)) * 1e-6).tolist()
                if lat.size
                else (0.0, 0.0, 0.0)
            )
            return ServingReport(
                requests=self.requests,
                completed=self.completed,
                partial=self.partial,
                missed=self.missed,
                shed=self.shed,
                cancelled=self.cancelled,
                deadline_hit_rate=self.deadline_hit_rate,
                p50_latency_ms=p50,
                p95_latency_ms=p95,
                p99_latency_ms=p99,
                mean_latency_ms=float(lat.mean() * 1e-6) if lat.size else 0.0,
                mean_service_ms=float(svc.mean() * 1e-6) if svc.size else 0.0,
            )
