"""Serving metrics: what the front door observed, snapshottable at any time.

The counters update as requests finalize; :meth:`ServingMetrics.snapshot`
condenses them into a frozen :class:`~repro.system.report.ServingReport`
(percentile latencies, deadline-hit rate, shed count, per-stage and
per-tenant breakdowns) for benchmarks and the CLI.  Internally locked:
with executor-offloaded steps (``max_concurrent_steps > 1``) settles can
land from multiple threads, so recording and snapshotting serialize on
the metrics' own lock rather than relying on any driver's.

Three observability upgrades over the endpoint-only original:

- **bounded memory** — latency/service samples live in
  :class:`~repro.obs.QuantileSketch`\\ es (exact below a threshold,
  seeded reservoir above) instead of one-float-per-request-forever lists.
- **one recording seam** — every one of the five outcome statuses
  (including ``SHED``) routes through :meth:`record_outcome`, so tracing
  hooks and tenant attribution observe every outcome in one place;
  :meth:`record_shed` is a thin admission-time wrapper over it.
- **span-fed stage budgets** — the metrics object is a tracer *sink*
  (:meth:`observe_span`): subscribe it to a :class:`~repro.obs.Tracer`
  and per-stage duration sketches (queue/step/stage1..3/shard/pool) fill
  themselves from the same spans the trace file records.

:meth:`expose_text` renders everything in Prometheus text exposition
format, ready to sit behind a future HTTP tier's ``/metrics``.
"""

from __future__ import annotations

import threading

from ..obs.sketch import DEFAULT_SKETCH_CAPACITY, QuantileSketch
from ..obs.trace_io import STAGE_OF_SPAN
from ..system.report import ServingReport

__all__ = ["ServingMetrics"]

#: Outcome statuses (mirrored by :class:`repro.serving.ServingOutcome`).
COMPLETED = "completed"
PARTIAL = "partial"
MISS = "miss"
SHED = "shed"
CANCELLED = "cancelled"

_STATUSES = (COMPLETED, PARTIAL, MISS, SHED, CANCELLED)


class _ShedOutcome:
    """Admission-time shed, shaped like a ServingOutcome for recording.

    Sheds never ran, so they carry no latency/service sample; the only
    field recording consults besides ``status`` is ``deadline_ns`` (a
    shed deadline-carrying request counts against the hit rate).
    """

    __slots__ = ("deadline_ns",)
    status = SHED
    deadline_hit = False
    latency_ns = 0.0
    service_ns = 0.0

    def __init__(self, had_deadline: bool) -> None:
        self.deadline_ns = 0.0 if had_deadline else None


class ServingMetrics:
    """Mutable counters + bounded sketches behind the snapshot API."""

    def __init__(self, *, sketch_capacity: int = DEFAULT_SKETCH_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._sketch_capacity = sketch_capacity
        self.completed = 0
        self.partial = 0
        self.missed = 0
        self.shed = 0
        self.cancelled = 0
        self.deadline_requests = 0
        self.deadline_hits = 0
        self._latency = QuantileSketch(sketch_capacity)
        self._service = QuantileSketch(sketch_capacity)
        # stage -> duration sketch (ns) and rows processed, fed by spans.
        self._stage_ns: dict[str, QuantileSketch] = {}
        self._stage_rows: dict[str, int] = {}
        # tenant -> {status -> count} and latency sketch (ns).
        self._tenant_counts: dict[str, dict[str, int]] = {}
        self._tenant_latency: dict[str, QuantileSketch] = {}
        # Calibration: Eq. 1-estimated vs observed stage cost, accumulated
        # from stepper spans (which carry est_ns_before), per stage and per
        # tenant.  ratio = observed / estimated; 1.0 means the analytic
        # cost model predicts measured stage time exactly.
        self._stage_est_ns: dict[str, float] = {}
        self._tenant_est_ns: dict[str, float] = {}
        self._tenant_observed_ns: dict[str, float] = {}

    # ------------------------------------------------------------- recording

    def record_outcome(self, outcome, tenant: str | None = None) -> None:
        """Fold one finalized outcome into the counters — any of the five
        statuses, so every request's terminal state lands in one place."""
        status = outcome.status
        if status not in _STATUSES:
            # pragma: no cover - statuses are closed
            raise ValueError(f"unknown outcome status {status!r}")
        with self._lock:
            if status == COMPLETED:
                self.completed += 1
            elif status == PARTIAL:
                self.partial += 1
            elif status == MISS:
                self.missed += 1
            elif status == SHED:
                self.shed += 1
            else:
                self.cancelled += 1
            if outcome.deadline_ns is not None:
                self.deadline_requests += 1
                if outcome.deadline_hit:
                    self.deadline_hits += 1
            if status != SHED:
                # Shed requests never ran; they have no latency sample.
                self._latency.observe(outcome.latency_ns)
                self._service.observe(outcome.service_ns)
            if tenant is not None:
                counts = self._tenant_counts.setdefault(
                    tenant, {s: 0 for s in _STATUSES}
                )
                counts[status] += 1
                if status != SHED:
                    sketch = self._tenant_latency.get(tenant)
                    if sketch is None:
                        sketch = self._tenant_latency[tenant] = QuantileSketch(
                            self._sketch_capacity
                        )
                    sketch.observe(outcome.latency_ns)

    def record_shed(self, had_deadline: bool = True, tenant: str | None = None) -> None:
        """One request shed at admission, routed through the unified seam.

        Shed requests count against the deadline-hit rate when they carried
        a deadline — shedding must not flatter the rate it exists to
        protect.
        """
        self.record_outcome(_ShedOutcome(had_deadline), tenant=tenant)

    # ----------------------------------------------------------- tracer sink

    def observe_span(self, record) -> None:
        """Tracer-sink seam: fold one span into the per-stage sketches.

        Only span names with a lifecycle stage mapping contribute
        (``queue.wait``, ``engine.step``, ``stepper.*``, backend windows,
        pool runs); events and unknown spans are ignored.
        """
        if record.kind != "span":
            return
        stage = STAGE_OF_SPAN.get(record.name)
        if stage is None:
            return
        attrs = record.attrs
        rows = attrs.get("fresh_rows", attrs.get("rows", 0))
        est_ns = attrs.get("est_slice_ns")
        tenant = attrs.get("tenant")
        with self._lock:
            sketch = self._stage_ns.get(stage)
            if sketch is None:
                sketch = self._stage_ns[stage] = QuantileSketch(self._sketch_capacity)
            sketch.observe(record.duration_ns)
            if isinstance(rows, (int, float)):
                self._stage_rows[stage] = self._stage_rows.get(stage, 0) + int(rows)
            if isinstance(est_ns, (int, float)) and est_ns > 0:
                # Stepper spans carry the Eq. 1 cost of the slice they ran
                # (est_slice_ns: delivered rows at sequential-read cost);
                # fold estimate and observation side by side so the
                # snapshot exposes observed/estimated calibration.
                self._stage_est_ns[stage] = (
                    self._stage_est_ns.get(stage, 0.0) + float(est_ns)
                )
                if tenant is not None:
                    self._tenant_est_ns[tenant] = (
                        self._tenant_est_ns.get(tenant, 0.0) + float(est_ns)
                    )
                    self._tenant_observed_ns[tenant] = (
                        self._tenant_observed_ns.get(tenant, 0.0)
                        + record.duration_ns
                    )

    # ------------------------------------------------------------- snapshot

    @property
    def requests(self) -> int:
        return (
            self.completed + self.partial + self.missed + self.cancelled + self.shed
        )

    @property
    def deadline_hit_rate(self) -> float:
        """Hits over deadline-carrying requests (1.0 when none had deadlines)."""
        if self.deadline_requests == 0:
            return 1.0
        return self.deadline_hits / self.deadline_requests

    def snapshot(self) -> ServingReport:
        """Frozen aggregate view of everything recorded so far."""
        with self._lock:
            p50, p95, p99 = self._latency.percentiles((50, 95, 99))
            per_stage = {}
            for stage, sketch in sorted(self._stage_ns.items()):
                entry = {
                    "count": sketch.count,
                    "total_ms": sketch.total * 1e-6,
                    "p50_ms": sketch.percentile(50) * 1e-6,
                    "p99_ms": sketch.percentile(99) * 1e-6,
                    "rows": self._stage_rows.get(stage, 0),
                }
                est_ns = self._stage_est_ns.get(stage)
                if est_ns:
                    # Eq. 1 estimate next to the observed stage cost.
                    entry["est_total_ms"] = est_ns * 1e-6
                    entry["calibration_ratio"] = sketch.total / est_ns
                per_stage[stage] = entry
            per_tenant = {}
            for tenant, counts in sorted(self._tenant_counts.items()):
                sketch = self._tenant_latency.get(tenant)
                est_ns = self._tenant_est_ns.get(tenant, 0.0)
                per_tenant[tenant] = {
                    **counts,
                    "p50_latency_ms": (
                        sketch.percentile(50) * 1e-6 if sketch is not None else 0.0
                    ),
                    "mean_latency_ms": (
                        sketch.mean * 1e-6 if sketch is not None else 0.0
                    ),
                    # observed/Eq. 1-estimated stage cost; 0.0 until this
                    # tenant's stepper spans have been observed.
                    "calibration_ratio": (
                        self._tenant_observed_ns.get(tenant, 0.0) / est_ns
                        if est_ns > 0
                        else 0.0
                    ),
                }
            return ServingReport(
                requests=self.requests,
                completed=self.completed,
                partial=self.partial,
                missed=self.missed,
                shed=self.shed,
                cancelled=self.cancelled,
                deadline_hit_rate=self.deadline_hit_rate,
                p50_latency_ms=p50 * 1e-6,
                p95_latency_ms=p95 * 1e-6,
                p99_latency_ms=p99 * 1e-6,
                mean_latency_ms=self._latency.mean * 1e-6,
                mean_service_ms=self._service.mean * 1e-6,
                per_stage=per_stage,
                per_tenant=per_tenant,
            )

    def merged_tenant_latency(self) -> QuantileSketch | None:
        """All tenants' latency sketches merged into one (no re-recording).

        Uses :meth:`QuantileSketch.merge`; ``None`` when no tenant-tagged
        requests have finalized.  The merged sketch is a fresh object — the
        per-tenant sketches are read, never mutated.
        """
        with self._lock:
            if not self._tenant_latency:
                return None
            merged = QuantileSketch(self._sketch_capacity)
            for tenant in sorted(self._tenant_latency):
                merged.merge(self._tenant_latency[tenant])
            return merged

    # ------------------------------------------------------------ exposition

    def expose_text(self) -> str:
        """Prometheus text-exposition rendering of every counter and sketch.

        Latencies and stage durations export in seconds (Prometheus base
        units) as summaries with p50/p95/p99 quantile samples; tenants and
        stages become labels.  No client library is required — the text
        format is plain lines.
        """
        with self._lock:
            lines: list[str] = []

            def summary(metric: str, help_text: str, series) -> None:
                # series: iterable of (label_str, sketch)
                lines.append(f"# HELP {metric} {help_text}")
                lines.append(f"# TYPE {metric} summary")
                for labels, sketch in series:
                    sep = "," if labels else ""
                    p50, p95, p99 = sketch.percentiles((50, 95, 99))
                    for q, value in (("0.5", p50), ("0.95", p95), ("0.99", p99)):
                        lines.append(
                            f'{metric}{{{labels}{sep}quantile="{q}"}} {value * 1e-9:.9f}'
                        )
                    label_part = f"{{{labels}}}" if labels else ""
                    lines.append(f"{metric}_sum{label_part} {sketch.total * 1e-9:.9f}")
                    lines.append(f"{metric}_count{label_part} {sketch.count}")

            lines.append("# HELP repro_requests_total Finalized requests by status.")
            lines.append("# TYPE repro_requests_total counter")
            for status, value in (
                (COMPLETED, self.completed),
                (PARTIAL, self.partial),
                (MISS, self.missed),
                (SHED, self.shed),
                (CANCELLED, self.cancelled),
            ):
                lines.append(f'repro_requests_total{{status="{status}"}} {value}')
            lines.append(
                "# HELP repro_deadline_requests_total Requests that carried a deadline."
            )
            lines.append("# TYPE repro_deadline_requests_total counter")
            lines.append(f"repro_deadline_requests_total {self.deadline_requests}")
            lines.append(
                "# HELP repro_deadline_hits_total Deadline-carrying requests that completed in time."
            )
            lines.append("# TYPE repro_deadline_hits_total counter")
            lines.append(f"repro_deadline_hits_total {self.deadline_hits}")
            summary(
                "repro_request_latency_seconds",
                "Submission-to-finalization latency.",
                [("", self._latency)],
            )
            summary(
                "repro_request_service_seconds",
                "Per-request service time (own steps only).",
                [("", self._service)],
            )
            if self._stage_ns:
                summary(
                    "repro_stage_seconds",
                    "Time spent per lifecycle stage (span-fed).",
                    [
                        (f'stage="{stage}"', sketch)
                        for stage, sketch in sorted(self._stage_ns.items())
                    ],
                )
            if self._tenant_counts:
                lines.append(
                    "# HELP repro_tenant_requests_total Finalized requests by tenant and status."
                )
                lines.append("# TYPE repro_tenant_requests_total counter")
                for tenant, counts in sorted(self._tenant_counts.items()):
                    for status in _STATUSES:
                        lines.append(
                            f'repro_tenant_requests_total{{tenant="{tenant}",status="{status}"}}'
                            f" {counts[status]}"
                        )
            if self._tenant_latency:
                summary(
                    "repro_tenant_latency_seconds",
                    "Submission-to-finalization latency by tenant.",
                    [
                        (f'tenant="{tenant}"', sketch)
                        for tenant, sketch in sorted(self._tenant_latency.items())
                    ],
                )
            if self._tenant_est_ns:
                lines.append(
                    "# HELP repro_tenant_calibration_ratio "
                    "Observed over Eq. 1-estimated stage cost."
                )
                lines.append("# TYPE repro_tenant_calibration_ratio gauge")
                for tenant in sorted(self._tenant_est_ns):
                    est = self._tenant_est_ns[tenant]
                    observed = self._tenant_observed_ns.get(tenant, 0.0)
                    lines.append(
                        f'repro_tenant_calibration_ratio{{tenant="{tenant}"}} '
                        f"{observed / est:.6f}"
                    )
            return "\n".join(lines) + "\n"
