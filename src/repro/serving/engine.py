"""The pure scheduling engine: pick / dispatch / settle, no threads.

This is the reentrant core every serving driver runs on — the thread
:class:`~repro.serving.frontdoor.FrontDoor`, the asyncio
:class:`~repro.serving.async_frontdoor.AsyncFrontDoor`, and the batch drain
(:class:`~repro.system.scheduler.BatchScheduler`) are all thin shells that
feed it jobs and pump :meth:`ServingEngine.step`.  The engine itself holds
no locks, spawns no threads, and never blocks: drivers own concurrency,
the engine owns scheduling semantics, and the two never mix.

Step execution is split into three phases so drivers can run the compute
off their scheduling loop:

- :meth:`ServingEngine.pick` — expire overdue jobs, shed infeasible ones,
  let the policy choose among the *dispatchable* entries (runnable and not
  already mid-step), and mark the choice in-flight;
- **dispatch** — the driver runs ``entry.job.step()`` wherever it likes:
  inline (the classic single-slot mode), in a thread-pool executor
  (concurrent steps of different sessions), or via
  ``loop.run_in_executor`` from asyncio;
- :meth:`ServingEngine.settle` — stamp the step's service time on the
  job's own clock, finalize completion, and re-run expiry.

:meth:`ServingEngine.step` is exactly ``pick → job.step() → settle``, so
single-slot drivers keep byte-identical behaviour; multi-slot drivers hold
several entries in flight at once and settle each as it completes.  The
engine still never blocks and holds no locks — drivers serialize their
calls into it (only ``job.step()`` itself may run concurrently).

It is also **clock-agnostic**: the engine runs against the
:class:`~repro.system.clock.Clock` protocol, so the same scheduling code
serves simulated single-server studies (:class:`SimulatedClock`) and live
asyncio deployments (:class:`WallClock`).  Every job is stamped — submission,
deadline, expiry, completion, cancellation — from **its own** clock (the one
its session charges), never from whatever clock the driver happens to hold,
so latency percentiles stay coherent even when a wall-clock driver
multiplexes simulated-clock sessions.

Semantics the engine owns:

- **policy** — each time slice goes to whichever runnable job the pluggable
  :class:`~repro.serving.policies.SchedulingPolicy` picks (FIFO, round-
  robin, EDF, feasibility-aware EDF, shortest-expected-remaining-cost);
- **deadlines** — a job past its deadline is finalized early with either an
  ε-relaxed partial answer or a typed
  :class:`~repro.serving.request.DeadlineMiss`;
- **feasibility shedding** — under a feasibility-aware policy (``edf-f``),
  a deadline-carrying job whose lookahead cost estimate can no longer meet
  its deadline is settled as a partial answer *immediately*, so its slices
  go to requests that can still win;
- **online submission** — jobs join while others run; outcomes are
  collected incrementally (:meth:`ServingEngine.take_finished`).

Scheduling never changes what a query computes: jobs consume their own
fixed sampling order, so any interleaving produces byte-identical results
— policies, deadlines, and drivers shape *latency*, not answers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..obs.tracer import NULL_TRACER
from ..system.clock import Clock
from ..system.report import RunReport
from .admission import AdmissionController
from .metrics import CANCELLED, COMPLETED, MISS, PARTIAL, SHED, ServingMetrics
from .policies import SchedulingPolicy, make_policy
from .request import ON_DEADLINE, DeadlineMiss, InfeasibleDeadline, ServingError

__all__ = [
    "CANCELLED",
    "COMPLETED",
    "MISS",
    "PARTIAL",
    "SHED",
    "ServingEngine",
    "ServingOutcome",
    "TrackedJob",
]


@dataclass(frozen=True)
class ServingOutcome:
    """One request's final serving record, stamped on its own clock.

    ``status`` is one of :data:`COMPLETED` (ran to completion),
    :data:`PARTIAL` (deadline expired or the run was judged infeasible;
    ``report`` holds the ε-relaxed answer with its achieved guarantee),
    :data:`MISS` (deadline expired, no partial requested; ``error`` holds
    the :class:`DeadlineMiss`), :data:`CANCELLED` (driver shut down
    mid-flight), or :data:`SHED` (rejected at admission; never ran).
    """

    name: str
    status: str
    report: RunReport | None
    submitted_ns: float
    finished_ns: float
    steps: int
    service_ns: float
    deadline_ns: float | None = None
    error: Exception | None = None

    @property
    def latency_ns(self) -> float:
        """Submission (or open-loop arrival) to finalization."""
        return self.finished_ns - self.submitted_ns

    @property
    def latency_seconds(self) -> float:
        return self.latency_ns * 1e-9

    @property
    def service_seconds(self) -> float:
        return self.service_ns * 1e-9

    @property
    def deadline_hit(self) -> bool:
        """Completed, and within the deadline if one was set."""
        return self.status == COMPLETED and (
            self.deadline_ns is None or self.finished_ns <= self.deadline_ns
        )

    @property
    def ok(self) -> bool:
        """An answer was produced (complete or partial)."""
        return self.report is not None

    @property
    def latency_ms(self) -> float:
        return self.latency_ns * 1e-6


class TrackedJob:
    """Engine-internal bookkeeping around one submitted job.

    ``clock`` is the job's *own* time source — the clock its session
    charges.  All of the entry's timestamps (submission, deadline, expiry,
    finalization) live on that clock; when the engine multiplexes sessions
    on one shared clock they coincide, but the engine never assumes it.
    """

    __slots__ = (
        "job",
        "name",
        "seq",
        "rr_key",
        "clock",
        "submitted_ns",
        "deadline_ns",
        "on_deadline",
        "service_ns",
        "steps",
        "outcome",
        "in_flight",
        "step_started_ns",
        "last_progress_ns",
        "tenant",
        "_estimate_cache",
    )

    def __init__(
        self,
        job,
        name: str,
        seq: int,
        clock: Clock,
        submitted_ns: float,
        deadline_ns: float | None,
        on_deadline: str,
    ) -> None:
        self.job = job
        self.name = name
        self.seq = seq
        self.rr_key = seq
        self.clock = clock
        self.submitted_ns = submitted_ns
        self.deadline_ns = deadline_ns
        self.on_deadline = on_deadline
        self.service_ns = 0.0
        self.steps = 0
        self.outcome: ServingOutcome | None = None
        #: True while a picked step is running (dispatch → settle window).
        self.in_flight = False
        #: The job clock's reading when the in-flight step was picked.
        self.step_started_ns = 0.0
        #: High-water mark of accounted lifecycle time: queue-wait and step
        #: spans tile [submitted_ns, finished_ns] exactly by always starting
        #: where the previous span ended (replay backdates it to arrival).
        self.last_progress_ns = submitted_ns
        #: Tenant key for per-tenant metrics (registry-routed jobs carry one).
        self.tenant = getattr(job, "tenant", None)
        self._estimate_cache: tuple[int, float, float] | None = None

    def estimated_remaining(self) -> float:
        """The job's lookahead cost estimate in rows; ``inf`` when it offers
        none.

        Cached per step: the estimate only moves when the job itself runs,
        but a cost policy asks for every runnable job's estimate on every
        slice — without the cache that is O(jobs) redundant estimator runs
        per step.
        """
        return self._estimates()[0]

    def estimated_remaining_ns(self) -> float:
        """Lookahead estimate of the job's remaining *service time* (ns).

        Used by feasibility-aware policies: a deadline that even this
        (optimistic, I/O-only) estimate cannot meet is certainly doomed.
        ``inf`` when the job offers no estimate.
        """
        return self._estimates()[1]

    def _estimates(self) -> tuple[float, float]:
        if self._estimate_cache is not None and self._estimate_cache[0] == self.steps:
            return self._estimate_cache[1], self._estimate_cache[2]
        rows_estimator = getattr(self.job, "estimated_remaining_rows", None)
        rows = float("inf") if rows_estimator is None else float(rows_estimator())
        ns_estimator = getattr(self.job, "estimated_remaining_ns", None)
        ns = float("inf") if ns_estimator is None else float(ns_estimator())
        self._estimate_cache = (self.steps, rows, ns)
        return rows, ns


class ServingEngine:
    """Time-slice many resumable jobs by policy — pure, reentrant, unlocked.

    Parameters
    ----------
    clock:
        The engine's reference :class:`~repro.system.clock.Clock` — the
        default timeline for jobs that do not carry their own (open-loop
        replay idles it between arrivals).  Simulated or wall.
    policy:
        A :class:`~repro.serving.policies.SchedulingPolicy` or its name.
    backend:
        Optional execution backend, recorded for attribution only (jobs
        route their own sampling).
    admission:
        Optional :class:`AdmissionController`.  The engine *releases*
        capacity as jobs finalize; acquiring happens at the door (the
        caller sheds before a job is ever built).
    metrics:
        Optional :class:`ServingMetrics` fed on every finalization.
    tracer:
        Optional :class:`~repro.obs.Tracer`.  Defaults to the shared no-op
        :data:`~repro.obs.NULL_TRACER`; every emission site guards on
        ``tracer.enabled``, so the untraced path allocates nothing and
        stays byte-identical.  When enabled, the engine emits the
        request-lifecycle spans: ``queue.wait`` and ``engine.step`` tile
        each request's ``[submitted, finished]`` interval exactly on the
        job's own clock, ``request.submitted``/``request.finalized``
        events carry the endpoint stamps, and ``engine.settle`` measures
        finalization work (report assembly) in real time.
    """

    def __init__(
        self,
        clock: Clock,
        policy: str | SchedulingPolicy = "fifo",
        backend=None,
        admission: AdmissionController | None = None,
        metrics: ServingMetrics | None = None,
        tracer=None,
    ) -> None:
        self.clock = clock
        self.policy = make_policy(policy)
        self.backend = backend
        self.admission = admission
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._entries: list[TrackedJob] = []
        self._fresh: list[TrackedJob] = []
        self._order = 0

    # ------------------------------------------------------------- submission

    def submit(
        self,
        job,
        *,
        deadline_ns: float | None = None,
        on_deadline: str = "partial",
        name: str | None = None,
        submitted_ns: float | None = None,
        clock: Clock | None = None,
    ) -> TrackedJob:
        """Enqueue one resumable job; its latency clock starts now.

        ``deadline_ns`` is *relative* to submission; ``submitted_ns``
        overrides the submission timestamp (open-loop replay backdates it
        to the arrival time, so queue latency and the deadline are measured
        from when the request arrived, not when the server got to it).
        ``clock`` is the job's own time source and defaults to the job's
        ``clock`` attribute (sessions stamp their jobs) or, failing that,
        the engine clock — all of the entry's timestamps live on it.
        """
        if on_deadline not in ON_DEADLINE:
            raise ValueError(
                f"on_deadline must be one of {ON_DEADLINE}, got {on_deadline!r}"
            )
        if deadline_ns is not None and deadline_ns <= 0:
            raise ValueError(f"deadline_ns must be positive, got {deadline_ns}")
        job_clock = clock or getattr(job, "clock", None) or self.clock
        submitted = job_clock.elapsed_ns if submitted_ns is None else submitted_ns
        entry = TrackedJob(
            job=job,
            name=name or getattr(job, "name", f"job-{self._order}"),
            seq=self._order,
            clock=job_clock,
            submitted_ns=submitted,
            deadline_ns=None if deadline_ns is None else submitted + deadline_ns,
            on_deadline=on_deadline,
        )
        self._order += 1
        self._entries.append(entry)
        if self.tracer.enabled:
            self.tracer.event(
                "request.submitted",
                clock=job_clock,
                name=entry.name,
                tenant=entry.tenant,
                submitted_ns=submitted,
                deadline_ns=entry.deadline_ns,
            )
        return entry

    # -------------------------------------------------------------- inspection

    def _runnable(self) -> list[TrackedJob]:
        return [e for e in self._entries if e.outcome is None]

    def _dispatchable(self) -> list[TrackedJob]:
        """Runnable entries not currently mid-step (eligible for pick)."""
        return [e for e in self._entries if e.outcome is None and not e.in_flight]

    @property
    def pending(self) -> int:
        """Jobs submitted but not yet finalized (including in-flight steps)."""
        return len(self._runnable())

    @property
    def in_flight(self) -> int:
        """Entries whose current step is between pick and settle."""
        return sum(1 for e in self._entries if e.outcome is None and e.in_flight)

    @property
    def idle(self) -> bool:
        return not self._runnable()

    # ------------------------------------------------------------- finalization

    def _finalize(self, entry: TrackedJob, status: str, report, error=None) -> None:
        finished = entry.clock.elapsed_ns
        entry.outcome = ServingOutcome(
            name=entry.name,
            status=status,
            report=report,
            submitted_ns=entry.submitted_ns,
            finished_ns=finished,
            steps=entry.steps,
            service_ns=entry.service_ns,
            deadline_ns=entry.deadline_ns,
            error=error,
        )
        self._fresh.append(entry)
        if self.tracer.enabled:
            if finished > entry.last_progress_ns:
                # Close the lifecycle tiling: time between the last step
                # (or submission) and finalization was spent waiting.
                self.tracer.span_at(
                    "queue.wait",
                    entry.last_progress_ns,
                    finished,
                    clock=entry.clock,
                    name=entry.name,
                    tenant=entry.tenant,
                )
            self.tracer.event(
                "request.finalized",
                clock=entry.clock,
                name=entry.name,
                tenant=entry.tenant,
                status=status,
                submitted_ns=entry.submitted_ns,
                finished_ns=finished,
                latency_ns=entry.outcome.latency_ns,
                service_ns=entry.service_ns,
                steps=entry.steps,
                deadline_ns=entry.deadline_ns,
            )
        entry.last_progress_ns = finished
        if self.admission is not None:
            self.admission.release()
        if self.metrics is not None:
            self.metrics.record_outcome(entry.outcome, tenant=entry.tenant)

    def _settle_expired(
        self, entry: TrackedJob, now: float, error: DeadlineMiss | None = None
    ) -> None:
        """Deadline decision: partial answer if the job offers one, else a
        typed miss.  Shared by real expiry and feasibility shedding, which
        passes its own (:class:`InfeasibleDeadline`) error."""
        if entry.on_deadline == "partial" and hasattr(entry.job, "finish_partial"):
            self._finalize(entry, PARTIAL, entry.job.finish_partial(entry.service_ns))
        else:
            self._finalize(
                entry,
                MISS,
                None,
                error=error or DeadlineMiss(entry.name, entry.deadline_ns, now),
            )

    def _expire_due(self) -> None:
        """Finalize every unfinished job whose deadline its clock has passed.

        Runs before each slice is granted (a job already past its deadline
        must not consume more server time) and again after it (one job's
        service can push *waiting* jobs past their deadlines).  In-flight
        entries are skipped: a job mid-step must not be finalized under its
        running step — its own settle re-runs expiry and catches it.
        """
        for entry in self._runnable():
            if entry.in_flight:
                continue
            now = entry.clock.elapsed_ns
            if entry.deadline_ns is None or now < entry.deadline_ns:
                continue
            self._settle_expired(entry, now)

    def _shed_infeasible(self) -> None:
        """Feasibility-aware policies: settle doomed deadline jobs *now*.

        A job whose remaining-cost lookahead already overshoots its
        deadline cannot complete in time under any schedule; granting it
        further slices only drags *feasible* requests past their deadlines
        too — the classic EDF overload domino.  Such jobs are settled
        immediately with whatever partial answer their samples so far
        support, freeing both server time and an admission slot for
        requests that can still win.

        Only jobs that have not yet received a slice are screened: at
        submission the lookahead tracks true service closely, but mid-run
        it can overestimate by orders of magnitude (the stage-3 residual
        is a theoretical target that the run's actual samples largely
        cover), so a mid-run screen would shed requests that were about to
        finish.  The policy's ``feasibility_margin`` additionally discounts
        the estimate (``now + margin × estimate > deadline``).
        """
        margin = getattr(self.policy, "feasibility_margin", 1.0)
        for entry in self._runnable():
            if entry.deadline_ns is None or entry.steps > 0 or entry.in_flight:
                continue
            remaining = entry.estimated_remaining_ns()
            if remaining == float("inf"):
                continue
            now = entry.clock.elapsed_ns
            if now + margin * remaining > entry.deadline_ns:
                self._settle_expired(
                    entry,
                    now,
                    error=InfeasibleDeadline(
                        entry.name, entry.deadline_ns, now, remaining
                    ),
                )

    # --------------------------------------------------------------- execution

    def pick(self) -> TrackedJob | None:
        """Pick phase: choose the next entry to step and mark it in-flight.

        Expires overdue jobs, sheds infeasible ones (feasibility-aware
        policies only), then lets the policy select among the dispatchable
        entries — runnable jobs not already mid-step, so a multi-slot
        driver never double-dispatches one job.  Returns ``None`` when
        nothing is dispatchable (the engine may still have steps in
        flight).  The caller must run ``entry.job.step()`` — wherever it
        likes — and then :meth:`settle` the entry exactly once.
        """
        self._expire_due()
        if getattr(self.policy, "feasibility_aware", False):
            self._shed_infeasible()
        dispatchable = self._dispatchable()
        if not dispatchable:
            return None
        entry = self.policy.select(dispatchable, self.clock.elapsed_ns)
        entry.in_flight = True
        now = entry.clock.elapsed_ns
        if self.tracer.enabled and now > entry.last_progress_ns:
            self.tracer.span_at(
                "queue.wait",
                entry.last_progress_ns,
                now,
                clock=entry.clock,
                name=entry.name,
                tenant=entry.tenant,
            )
        entry.step_started_ns = now
        entry.rr_key = self._order
        self._order += 1
        return entry

    def settle(self, entry: TrackedJob) -> None:
        """Settle phase: account a completed step and finalize if done.

        Service time is stamped on the entry's *own* clock, from the
        reading :meth:`pick` took to now — under concurrent steps on one
        shared clock that attributes neighbours' overlapped charges too,
        which is the single-server convention (wall-clock deployments, the
        reason to run concurrently, measure real elapsed time anyway).
        """
        if not entry.in_flight:
            raise RuntimeError(f"entry {entry.name!r} has no step to settle")
        entry.in_flight = False
        if entry.outcome is not None:
            # Finalized while mid-step (cancel_pending on shutdown): the
            # straggler step's work is discarded, never double-finalized.
            return
        now = entry.clock.elapsed_ns
        entry.service_ns += now - entry.step_started_ns
        entry.steps += 1
        entry.last_progress_ns = now
        if self.tracer.enabled:
            self.tracer.span_at(
                "engine.step",
                entry.step_started_ns,
                now,
                clock=entry.clock,
                name=entry.name,
                tenant=entry.tenant,
                step=entry.steps,
                stage=getattr(entry.job, "last_stage", None),
            )
        if entry.job.done:
            # Done beats expired: a job finishing exactly on its deadline
            # (round boundary == deadline) is a hit, not a miss.
            if self.tracer.enabled:
                # Settle cost (report assembly, audits) is real work the
                # simulated clock never charges — measure it in wall time.
                wall0 = float(time.monotonic_ns())
                report = entry.job.finish(entry.service_ns)
                self._finalize(entry, COMPLETED, report)
                self.tracer.span_at(
                    "engine.settle",
                    wall0,
                    float(time.monotonic_ns()),
                    clock="monotonic",
                    name=entry.name,
                    tenant=entry.tenant,
                )
            else:
                self._finalize(entry, COMPLETED, entry.job.finish(entry.service_ns))
        self._expire_due()

    def step(self) -> bool:
        """Grant one time slice: :meth:`pick`, advance the chosen job one
        bounded step inline, :meth:`settle` the consequences.  Returns
        False when there was nothing to run."""
        entry = self.pick()
        if entry is None:
            return False
        entry.job.step()
        self.settle(entry)
        return True

    def run_until_idle(self) -> tuple[ServingOutcome, ...]:
        """Drain every pending job; returns outcomes finalized by this call."""
        while self.step():
            pass
        return tuple(entry.outcome for entry in self.take_finished())

    def cancel_pending(self, reason: str = "serving engine shut down") -> int:
        """Finalize every unfinished job as :data:`CANCELLED` (shutdown path).

        The jobs get no further steps; their partial work is discarded.
        Returns the number of jobs cancelled.
        """
        live = self._runnable()
        for entry in live:
            self._finalize(entry, CANCELLED, None, error=ServingError(reason))
        return len(live)

    def take_finished(self) -> list[TrackedJob]:
        """Entries finalized since the last take (submission order), for
        callers that need the entry ↔ outcome pairing (handle dispatch)."""
        fresh = sorted(self._fresh, key=lambda e: e.seq)
        self._fresh.clear()
        return fresh
