"""Deadline-aware scheduling of resumable query jobs (engine facade).

The actual scheduling semantics — policy-driven slice granting, deadline
expiry with ε-relaxed partial answers, feasibility shedding, incremental
outcome collection — live in the pure, clock-agnostic
:class:`~repro.serving.engine.ServingEngine`.  This module keeps the
historical :class:`ServingScheduler` name as a direct alias of the engine,
so drivers and tests written against the PR-4 API keep working while all
drivers (thread front door, asyncio front door, batch drain) share one
core.
"""

from __future__ import annotations

from .engine import (
    CANCELLED,
    COMPLETED,
    MISS,
    PARTIAL,
    SHED,
    ServingEngine,
    ServingOutcome,
    TrackedJob,
)

__all__ = [
    "CANCELLED",
    "COMPLETED",
    "MISS",
    "PARTIAL",
    "SHED",
    "ServingOutcome",
    "ServingScheduler",
    "TrackedJob",
]


class ServingScheduler(ServingEngine):
    """The PR-4 name for the scheduling core; see :class:`ServingEngine`."""
