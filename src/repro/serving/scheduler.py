"""Deadline-aware, policy-pluggable scheduling of resumable query jobs.

This is the execution core the serving front door (and the legacy batch
drain) runs on.  It generalizes PR 2's round-robin drain along three axes:

- **policy** — each time slice goes to whichever runnable job the pluggable
  :class:`~repro.serving.policies.SchedulingPolicy` picks (FIFO, round-
  robin, earliest-deadline-first, shortest-expected-remaining-cost);
- **deadlines** — every job may carry an absolute deadline on the shared
  :class:`~repro.system.clock.SimulatedClock`; when the clock passes it the
  job is *finalized early* with either an ε-relaxed partial answer (the
  current top-k plus its actually-achieved guarantee) or a typed
  :class:`~repro.serving.request.DeadlineMiss`;
- **online submission** — jobs join while others run; outcomes are
  collected incrementally (:meth:`ServingScheduler.take_finished`) rather
  than only at the end of a drain.

Scheduling never changes what a query computes: jobs consume their own
fixed sampling order, so any interleaving produces byte-identical results
— policies and deadlines shape *latency*, not answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..system.clock import SimulatedClock
from ..system.report import RunReport
from .admission import AdmissionController
from .metrics import CANCELLED, COMPLETED, MISS, PARTIAL, SHED, ServingMetrics
from .policies import SchedulingPolicy, make_policy
from .request import ON_DEADLINE, DeadlineMiss, ServingError

__all__ = [
    "CANCELLED",
    "COMPLETED",
    "MISS",
    "PARTIAL",
    "SHED",
    "ServingOutcome",
    "ServingScheduler",
]


@dataclass(frozen=True)
class ServingOutcome:
    """One request's final serving record on the shared simulated clock.

    ``status`` is one of :data:`COMPLETED` (ran to completion),
    :data:`PARTIAL` (deadline expired; ``report`` holds the ε-relaxed
    answer with its achieved guarantee), :data:`MISS` (deadline expired, no
    partial requested; ``error`` holds the :class:`DeadlineMiss`),
    :data:`CANCELLED` (front door shut down mid-flight), or :data:`SHED`
    (rejected at admission; never ran).
    """

    name: str
    status: str
    report: RunReport | None
    submitted_ns: float
    finished_ns: float
    steps: int
    service_ns: float
    deadline_ns: float | None = None
    error: Exception | None = None

    @property
    def latency_ns(self) -> float:
        """Submission (or open-loop arrival) to finalization."""
        return self.finished_ns - self.submitted_ns

    @property
    def latency_seconds(self) -> float:
        return self.latency_ns * 1e-9

    @property
    def service_seconds(self) -> float:
        return self.service_ns * 1e-9

    @property
    def deadline_hit(self) -> bool:
        """Completed, and within the deadline if one was set."""
        return self.status == COMPLETED and (
            self.deadline_ns is None or self.finished_ns <= self.deadline_ns
        )

    @property
    def ok(self) -> bool:
        """An answer was produced (complete or partial)."""
        return self.report is not None


class _Tracked:
    """Scheduler-internal bookkeeping around one submitted job."""

    __slots__ = (
        "job",
        "name",
        "seq",
        "rr_key",
        "submitted_ns",
        "deadline_ns",
        "on_deadline",
        "service_ns",
        "steps",
        "outcome",
        "_estimate_cache",
    )

    def __init__(
        self,
        job,
        name: str,
        seq: int,
        submitted_ns: float,
        deadline_ns: float | None,
        on_deadline: str,
    ) -> None:
        self.job = job
        self.name = name
        self.seq = seq
        self.rr_key = seq
        self.submitted_ns = submitted_ns
        self.deadline_ns = deadline_ns
        self.on_deadline = on_deadline
        self.service_ns = 0.0
        self.steps = 0
        self.outcome: ServingOutcome | None = None
        self._estimate_cache: tuple[int, float] | None = None

    def estimated_remaining(self) -> float:
        """The job's lookahead cost estimate; ``inf`` when it offers none.

        Cached per step: the estimate only moves when the job itself runs,
        but a cost policy asks for every runnable job's estimate on every
        slice — without the cache that is O(jobs) redundant estimator runs
        per step.
        """
        if self._estimate_cache is not None and self._estimate_cache[0] == self.steps:
            return self._estimate_cache[1]
        estimator = getattr(self.job, "estimated_remaining_rows", None)
        estimate = float("inf") if estimator is None else float(estimator())
        self._estimate_cache = (self.steps, estimate)
        return estimate


class ServingScheduler:
    """Time-slice many resumable jobs on one simulated clock, by policy.

    Parameters
    ----------
    clock:
        The shared clock every job charges; deadlines live on it.
    policy:
        A :class:`~repro.serving.policies.SchedulingPolicy` or its name.
    backend:
        Optional execution backend, recorded for attribution only (jobs
        route their own sampling).
    admission:
        Optional :class:`AdmissionController`.  The scheduler *releases*
        capacity as jobs finalize; acquiring happens at the door (the
        caller sheds before a job is ever built).
    metrics:
        Optional :class:`ServingMetrics` fed on every finalization.
    """

    def __init__(
        self,
        clock: SimulatedClock,
        policy: str | SchedulingPolicy = "fifo",
        backend=None,
        admission: AdmissionController | None = None,
        metrics: ServingMetrics | None = None,
    ) -> None:
        self.clock = clock
        self.policy = make_policy(policy)
        self.backend = backend
        self.admission = admission
        self.metrics = metrics
        self._entries: list[_Tracked] = []
        self._fresh: list[_Tracked] = []
        self._order = 0

    # ------------------------------------------------------------- submission

    def submit(
        self,
        job,
        *,
        deadline_ns: float | None = None,
        on_deadline: str = "partial",
        name: str | None = None,
        submitted_ns: float | None = None,
    ) -> _Tracked:
        """Enqueue one resumable job; its latency clock starts now.

        ``deadline_ns`` is *relative* to submission; ``submitted_ns``
        overrides the submission timestamp (open-loop replay backdates it
        to the arrival time, so queue latency and the deadline are measured
        from when the request arrived, not when the server got to it).
        """
        if on_deadline not in ON_DEADLINE:
            raise ValueError(
                f"on_deadline must be one of {ON_DEADLINE}, got {on_deadline!r}"
            )
        if deadline_ns is not None and deadline_ns <= 0:
            raise ValueError(f"deadline_ns must be positive, got {deadline_ns}")
        submitted = self.clock.elapsed_ns if submitted_ns is None else submitted_ns
        entry = _Tracked(
            job=job,
            name=name or getattr(job, "name", f"job-{self._order}"),
            seq=self._order,
            submitted_ns=submitted,
            deadline_ns=None if deadline_ns is None else submitted + deadline_ns,
            on_deadline=on_deadline,
        )
        self._order += 1
        self._entries.append(entry)
        return entry

    # -------------------------------------------------------------- inspection

    def _runnable(self) -> list[_Tracked]:
        return [e for e in self._entries if e.outcome is None]

    @property
    def pending(self) -> int:
        """Jobs submitted but not yet finalized."""
        return len(self._runnable())

    @property
    def idle(self) -> bool:
        return not self._runnable()

    # ------------------------------------------------------------- finalization

    def _finalize(self, entry: _Tracked, status: str, report, error=None) -> None:
        entry.outcome = ServingOutcome(
            name=entry.name,
            status=status,
            report=report,
            submitted_ns=entry.submitted_ns,
            finished_ns=self.clock.elapsed_ns,
            steps=entry.steps,
            service_ns=entry.service_ns,
            deadline_ns=entry.deadline_ns,
            error=error,
        )
        self._fresh.append(entry)
        if self.admission is not None:
            self.admission.release()
        if self.metrics is not None:
            self.metrics.record_outcome(entry.outcome)

    def _expire_due(self) -> None:
        """Finalize every unfinished job whose deadline the clock has passed.

        Runs before each slice is granted (a job already past its deadline
        must not consume more server time) and again after it (one job's
        service can push *waiting* jobs past their deadlines).
        """
        now = self.clock.elapsed_ns
        for entry in self._runnable():
            if entry.deadline_ns is None or now < entry.deadline_ns:
                continue
            if entry.on_deadline == "partial" and hasattr(entry.job, "finish_partial"):
                self._finalize(
                    entry, PARTIAL, entry.job.finish_partial(entry.service_ns)
                )
            else:
                self._finalize(
                    entry,
                    MISS,
                    None,
                    error=DeadlineMiss(entry.name, entry.deadline_ns, now),
                )

    # --------------------------------------------------------------- execution

    def step(self) -> bool:
        """Grant one time slice: expire overdue jobs, let the policy pick a
        runnable job, advance it one bounded step, settle the consequences.
        Returns False when there was nothing to run."""
        self._expire_due()
        runnable = self._runnable()
        if not runnable:
            return False
        entry = self.policy.select(runnable, self.clock.elapsed_ns)
        before = self.clock.elapsed_ns
        entry.job.step()
        entry.service_ns += self.clock.elapsed_ns - before
        entry.steps += 1
        entry.rr_key = self._order
        self._order += 1
        if entry.job.done:
            # Done beats expired: a job finishing exactly on its deadline
            # (round boundary == deadline) is a hit, not a miss.
            self._finalize(entry, COMPLETED, entry.job.finish(entry.service_ns))
        self._expire_due()
        return True

    def run_until_idle(self) -> tuple[ServingOutcome, ...]:
        """Drain every pending job; returns outcomes finalized by this call."""
        while self.step():
            pass
        return tuple(entry.outcome for entry in self.take_finished())

    def cancel_pending(self, reason: str = "serving scheduler shut down") -> int:
        """Finalize every unfinished job as :data:`CANCELLED` (shutdown path).

        The jobs get no further steps; their partial work is discarded.
        Returns the number of jobs cancelled.
        """
        live = self._runnable()
        for entry in live:
            self._finalize(entry, CANCELLED, None, error=ServingError(reason))
        return len(live)

    def take_finished(self) -> list[_Tracked]:
        """Entries finalized since the last take (submission order), for
        callers that need the entry ↔ outcome pairing (handle dispatch)."""
        fresh = sorted(self._fresh, key=lambda e: e.seq)
        self._fresh.clear()
        return fresh
