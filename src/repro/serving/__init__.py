"""The online serving subsystem: a front door for interactive-latency matching.

The paper's headline is interactive latency; this package supplies the
serving architecture that claim implies when queries arrive as traffic
rather than as a batch:

- :class:`FrontDoor` — accepts :class:`QueryRequest`\\ s while others run
  (threaded), or replays open-loop arrival traces on the simulated clock
  (deterministic);
- :class:`AdmissionController` — bounded queue depth with load shedding
  (typed :class:`AdmissionRejected`);
- :class:`ServingScheduler` + policies (:data:`POLICIES`: FIFO,
  round-robin, earliest-deadline-first, shortest-expected-remaining-cost
  via the paper's lookahead estimate) — time-slice resumable
  :class:`~repro.core.histsim.HistSimStepper` jobs on one shared
  :class:`~repro.system.clock.SimulatedClock`;
- per-request deadlines — expiry yields an ε-relaxed partial answer
  carrying its actually-achieved guarantee, or a typed
  :class:`DeadlineMiss`;
- :class:`ServingMetrics` — snapshot API for per-query latency
  percentiles, deadline-hit rate, and shed counts
  (:class:`~repro.system.report.ServingReport`).

Scheduling shapes latency only: a request served through the front door
with no deadline returns byte-identical results to a standalone
:func:`repro.match_histograms` call, under every policy.
"""

from .admission import AdmissionController
from .frontdoor import FrontDoor, ResponseHandle
from .metrics import ServingMetrics
from .policies import (
    POLICIES,
    EdfPolicy,
    FifoPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    ShortestCostPolicy,
    make_policy,
)
from .request import (
    ON_DEADLINE,
    AdmissionRejected,
    DeadlineMiss,
    QueryRequest,
    ServingError,
)
from .scheduler import (
    CANCELLED,
    COMPLETED,
    MISS,
    PARTIAL,
    SHED,
    ServingOutcome,
    ServingScheduler,
)

__all__ = [
    "ON_DEADLINE",
    "POLICIES",
    "CANCELLED",
    "COMPLETED",
    "MISS",
    "PARTIAL",
    "SHED",
    "AdmissionController",
    "AdmissionRejected",
    "DeadlineMiss",
    "EdfPolicy",
    "FifoPolicy",
    "FrontDoor",
    "QueryRequest",
    "ResponseHandle",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "ServingError",
    "ServingMetrics",
    "ServingOutcome",
    "ServingScheduler",
    "ShortestCostPolicy",
    "make_policy",
]
