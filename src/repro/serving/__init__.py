"""The online serving subsystem: a front door for interactive-latency matching.

The paper's headline is interactive latency; this package supplies the
serving architecture that claim implies when queries arrive as traffic
rather than as a batch:

- :class:`ServingEngine` — the pure, clock-agnostic scheduling core
  (pick-next / advance-job / settle; no threads, no locks) every driver
  runs on;
- :class:`FrontDoor` (threads) and :class:`AsyncFrontDoor` (asyncio) —
  thin drivers accepting :class:`QueryRequest`\\ s while others run;
  the thread door also replays open-loop arrival traces on the simulated
  clock (deterministic).  Either drives one
  :class:`~repro.system.MatchSession` or a multi-dataset
  :class:`~repro.system.SessionRegistry`;
- :class:`AdmissionController` — bounded queue depth with load shedding
  (typed :class:`AdmissionRejected`);
- policies (:data:`POLICIES`: FIFO, round-robin, EDF, feasibility-aware
  EDF (``edf-f``, sheds doomed requests as immediate partials),
  shortest-expected-remaining-cost via the paper's lookahead estimate) —
  time-slice resumable :class:`~repro.core.histsim.HistSimStepper` jobs
  on any :class:`~repro.system.clock.Clock` (simulated or wall);
- per-request deadlines — expiry yields an ε-relaxed partial answer
  carrying its actually-achieved guarantee, or a typed
  :class:`DeadlineMiss`;
- :class:`ServingMetrics` — snapshot API for per-query latency
  percentiles, deadline-hit rate, and shed counts
  (:class:`~repro.system.report.ServingReport`).

Scheduling shapes latency only: a request served through the front door
with no deadline returns byte-identical results to a standalone
:func:`repro.match_histograms` call, under every policy.
"""

from .admission import AdmissionController
from .async_frontdoor import AsyncFrontDoor, AsyncResponseHandle
from .engine import ServingEngine
from .frontdoor import FrontDoor, ResponseHandle
from .metrics import ServingMetrics
from .policies import (
    POLICIES,
    EdfPolicy,
    FeasibleEdfPolicy,
    FifoPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    ShortestCostPolicy,
    make_policy,
)
from .request import (
    ON_DEADLINE,
    AdmissionRejected,
    DeadlineMiss,
    InfeasibleDeadline,
    QueryRequest,
    ServingError,
    UnknownDataset,
)
from .scheduler import (
    CANCELLED,
    COMPLETED,
    MISS,
    PARTIAL,
    SHED,
    ServingOutcome,
    ServingScheduler,
)

__all__ = [
    "ON_DEADLINE",
    "POLICIES",
    "CANCELLED",
    "COMPLETED",
    "MISS",
    "PARTIAL",
    "SHED",
    "AdmissionController",
    "AdmissionRejected",
    "AsyncFrontDoor",
    "AsyncResponseHandle",
    "DeadlineMiss",
    "EdfPolicy",
    "FeasibleEdfPolicy",
    "FifoPolicy",
    "FrontDoor",
    "InfeasibleDeadline",
    "QueryRequest",
    "ResponseHandle",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "ServingEngine",
    "ServingError",
    "ServingMetrics",
    "ServingOutcome",
    "ServingScheduler",
    "ShortestCostPolicy",
    "UnknownDataset",
    "make_policy",
]
