"""Scheduling policies: which admitted query gets the next time slice.

Every policy sees the same runnable set (admitted, unfinished, unexpired
jobs in submission order) and picks one to advance by one bounded step.
Because steps are bounded (``max_step_rows`` slices a round's sampling),
policy choice controls *latency shape*, never results: any policy yields
byte-identical per-query answers, a property the serving tests pin.

- **fifo** — strict arrival order, run-to-completion.  Simple, but one
  heavy query convoys everyone behind it.
- **rr** — round-robin: least-recently-stepped first.  Fair time-slicing,
  the PR-2 drain behaviour.
- **edf** — earliest deadline first: the classic result that EDF maximizes
  deadline hits on a single server when feasible; requests without
  deadlines run in arrival order behind every deadline-carrying request.
- **cost** — shortest expected remaining cost, using the paper's own
  budgeting machinery (Eq. 1 round budgets + the stage-3 target) as the
  estimate: SRPT-style mean-latency minimization.

Ties break by submission order everywhere, which also makes every policy
starvation-free on a finite workload: the tie-break is strict and a job's
key never moves behind a job it already beats.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

__all__ = [
    "POLICIES",
    "EdfPolicy",
    "FifoPolicy",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "ShortestCostPolicy",
    "make_policy",
]


class SchedulingPolicy(ABC):
    """Strategy choosing the next job to advance by one step."""

    name: str = "abstract"

    @abstractmethod
    def select(self, runnable: Sequence, now_ns: float):
        """Pick one entry from ``runnable`` (non-empty, submission order).

        Entries expose ``seq`` (submission order), ``rr_key`` (bumped to a
        fresh global counter after every step), ``deadline_ns`` (absolute,
        or ``None``), and ``estimated_remaining()`` (rows, ``inf`` when the
        job offers no estimate).
        """


class FifoPolicy(SchedulingPolicy):
    """Arrival order, run-to-completion."""

    name = "fifo"

    def select(self, runnable, now_ns):
        return min(runnable, key=lambda e: e.seq)


class RoundRobinPolicy(SchedulingPolicy):
    """Least-recently-stepped first — each alive job advances once per cycle."""

    name = "rr"

    def select(self, runnable, now_ns):
        return min(runnable, key=lambda e: e.rr_key)


class EdfPolicy(SchedulingPolicy):
    """Earliest (absolute) deadline first; deadline-free jobs go last, FIFO."""

    name = "edf"

    def select(self, runnable, now_ns):
        return min(
            runnable,
            key=lambda e: (
                e.deadline_ns if e.deadline_ns is not None else float("inf"),
                e.seq,
            ),
        )


class ShortestCostPolicy(SchedulingPolicy):
    """Shortest expected remaining cost (the paper's lookahead estimate)."""

    name = "cost"

    def select(self, runnable, now_ns):
        return min(runnable, key=lambda e: (e.estimated_remaining(), e.seq))


#: Policy names accepted by the CLI and :func:`make_policy`.
POLICIES = ("fifo", "rr", "edf", "cost")

_POLICY_CLASSES = {
    FifoPolicy.name: FifoPolicy,
    RoundRobinPolicy.name: RoundRobinPolicy,
    EdfPolicy.name: EdfPolicy,
    ShortestCostPolicy.name: ShortestCostPolicy,
}


def make_policy(spec: str | SchedulingPolicy) -> SchedulingPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(spec, SchedulingPolicy):
        return spec
    if spec in _POLICY_CLASSES:
        return _POLICY_CLASSES[spec]()
    raise ValueError(f"policy must be one of {POLICIES}, got {spec!r}")
