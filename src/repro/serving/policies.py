"""Scheduling policies: which admitted query gets the next time slice.

Every policy sees the same runnable set (admitted, unfinished, unexpired
jobs in submission order) and picks one to advance by one bounded step.
Because steps are bounded (``max_step_rows`` slices a round's sampling),
policy choice controls *latency shape*, never results: any policy yields
byte-identical per-query answers, a property the serving tests pin.

- **fifo** — strict arrival order, run-to-completion.  Simple, but one
  heavy query convoys everyone behind it.
- **rr** — round-robin: least-recently-stepped first.  Fair time-slicing,
  the PR-2 drain behaviour.
- **edf** — earliest deadline first: the classic result that EDF maximizes
  deadline hits on a single server when feasible; requests without
  deadlines run in arrival order behind every deadline-carrying request.
- **edf-f** — feasibility-aware EDF: same ordering, but *queued* jobs
  whose full-run lookahead estimate can no longer meet their deadline are
  settled as ε-relaxed partial answers *immediately* (the engine honours
  the policy's ``feasibility_aware`` flag).  Past ~1.5× overload pure EDF
  exhibits the classic domino — it keeps granting slices to the most
  imminent, hence most doomed, request — while edf-f answers the doomed
  ones up front and spends those slices on requests that can still win.
- **cost** — shortest expected remaining cost, using the paper's own
  budgeting machinery (Eq. 1 round budgets + the stage-3 target) as the
  estimate: SRPT-style mean-latency minimization.

Ties break by submission order everywhere, which also makes every policy
starvation-free on a finite workload: the tie-break is strict and a job's
key never moves behind a job it already beats.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

__all__ = [
    "POLICIES",
    "EdfPolicy",
    "FeasibleEdfPolicy",
    "FifoPolicy",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "ShortestCostPolicy",
    "make_policy",
]


class SchedulingPolicy(ABC):
    """Strategy choosing the next job to advance by one step."""

    name: str = "abstract"

    #: When True, the engine settles deadline-carrying jobs whose
    #: remaining-cost lookahead (``estimated_remaining_ns``) can no longer
    #: meet their deadline as immediate ε-relaxed partials, before granting
    #: any slice.
    feasibility_aware: bool = False

    @abstractmethod
    def select(self, runnable: Sequence, now_ns: float):
        """Pick one entry from ``runnable`` (non-empty, submission order).

        Entries expose ``seq`` (submission order), ``rr_key`` (bumped to a
        fresh global counter after every step), ``deadline_ns`` (absolute,
        or ``None``), and ``estimated_remaining()`` (rows, ``inf`` when the
        job offers no estimate).
        """


class FifoPolicy(SchedulingPolicy):
    """Arrival order, run-to-completion."""

    name = "fifo"

    def select(self, runnable, now_ns):
        return min(runnable, key=lambda e: e.seq)


class RoundRobinPolicy(SchedulingPolicy):
    """Least-recently-stepped first — each alive job advances once per cycle."""

    name = "rr"

    def select(self, runnable, now_ns):
        return min(runnable, key=lambda e: e.rr_key)


class EdfPolicy(SchedulingPolicy):
    """Earliest (absolute) deadline first; deadline-free jobs go last, FIFO."""

    name = "edf"

    def select(self, runnable, now_ns):
        return min(
            runnable,
            key=lambda e: (
                e.deadline_ns if e.deadline_ns is not None else float("inf"),
                e.seq,
            ),
        )


class FeasibleEdfPolicy(EdfPolicy):
    """EDF ordering over only the requests that can still make it.

    Selection is inherited unchanged from EDF; the policy's
    ``feasibility_aware`` flag makes the engine settle doomed *queued*
    deadline-carrying jobs — whose full-run lookahead estimate no longer
    fits their remaining deadline — as immediate partial answers before
    any selection happens.  Only never-started jobs are screened: at
    submission the estimate tracks true service closely, while mid-run it
    can overestimate wildly (the stage-3 residual is a theoretical
    target), so screening there would shed requests that were about to
    finish.
    """

    name = "edf-f"
    feasibility_aware = True

    #: Discount on the remaining-cost lookahead in the engine's doomed
    #: test (``now + margin × estimate > deadline``).  1.0 trusts the
    #: at-submission estimate outright; shrinking toward 0 sheds less and
    #: degenerates to plain EDF.
    feasibility_margin: float = 1.0


class ShortestCostPolicy(SchedulingPolicy):
    """Shortest expected remaining cost (the paper's lookahead estimate)."""

    name = "cost"

    def select(self, runnable, now_ns):
        return min(runnable, key=lambda e: (e.estimated_remaining(), e.seq))


#: Policy names accepted by the CLI and :func:`make_policy`.
POLICIES = ("fifo", "rr", "edf", "edf-f", "cost")

_POLICY_CLASSES = {
    FifoPolicy.name: FifoPolicy,
    RoundRobinPolicy.name: RoundRobinPolicy,
    EdfPolicy.name: EdfPolicy,
    FeasibleEdfPolicy.name: FeasibleEdfPolicy,
    ShortestCostPolicy.name: ShortestCostPolicy,
}


def make_policy(spec: str | SchedulingPolicy) -> SchedulingPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(spec, SchedulingPolicy):
        return spec
    if spec in _POLICY_CLASSES:
        return _POLICY_CLASSES[spec]()
    raise ValueError(f"policy must be one of {POLICIES}, got {spec!r}")
