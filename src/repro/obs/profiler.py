"""Hot-path profiler: deterministic kernel counters + a sampling wall profiler.

Two independent modes, both strictly observational (profiling never touches
sampling arithmetic, RNG draws, or clock charges, so profiled runs stay
byte-identical to unprofiled ones):

- **deterministic counters** — :class:`Profiler` accumulates per-kernel
  effort (calls, ns, rows gathered, blocks touched, bytes moved, bincount
  invocations) from hooks inside :class:`~repro.sampling.engine.
  BlockSamplingEngine` and every backend's ``count_blocks``/``count_table``.
  The default hook target is :data:`NULL_PROFILER`, a shared no-op whose
  only cost on the counting hot loop is one attribute load and one branch —
  no allocation, no call.
- **sampling wall profiler** — :class:`WallProfiler` is a background thread
  that periodically snapshots every other thread's stack via
  ``sys._current_frames()`` (no signals, no ``sys.setprofile``, so the
  profiled code runs at full speed between samples) and aggregates them
  into collapsed-stack lines (``frame;frame;frame count``) renderable by
  any flamegraph tool.

Per-stage attribution: the session's stepper wraps each scheduler slice in
:meth:`Profiler.stage`, so kernel records land under the HistSim stage
(``stage1``/``stage2``/``stage3``/``scan``) that issued them, and
:meth:`Profiler.record_stage` stamps each stage's total duration *on the
job's own clock* — the same endpoints the stage's trace span carries, so
profile stage sums reconcile with PR 7 traces exactly.

Kernel ``ns`` semantics per kernel name: backend kernels record real
``perf_counter_ns`` work time (worker-side time for the process pool);
``engine.deliver`` records the *simulated* I/O cost the cost model charged,
putting the Eq. 1 estimate next to measured kernel time in one table.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "NULL_PROFILER",
    "NullProfiler",
    "ProfileSnapshot",
    "Profiler",
    "WallProfiler",
]


class _KernelStats:
    """Mutable per-(stage, kernel) accumulator."""

    __slots__ = ("calls", "ns", "rows", "blocks", "nbytes", "bincounts")

    def __init__(self) -> None:
        self.calls = 0
        self.ns = 0.0
        self.rows = 0
        self.blocks = 0
        self.nbytes = 0
        self.bincounts = 0

    def to_dict(self) -> dict:
        return {
            "calls": self.calls,
            "ns": self.ns,
            "rows": self.rows,
            "blocks": self.blocks,
            "bytes": self.nbytes,
            "bincounts": self.bincounts,
        }


class _StageStats:
    """Mutable per-stage totals, stamped on the job's clock."""

    __slots__ = ("steps", "ns", "rows")

    def __init__(self) -> None:
        self.steps = 0
        self.ns = 0.0
        self.rows = 0

    def to_dict(self) -> dict:
        return {"steps": self.steps, "ns": self.ns, "rows": self.rows}


@dataclass(frozen=True)
class ProfileSnapshot:
    """Frozen view of one profiler's accumulated effort.

    ``totals`` aggregates the deterministic counters across every kernel
    (engine-level records contribute no rows/blocks/bytes, so backend work
    is never double-counted); ``stages`` carries per-stage durations on the
    job's clock; ``kernels`` is ``stage -> kernel -> stats``.
    """

    totals: dict = field(default_factory=dict)
    stages: dict = field(default_factory=dict)
    kernels: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "totals": dict(self.totals),
            "stages": {s: dict(v) for s, v in self.stages.items()},
            "kernels": {
                s: {k: dict(v) for k, v in ks.items()}
                for s, ks in self.kernels.items()
            },
        }

    def format_table(self) -> str:
        """Per-kernel effort table (fixed-width, CLI-facing)."""
        lines = [
            f"{'stage':<10} {'kernel':<18} {'calls':>7} {'ms':>10} "
            f"{'rows':>12} {'blocks':>9} {'MiB':>9} {'bincounts':>9}"
        ]
        for stage in sorted(self.kernels):
            for kernel in sorted(self.kernels[stage]):
                k = self.kernels[stage][kernel]
                lines.append(
                    f"{stage:<10} {kernel:<18} {k['calls']:>7} "
                    f"{k['ns'] * 1e-6:>10.3f} {k['rows']:>12,} {k['blocks']:>9,} "
                    f"{k['bytes'] / 2**20:>9.2f} {k['bincounts']:>9}"
                )
        return "\n".join(lines)


class NullProfiler:
    """Shared no-op profiler: the zero-overhead default for every hook.

    Hot paths guard with ``if profiler.enabled:`` — a class-attribute load
    and a branch, no allocation — so the disabled counting loop is
    byte-and-allocation-identical to the pre-profiler code.  The recording
    methods exist (as no-ops) only for callers that hold a profiler without
    checking, never for the hot loop.
    """

    __slots__ = ()

    enabled = False

    def record_kernel(self, kernel, ns, **counts) -> None:
        pass

    def record_stage(self, stage, ns, rows=0) -> None:
        pass

    def bump(self, counter, value=1) -> None:
        pass

    def fork(self) -> "NullProfiler":
        return self

    def stage(self, name):
        return _NULL_STAGE

    def snapshot(self) -> ProfileSnapshot:
        return ProfileSnapshot()


class _NullStage:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_STAGE = _NullStage()

#: The shared no-op: every profiler hook defaults to this.
NULL_PROFILER = NullProfiler()

_UNATTRIBUTED = "unattributed"


class _StageScope:
    """Context manager swapping the profiler's thread-local stage label."""

    __slots__ = ("_profiler", "_name", "_prev")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self):
        local = self._profiler._local
        self._prev = getattr(local, "stage", None)
        local.stage = self._name
        return self

    def __exit__(self, *exc_info):
        self._profiler._local.stage = self._prev
        return False


class Profiler:
    """Deterministic hot-path counters, attributable per HistSim stage.

    Thread-safe: a registry shares one backend across tenants, and
    executor-offloaded steps record from worker threads; the stage label is
    thread-local (each scheduler slice runs wholly on one thread), the
    accumulators are lock-protected.

    ``fork()`` returns a child whose records also roll up into this
    profiler, so a session can hand each job its own child (per-job
    profiles on the :class:`~repro.system.report.RunReport`) while keeping
    a session-wide aggregate.
    """

    enabled = True

    def __init__(self, parent: "Profiler | None" = None) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._parent = parent
        # (stage, kernel) -> _KernelStats
        self._kernels: dict[tuple[str, str], _KernelStats] = {}
        # stage -> _StageStats (job-clock durations)
        self._stages: dict[str, _StageStats] = {}
        self._counters: dict[str, int] = {}

    # ------------------------------------------------------------- recording

    def stage(self, name: str) -> _StageScope:
        """Scope all records on this thread under HistSim stage ``name``."""
        return _StageScope(self, name)

    @property
    def current_stage(self) -> str:
        return getattr(self._local, "stage", None) or _UNATTRIBUTED

    def record_kernel(
        self,
        kernel: str,
        ns: float,
        *,
        rows: int = 0,
        blocks: int = 0,
        nbytes: int = 0,
        bincounts: int = 0,
    ) -> None:
        """Fold one kernel invocation into the current stage's accumulator."""
        key = (self.current_stage, kernel)
        with self._lock:
            stats = self._kernels.get(key)
            if stats is None:
                stats = self._kernels[key] = _KernelStats()
            stats.calls += 1
            stats.ns += ns
            stats.rows += rows
            stats.blocks += blocks
            stats.nbytes += nbytes
            stats.bincounts += bincounts
        if self._parent is not None:
            self._parent.record_kernel(
                kernel, ns, rows=rows, blocks=blocks, nbytes=nbytes,
                bincounts=bincounts,
            )

    def record_stage(self, stage: str, ns: float, rows: int = 0) -> None:
        """One scheduler slice of ``stage`` took ``ns`` on the job's clock.

        Called with the same clock endpoints the stage's trace span carries,
        so profile stage sums and trace stage sums agree exactly.
        """
        with self._lock:
            stats = self._stages.get(stage)
            if stats is None:
                stats = self._stages[stage] = _StageStats()
            stats.steps += 1
            stats.ns += ns
            stats.rows += int(rows)
        if self._parent is not None:
            self._parent.record_stage(stage, ns, rows)

    def bump(self, counter: str, value: int = 1) -> None:
        """Increment a named scalar counter (e.g. ``windows``)."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + value
        if self._parent is not None:
            self._parent.bump(counter, value)

    def fork(self) -> "Profiler":
        """A child profiler whose records roll up into this one."""
        return Profiler(parent=self)

    # -------------------------------------------------------------- snapshot

    def snapshot(self) -> ProfileSnapshot:
        """Frozen aggregate of everything recorded so far."""
        with self._lock:
            kernels: dict[str, dict[str, dict]] = {}
            totals = {
                "rows_gathered": 0,
                "blocks_touched": 0,
                "bytes_moved": 0,
                "bincount_calls": 0,
                "kernel_calls": 0,
                "kernel_ns": 0.0,
            }
            for (stage, kernel), stats in self._kernels.items():
                kernels.setdefault(stage, {})[kernel] = stats.to_dict()
                totals["rows_gathered"] += stats.rows
                totals["blocks_touched"] += stats.blocks
                totals["bytes_moved"] += stats.nbytes
                totals["bincount_calls"] += stats.bincounts
                totals["kernel_calls"] += stats.calls
                if not kernel.startswith("engine."):
                    # engine.deliver ns is the simulated I/O charge, not
                    # measured kernel time; keep the wall total pure.
                    totals["kernel_ns"] += stats.ns
            totals.update(self._counters)
            stages = {s: st.to_dict() for s, st in sorted(self._stages.items())}
            return ProfileSnapshot(totals=totals, stages=stages, kernels=kernels)


# --------------------------------------------------------------------------
# Sampling wall profiler
# --------------------------------------------------------------------------


def _collapse_frame(frame) -> str:
    """One collapsed stack for ``frame``, root first, ``;``-separated."""
    parts: list[str] = []
    while frame is not None:
        code = frame.f_code
        parts.append(f"{code.co_name} ({code.co_filename.rsplit('/', 1)[-1]})")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class WallProfiler:
    """Background-thread stack sampler producing collapsed flamegraph input.

    Samples every live thread except itself at ``interval_s`` via
    ``sys._current_frames()``; no signals and no trace hooks, so the
    profiled code pays nothing between samples.  ``collapsed()`` returns
    ``{stack: samples}``; :meth:`format_collapsed` renders the standard
    ``frame;frame;frame count`` lines flamegraph tools consume.
    """

    def __init__(self, interval_s: float = 0.005) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.interval_s = interval_s
        self.samples = 0
        self._stacks: dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.is_set():
            frames = sys._current_frames()
            with self._lock:
                self.samples += 1
                for thread_id, frame in frames.items():
                    if thread_id == own_id:
                        continue
                    stack = _collapse_frame(frame)
                    self._stacks[stack] = self._stacks.get(stack, 0) + 1
            self._stop.wait(self.interval_s)

    def start(self) -> "WallProfiler":
        if self._thread is not None:
            raise RuntimeError("WallProfiler already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-wall-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def collapsed(self) -> dict[str, int]:
        with self._lock:
            return dict(self._stacks)

    def format_collapsed(self, top: int | None = None) -> str:
        """``frame;frame;frame count`` lines, hottest stacks first."""
        with self._lock:
            ranked = sorted(self._stacks.items(), key=lambda kv: -kv[1])
        if top is not None:
            ranked = ranked[:top]
        return "\n".join(f"{stack} {count}" for stack, count in ranked)

    def __enter__(self) -> "WallProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
