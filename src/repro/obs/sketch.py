"""Bounded streaming quantiles: exact until ``capacity``, reservoir after.

:class:`ServingMetrics` used to keep one float per request forever — an
unbounded-memory bug under long-lived serving.  The sketch replaces those
lists with a two-regime structure:

- **exact regime** (``count <= capacity``): every observation is kept, so
  percentiles are *byte-identical* to the old full-list computation —
  benchmark-scale runs (thousands of requests) see no numeric change.
- **reservoir regime** (``count > capacity``): Vitter's Algorithm R over a
  deterministically-seeded ``random.Random``, giving a uniform sample of
  the stream in O(capacity) memory.  The expected quantile error is
  ``~sqrt(q(1-q)/capacity)`` — under 2% at p99 for the default capacity.

Count, sum, min and max are always exact regardless of regime.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = ["QuantileSketch", "DEFAULT_SKETCH_CAPACITY"]

#: Default retention: exact percentiles up to this many observations.
DEFAULT_SKETCH_CAPACITY = 4096


class QuantileSketch:
    """Bounded-memory quantile estimator over a stream of floats."""

    __slots__ = ("capacity", "count", "total", "minimum", "maximum", "_samples", "_rng")

    def __init__(self, capacity: int = DEFAULT_SKETCH_CAPACITY, seed: int = 0x5EED) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._samples: list[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            # Algorithm R: keep each of the `count` stream elements with
            # probability capacity/count.
            j = self._rng.randrange(self.count)
            if j < self.capacity:
                self._samples[j] = value

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other``'s stream into this sketch without re-recording.

        Count, sum, min, and max merge exactly.  While the union still fits
        in ``capacity`` the samples simply concatenate, so the merged sketch
        is byte-identical to having observed both streams directly (exact
        regime).  Beyond capacity the retained samples of the two sketches
        are themselves uniform samples of their streams, so a uniform
        sample of the union is drawn by repeatedly picking a source with
        probability proportional to its remaining represented stream mass
        and removing one of its samples at random — each retained sample of
        sketch ``i`` stands for ``count_i / len(samples_i)`` stream
        elements.  The merged quantile error keeps the documented
        ``~sqrt(q(1-q)/capacity)`` reservoir bound.

        ``other`` is read, never mutated.  Returns ``self``.
        """
        if other.count == 0:
            return self
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        n_self, n_other = self.count, other.count
        self.count = n_self + n_other
        if len(self._samples) + len(other._samples) <= self.capacity:
            self._samples.extend(other._samples)
            return self
        ours, theirs = list(self._samples), list(other._samples)
        weight_self = n_self / len(ours) if ours else 0.0
        weight_other = n_other / len(theirs) if theirs else 0.0
        mass_self, mass_other = float(n_self), float(n_other)
        merged: list[float] = []
        while len(merged) < self.capacity and (ours or theirs):
            take_self = bool(ours) and (
                not theirs
                or self._rng.random() * (mass_self + mass_other) < mass_self
            )
            if take_self:
                merged.append(ours.pop(self._rng.randrange(len(ours))))
                mass_self = max(mass_self - weight_self, 0.0)
            else:
                merged.append(theirs.pop(self._rng.randrange(len(theirs))))
                mass_other = max(mass_other - weight_other, 0.0)
        self._samples = merged
        return self

    # ------------------------------------------------------------- queries

    @property
    def exact(self) -> bool:
        """True while every observation is still retained."""
        return self.count <= self.capacity

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        if self.exact:
            # Matches the historical np.mean(full list) bit-for-bit.
            return float(np.asarray(self._samples, dtype=np.float64).mean())
        return self.total / self.count

    def percentile(self, q: float) -> float:
        if not self._samples:
            return 0.0
        return float(np.percentile(np.asarray(self._samples, dtype=np.float64), q))

    def percentiles(self, qs) -> list[float]:
        if not self._samples:
            return [0.0] * len(qs)
        arr = np.asarray(self._samples, dtype=np.float64)
        return np.percentile(arr, qs).tolist()

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        regime = "exact" if self.exact else "reservoir"
        return f"QuantileSketch(count={self.count}, {regime}/{self.capacity})"
