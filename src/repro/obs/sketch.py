"""Bounded streaming quantiles: exact until ``capacity``, reservoir after.

:class:`ServingMetrics` used to keep one float per request forever — an
unbounded-memory bug under long-lived serving.  The sketch replaces those
lists with a two-regime structure:

- **exact regime** (``count <= capacity``): every observation is kept, so
  percentiles are *byte-identical* to the old full-list computation —
  benchmark-scale runs (thousands of requests) see no numeric change.
- **reservoir regime** (``count > capacity``): Vitter's Algorithm R over a
  deterministically-seeded ``random.Random``, giving a uniform sample of
  the stream in O(capacity) memory.  The expected quantile error is
  ``~sqrt(q(1-q)/capacity)`` — under 2% at p99 for the default capacity.

Count, sum, min and max are always exact regardless of regime.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = ["QuantileSketch", "DEFAULT_SKETCH_CAPACITY"]

#: Default retention: exact percentiles up to this many observations.
DEFAULT_SKETCH_CAPACITY = 4096


class QuantileSketch:
    """Bounded-memory quantile estimator over a stream of floats."""

    __slots__ = ("capacity", "count", "total", "minimum", "maximum", "_samples", "_rng")

    def __init__(self, capacity: int = DEFAULT_SKETCH_CAPACITY, seed: int = 0x5EED) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._samples: list[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            # Algorithm R: keep each of the `count` stream elements with
            # probability capacity/count.
            j = self._rng.randrange(self.count)
            if j < self.capacity:
                self._samples[j] = value

    # ------------------------------------------------------------- queries

    @property
    def exact(self) -> bool:
        """True while every observation is still retained."""
        return self.count <= self.capacity

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        if self.exact:
            # Matches the historical np.mean(full list) bit-for-bit.
            return float(np.asarray(self._samples, dtype=np.float64).mean())
        return self.total / self.count

    def percentile(self, q: float) -> float:
        if not self._samples:
            return 0.0
        return float(np.percentile(np.asarray(self._samples, dtype=np.float64), q))

    def percentiles(self, qs) -> list[float]:
        if not self._samples:
            return [0.0] * len(qs)
        arr = np.asarray(self._samples, dtype=np.float64)
        return np.percentile(arr, qs).tolist()

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        regime = "exact" if self.exact else "reservoir"
        return f"QuantileSketch(count={self.count}, {regime}/{self.capacity})"
