"""Clock-aware spans and the tracer that collects them.

A span is an interval ``[t0_ns, t1_ns]`` on *some* clock's timeline plus
a name and a flat attribute dict.  Which clock matters: under simulated
replay the interesting timeline is the :class:`SimulatedClock`'s virtual
nanoseconds (span durations there are exactly the cost-model charges the
work incurred), while backend fan-out and pool waits are real-time
quantities stamped on the process monotonic clock.  Every record
therefore carries the *name* of the clock that stamped it, and consumers
(:func:`repro.obs.trace_io.summarize_records`) group by timeline instead
of assuming one.

Two emission styles:

- ``with tracer.span("stepper.stage2", clock=job.clock) as sp:`` — reads
  the clock on entry/exit and maintains a thread-local parent stack, so
  spans emitted *inside* the block (e.g. backend windows during a step)
  nest under it.
- ``tracer.span_at(name, t0, t1, clock=...)`` — explicit timestamps, for
  the engine's queue-wait/step tiling where the interval endpoints are
  already known (``TrackedJob.last_progress_ns`` → now).

The no-op path is load-bearing: :data:`NULL_TRACER` is a shared
singleton whose ``enabled`` is ``False`` and whose ``span()`` hands back
one preallocated context manager — instrumented hot paths guard with
``if tracer.enabled:`` and the untraced engine allocates nothing.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping

__all__ = ["NULL_TRACER", "NullTracer", "SpanRecord", "Tracer"]


def _clock_label(clock) -> str:
    if clock is None or isinstance(clock, str):
        # A string is a timeline label for pre-taken timestamps (callers
        # pass clock="monotonic" with t0/t1 from time.monotonic_ns()).
        return clock or "monotonic"
    return type(clock).__name__


def _now_ns(clock) -> float:
    if clock is None or isinstance(clock, str):
        return float(time.monotonic_ns())
    return clock.elapsed_ns


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (or instantaneous event) as consumers see it."""

    name: str
    t0_ns: float
    t1_ns: float
    kind: str = "span"  # "span" | "event"
    clock: str = "monotonic"
    span_id: int = 0
    parent_id: int | None = None
    attrs: Mapping = field(default_factory=dict)

    @property
    def duration_ns(self) -> float:
        return self.t1_ns - self.t0_ns

    def to_json(self) -> dict:
        """Flat dict matching the JSONL trace schema (``kind`` span/event)."""
        return {
            "kind": self.kind,
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t0_ns": self.t0_ns,
            "t1_ns": self.t1_ns,
            "clock": self.clock,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_json(cls, obj: Mapping) -> "SpanRecord":
        return cls(
            name=obj["name"],
            t0_ns=float(obj["t0_ns"]),
            t1_ns=float(obj["t1_ns"]),
            kind=obj["kind"],
            clock=obj.get("clock", "monotonic"),
            span_id=int(obj["id"]),
            parent_id=obj.get("parent"),
            attrs=obj.get("attrs", {}),
        )


class _NullSpan:
    """The no-op context manager ``NULL_TRACER.span()`` always returns."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every method is a no-op, nothing is allocated.

    Hot paths additionally guard with ``if tracer.enabled:`` so even the
    argument construction for ``span_at``/``event`` is skipped.
    """

    enabled = False
    clock = None

    def span(self, name: str, /, clock=None, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def span_at(self, name: str, t0_ns: float, t1_ns: float, /, clock=None, **attrs):
        return None

    def event(self, name: str, /, clock=None, **attrs):
        return None

    def subscribe(self, sink) -> None:
        pass


NULL_TRACER = NullTracer()


class _ActiveSpan:
    """Live span from :meth:`Tracer.span`; emits its record on ``__exit__``."""

    __slots__ = ("_tracer", "name", "clock", "attrs", "span_id", "parent_id", "t0_ns")

    def __init__(self, tracer: "Tracer", name: str, clock, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.clock = clock
        self.attrs = attrs
        self.span_id = tracer._next_id()
        self.parent_id = None
        self.t0_ns = 0.0

    def set(self, **attrs) -> "_ActiveSpan":
        """Attach attributes discovered mid-span (e.g. the step's report)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        stack = self._tracer._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self.t0_ns = _now_ns(self.clock)
        return self

    def __exit__(self, *exc_info) -> bool:
        t1 = _now_ns(self.clock)
        stack = self._tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self._tracer._emit(
            SpanRecord(
                name=self.name,
                t0_ns=self.t0_ns,
                t1_ns=t1,
                kind="span",
                clock=_clock_label(self.clock),
                span_id=self.span_id,
                parent_id=self.parent_id,
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """Collects spans from every layer and fans them out to sinks.

    Parameters
    ----------
    clock:
        Default time source for spans that don't pass their own (backend
        windows, pool waits).  ``None`` falls back to the process
        monotonic clock; front doors bind it to the service clock on
        construction so the default timeline matches the engine's.
    max_spans:
        In-memory retention (a deque; oldest dropped).  Sinks see every
        record regardless — retention only bounds :attr:`spans`.

    Sinks subscribe via :meth:`subscribe` and must expose
    ``observe_span(record)``; both :class:`~repro.serving.ServingMetrics`
    (per-stage sketches) and :class:`~repro.obs.trace_io.TraceWriter`
    (JSONL export) implement that seam.  Emission is thread-safe: id
    allocation and retention share one lock, sinks lock themselves.
    """

    enabled = True

    def __init__(self, clock=None, max_spans: int = 65536) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        self._id = 0
        self.spans: deque[SpanRecord] = deque(maxlen=max_spans)
        self._sinks: list = []
        self._local = threading.local()

    # ------------------------------------------------------------- plumbing

    def _next_id(self) -> int:
        with self._lock:
            self._id += 1
            return self._id

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _emit(self, record: SpanRecord) -> None:
        with self._lock:
            self.spans.append(record)
            sinks = tuple(self._sinks)
        for sink in sinks:
            sink.observe_span(record)

    def subscribe(self, sink) -> None:
        """Register ``sink`` (anything with ``observe_span(record)``)."""
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)

    # ------------------------------------------------------------- emission

    def span(self, name: str, /, clock=None, **attrs) -> _ActiveSpan:
        """Context manager measuring its block on ``clock`` (or the default).

        ``name`` and the timestamps are positional-only so attribute keys
        of the same spelling (every request span carries a ``name`` attr)
        land in ``attrs`` instead of colliding."""
        return _ActiveSpan(self, name, clock if clock is not None else self.clock, attrs)

    def span_at(
        self, name: str, t0_ns: float, t1_ns: float, /, clock=None, **attrs
    ) -> SpanRecord:
        """Emit a span with explicit endpoints (already-known intervals)."""
        stack = self._stack()
        record = SpanRecord(
            name=name,
            t0_ns=t0_ns,
            t1_ns=t1_ns,
            kind="span",
            clock=_clock_label(clock if clock is not None else self.clock),
            span_id=self._next_id(),
            parent_id=stack[-1] if stack else None,
            attrs=attrs,
        )
        self._emit(record)
        return record

    def event(self, name: str, /, clock=None, **attrs) -> SpanRecord:
        """Instantaneous mark (``t0 == t1``) on ``clock`` (or the default)."""
        resolved = clock if clock is not None else self.clock
        now = _now_ns(resolved)
        stack = self._stack()
        record = SpanRecord(
            name=name,
            t0_ns=now,
            t1_ns=now,
            kind="event",
            clock=_clock_label(resolved),
            span_id=self._next_id(),
            parent_id=stack[-1] if stack else None,
            attrs=attrs,
        )
        self._emit(record)
        return record

    # ----------------------------------------------------------- convenience

    def records(self) -> list[SpanRecord]:
        """Retained records, oldest first (a snapshot copy)."""
        with self._lock:
            return list(self.spans)

    def callback(self) -> Callable[[str], None]:
        """``(name, **attrs) -> None`` adapter for layers that shouldn't
        import the tracer type (e.g. the shared-memory store's ``on_event``)."""

        def emit(name: str, /, **attrs) -> None:
            self.event(name, **attrs)

        return emit
