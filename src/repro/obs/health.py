"""Health monitoring: poll the live serving spine, report OK/DEGRADED/CRITICAL.

:class:`HealthMonitor` is constructed over a front door (sync or asyncio —
both expose the same ``admission``/``engine``/``metrics``/``service``
surface) and reads the spine without touching it: queue depth against the
admission bound, in-flight steps against the step slots, worker-pool
liveness, shared-memory bytes against a budget, registry cache pressure,
and clock skew across tenants.  Every poll yields a typed
:class:`HealthReport` whose :meth:`~HealthReport.to_dict` is exactly what
an HTTP tier's ``/healthz`` will serialize.

Checks are purely observational: the monitor never creates pools, never
steps jobs, and never takes engine locks — serving answers are unperturbed
by any polling frequency.

:class:`StatsExporter` is the file-based bridge to ``repro top``: a
background thread that periodically snapshots metrics + health into a JSON
file (atomic rename), which the dashboard tails from another process.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field

__all__ = [
    "CRITICAL",
    "DEGRADED",
    "HealthCheck",
    "HealthMonitor",
    "HealthReport",
    "OK",
    "StatsExporter",
]

OK = "ok"
DEGRADED = "degraded"
CRITICAL = "critical"

_SEVERITY = {OK: 0, DEGRADED: 1, CRITICAL: 2}

#: Utilization thresholds for bounded resources (queue, steps, shm, cache).
DEGRADED_UTILIZATION = 0.8
CRITICAL_UTILIZATION = 1.0


@dataclass(frozen=True)
class HealthCheck:
    """One probe's outcome: a named value against an optional limit."""

    name: str
    status: str
    detail: str
    value: float
    limit: float | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "detail": self.detail,
            "value": self.value,
            "limit": self.limit,
        }


@dataclass(frozen=True)
class HealthReport:
    """Aggregate health: the worst check wins."""

    status: str
    checks: tuple = field(default_factory=tuple)

    @property
    def reasons(self) -> tuple:
        """Details of every non-OK check."""
        return tuple(c.detail for c in self.checks if c.status != OK)

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "reasons": list(self.reasons),
            "checks": [c.to_dict() for c in self.checks],
        }


def _utilization_check(
    name: str, value: float, limit: float | None, what: str
) -> HealthCheck:
    """Grade ``value`` against ``limit`` (None = unbounded, always OK)."""
    if limit is None or limit <= 0:
        return HealthCheck(name, OK, f"{what}: {value:g} (unbounded)", value, None)
    utilization = value / limit
    if utilization >= CRITICAL_UTILIZATION:
        status = CRITICAL
    elif utilization >= DEGRADED_UTILIZATION:
        status = DEGRADED
    else:
        status = OK
    return HealthCheck(
        name, status,
        f"{what}: {value:g}/{limit:g} ({utilization:.0%})",
        value, limit,
    )


class HealthMonitor:
    """Read-only poller over one front door's serving spine.

    Parameters
    ----------
    door:
        A :class:`~repro.serving.FrontDoor` or
        :class:`~repro.serving.AsyncFrontDoor`; admission, engine, and the
        served service (session or registry) are resolved from it.
    shm_budget_bytes:
        Optional budget the shared-memory store's live bytes are graded
        against (``None``: report bytes, never alarm).
    max_clock_skew_ns:
        Tolerated spread between tenants' clock readings before the skew
        check degrades.  Registry-routed tenants share one clock, so any
        nonzero skew means a session was wired onto a foreign timeline;
        the default tolerance is one clock tick.
    """

    def __init__(
        self,
        door,
        *,
        shm_budget_bytes: int | None = None,
        max_clock_skew_ns: float | None = None,
    ) -> None:
        self.door = door
        self.admission = getattr(door, "admission", None)
        self.engine = getattr(door, "engine", None)
        self.metrics = getattr(door, "metrics", None)
        self.max_concurrent_steps = getattr(door, "max_concurrent_steps", 1)
        self.service = getattr(door, "service", None)
        self.shm_budget_bytes = shm_budget_bytes
        self.max_clock_skew_ns = max_clock_skew_ns

    # ------------------------------------------------------------ resolution

    def _sessions(self) -> list:
        """The served sessions (one for a session door, N for a registry)."""
        service = self.service
        if service is None:
            return []
        if hasattr(service, "keys") and hasattr(service, "session"):
            return [service.session(key) for key in service.keys()]
        return [service]

    def _backend(self):
        service = self.service
        return getattr(service, "backend", None)

    # ---------------------------------------------------------------- checks

    def _check_queue(self) -> HealthCheck | None:
        if self.admission is None:
            return None
        return _utilization_check(
            "queue",
            float(self.admission.in_flight),
            None if self.admission.max_queue is None
            else float(self.admission.max_queue),
            "admitted requests in flight",
        )

    def _check_steps(self) -> HealthCheck | None:
        if self.engine is None:
            return None
        return _utilization_check(
            "steps",
            float(self.engine.in_flight),
            float(self.max_concurrent_steps),
            "concurrent step slots in use",
        )

    def _check_workers(self) -> HealthCheck | None:
        backend = self._backend()
        pool = getattr(backend, "_pool", None)
        if pool is None or getattr(pool, "closed", False):
            return None  # no pool spawned (serial/threads or still lazy)
        alive = int(pool.alive_workers)
        expected = int(pool.n_workers)
        if alive >= expected:
            return HealthCheck(
                "workers", OK, f"worker pool: {alive}/{expected} alive",
                float(alive), float(expected),
            )
        status = CRITICAL if alive == 0 else DEGRADED
        return HealthCheck(
            "workers", status,
            f"worker pool: only {alive}/{expected} workers alive",
            float(alive), float(expected),
        )

    def _check_shm(self) -> HealthCheck | None:
        backend = self._backend()
        store = getattr(backend, "store", None)
        if store is None:
            return None
        used = float(store.total_bytes)
        check = _utilization_check(
            "shm", used,
            None if self.shm_budget_bytes is None else float(self.shm_budget_bytes),
            "/dev/shm bytes published",
        )
        return HealthCheck(
            check.name, check.status,
            f"{check.detail} across {store.num_segments} segments",
            check.value, check.limit,
        )

    def _check_cache(self) -> HealthCheck | None:
        service = self.service
        cache_bytes = getattr(service, "cache_bytes", None)
        if cache_bytes is None:
            return None
        return _utilization_check(
            "cache",
            float(cache_bytes),
            None if getattr(service, "max_cached_bytes", None) is None
            else float(service.max_cached_bytes),
            "prepared-artifact cache bytes",
        )

    def _check_clock_skew(self) -> HealthCheck | None:
        sessions = self._sessions()
        clocks = []
        seen: set[int] = set()
        for session in sessions:
            clock = getattr(session, "clock", None)
            if clock is not None and id(clock) not in seen:
                seen.add(id(clock))
                clocks.append(clock)
        if len(clocks) < 2:
            return HealthCheck(
                "clock_skew", OK, "tenants share one clock", 0.0, None
            )
        readings = [float(clock.elapsed_ns) for clock in clocks]
        skew = max(readings) - min(readings)
        tolerance = self.max_clock_skew_ns
        if tolerance is None:
            tolerance = max(float(c.resolution_ns) for c in clocks)
        status = OK if skew <= tolerance else DEGRADED
        return HealthCheck(
            "clock_skew", status,
            f"clock skew across {len(clocks)} tenant clocks: {skew:g} ns",
            skew, tolerance,
        )

    # ------------------------------------------------------------------ poll

    def check(self) -> HealthReport:
        """One poll of every probe; the worst status wins."""
        checks = [
            c
            for c in (
                self._check_queue(),
                self._check_steps(),
                self._check_workers(),
                self._check_shm(),
                self._check_cache(),
                self._check_clock_skew(),
            )
            if c is not None
        ]
        status = OK
        for check in checks:
            if _SEVERITY[check.status] > _SEVERITY[status]:
                status = check.status
        return HealthReport(status=status, checks=tuple(checks))


class StatsExporter:
    """Periodic metrics+health snapshots to a JSON file (for ``repro top``).

    Writes atomically (temp file + rename) so the dashboard never reads a
    torn frame.  Runs on a daemon thread; purely read-only against the
    serving spine.
    """

    def __init__(
        self,
        door,
        path,
        *,
        interval_s: float = 0.5,
        monitor: HealthMonitor | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.door = door
        self.path = path
        self.interval_s = interval_s
        self.monitor = monitor if monitor is not None else HealthMonitor(door)
        self.frames = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def frame(self) -> dict:
        """One dashboard frame: serving snapshot + health + spine gauges."""
        snapshot = self.door.metrics.snapshot()
        serving = snapshot.to_dict()
        # Aggregate tenant latency by merging the per-tenant sketches
        # (no re-recording) — the merged view the dashboard's ALL row shows.
        merged = self.door.metrics.merged_tenant_latency()
        if merged is not None and merged.count:
            p50, p99 = merged.percentiles((50, 99))
            serving["all_tenants"] = {
                "requests": merged.count,
                "p50_latency_ms": p50 * 1e-6,
                "p99_latency_ms": p99 * 1e-6,
            }
        admission = getattr(self.door, "admission", None)
        engine = getattr(self.door, "engine", None)
        backend = self.monitor._backend()
        store = getattr(backend, "store", None)
        return {
            "frame": self.frames,
            "queue": {
                "in_flight": getattr(admission, "in_flight", 0),
                "max_queue": getattr(admission, "max_queue", None),
                "pending": getattr(engine, "pending", 0),
                "stepping": getattr(engine, "in_flight", 0),
                "step_slots": getattr(self.door, "max_concurrent_steps", 1),
            },
            "shm": {
                "bytes": getattr(store, "total_bytes", 0),
                "segments": getattr(store, "num_segments", 0),
            },
            "serving": serving,
            "health": self.monitor.check().to_dict(),
        }

    def write_frame(self) -> None:
        frame = self.frame()
        self.frames += 1
        tmp = f"{self.path}.tmp"
        with open(tmp, "w") as fh:
            json.dump(frame, fh)
        os.replace(tmp, self.path)

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.write_frame()
            except Exception:  # pragma: no cover - a torn poll must not kill serving
                pass
            self._stop.wait(self.interval_s)
        try:
            self.write_frame()  # final frame so `top` sees the end state
        except Exception:  # pragma: no cover - shutdown race
            pass

    def start(self) -> "StatsExporter":
        if self._thread is not None:
            raise RuntimeError("StatsExporter already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-stats-exporter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "StatsExporter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
