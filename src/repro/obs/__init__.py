"""Observability: clock-aware tracing, bounded sketches, exportable traces.

The serving spine (front doors → engine → stepper → backends) emits
nested spans through a :class:`Tracer` stamped on the *job's own*
:class:`~repro.system.clock.Clock` — correct under both simulated replay
and wall-clock serving.  The default tracer is :data:`NULL_TRACER`, a
shared no-op whose ``span()`` returns one preallocated context manager,
so the untraced path stays byte-identical and allocation-free.

Layout:

- :mod:`~repro.obs.tracer` — spans, events, the tracer and its no-op twin.
- :mod:`~repro.obs.sketch` — bounded streaming quantiles (exact below a
  threshold, seeded reservoir above) backing per-stage metrics.
- :mod:`~repro.obs.trace_io` — schema-versioned JSONL trace files:
  :class:`TraceWriter` (a tracer sink), :class:`TraceReader`, validation,
  and the per-stage time-budget summary behind ``repro trace summarize``.
"""

from .sketch import QuantileSketch
from .tracer import NULL_TRACER, NullTracer, SpanRecord, Tracer
from .trace_io import (
    SCHEMA_VERSION,
    TraceReader,
    TraceSchemaError,
    TraceSummary,
    TraceWriter,
    summarize_records,
    validate_record,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "QuantileSketch",
    "SCHEMA_VERSION",
    "SpanRecord",
    "TraceReader",
    "TraceSchemaError",
    "TraceSummary",
    "TraceWriter",
    "Tracer",
    "summarize_records",
    "validate_record",
]
