"""Observability: tracing, profiling, health, sketches, bench history.

The serving spine (front doors → engine → stepper → backends) emits
nested spans through a :class:`Tracer` stamped on the *job's own*
:class:`~repro.system.clock.Clock` — correct under both simulated replay
and wall-clock serving.  The default tracer is :data:`NULL_TRACER`, a
shared no-op whose ``span()`` returns one preallocated context manager,
so the untraced path stays byte-identical and allocation-free.
:class:`Profiler` applies the same null-object discipline to hot-path
effort counters (rows gathered, blocks touched, bytes moved, bincount
calls, per-kernel ns) via :data:`NULL_PROFILER`.

Layout:

- :mod:`~repro.obs.tracer` — spans, events, the tracer and its no-op twin.
- :mod:`~repro.obs.profiler` — deterministic kernel counters per HistSim
  stage plus a sampling wall profiler (collapsed flamegraph stacks).
- :mod:`~repro.obs.sketch` — bounded streaming quantiles (exact below a
  threshold, seeded reservoir above) backing per-stage metrics; sketches
  merge without re-recording.
- :mod:`~repro.obs.trace_io` — schema-versioned JSONL trace files:
  :class:`TraceWriter` (a tracer sink), :class:`TraceReader`, validation,
  and the per-stage time-budget summary behind ``repro trace summarize``.
- :mod:`~repro.obs.bench_history` — append-only benchmark history store
  plus the median-of-last-K regression detector behind
  ``repro bench-history`` and the CI perf gate.
- :mod:`~repro.obs.health` — :class:`HealthMonitor` over a live front
  door (queue/steps/workers/shm/cache/clock-skew probes) and the
  :class:`StatsExporter` frames ``repro top`` renders.
"""

from .bench_history import (
    BenchHistory,
    BenchRecord,
    HISTORY_SCHEMA_VERSION,
    RegressionFinding,
    RegressionReport,
    check_regression,
    config_hash,
    host_fingerprint,
    metric_kind,
)
from .health import (
    CRITICAL,
    DEGRADED,
    OK,
    HealthCheck,
    HealthMonitor,
    HealthReport,
    StatsExporter,
)
from .profiler import (
    NULL_PROFILER,
    NullProfiler,
    ProfileSnapshot,
    Profiler,
    WallProfiler,
)
from .sketch import QuantileSketch
from .tracer import NULL_TRACER, NullTracer, SpanRecord, Tracer
from .trace_io import (
    SCHEMA_VERSION,
    TraceReader,
    TraceSchemaError,
    TraceSummary,
    TraceWriter,
    summarize_records,
    validate_record,
)

__all__ = [
    "BenchHistory",
    "BenchRecord",
    "CRITICAL",
    "DEGRADED",
    "HISTORY_SCHEMA_VERSION",
    "HealthCheck",
    "HealthMonitor",
    "HealthReport",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullTracer",
    "OK",
    "ProfileSnapshot",
    "Profiler",
    "QuantileSketch",
    "RegressionFinding",
    "RegressionReport",
    "SCHEMA_VERSION",
    "SpanRecord",
    "StatsExporter",
    "TraceReader",
    "TraceSchemaError",
    "TraceSummary",
    "TraceWriter",
    "Tracer",
    "WallProfiler",
    "check_regression",
    "config_hash",
    "host_fingerprint",
    "metric_kind",
    "summarize_records",
    "validate_record",
]
