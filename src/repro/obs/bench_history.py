"""Benchmark history: append-only perf records + a regression detector.

Every ``bench_*.py`` run appends one normalized, schema-versioned record to
a JSONL file under ``benchmarks/results/history/`` — bench id, a hash of
the configuration that shaped the numbers, a host fingerprint, and a flat
``metric -> float`` dict — so the perf trajectory of the repo is recorded
instead of overwritten.

Metric naming is the contract the regression detector keys on:

- ``*_ms`` / ``*_ns`` / ``*_s`` / ``*_seconds`` — time-like, lower is
  better; a regression is ``value > baseline * tolerance``.
- ``*_rate`` / ``*_speedup`` — higher is better; a regression is
  ``value * tolerance < baseline``.
- ``*identical`` — correctness booleans (1.0/0.0), strict: any drop below
  the baseline fails regardless of tolerance.
- ``wall_*`` prefix — real wall-clock measurements, only comparable
  between records with the same host fingerprint; cross-host checks skip
  them.  Simulated-clock metrics (deterministic, host-independent) carry
  no prefix and gate everywhere — including CI against a committed
  baseline.
- anything else — informational, never gated.

The detector compares the newest record against a trailing baseline: the
per-metric median of the last ``k`` prior records with the same bench id
and config hash (and, unless disabled, the same host).  A committed
baseline file can stand in for the trailing window (CI's tiny perf gate).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median

__all__ = [
    "BenchHistory",
    "BenchRecord",
    "HISTORY_SCHEMA_VERSION",
    "RegressionFinding",
    "RegressionReport",
    "check_regression",
    "config_hash",
    "host_fingerprint",
    "metric_kind",
    "normalize_bench_serving",
    "normalize_parallel_scaling",
]

HISTORY_SCHEMA_VERSION = 1

#: Default trailing-baseline window and tolerance band.
DEFAULT_BASELINE_K = 5
DEFAULT_TOLERANCE = 1.25
DEFAULT_MIN_BASELINE = 2


def host_fingerprint() -> dict:
    """Where these numbers were measured (wall metrics only compare within)."""
    return {
        "platform": platform.system().lower(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
    }


def config_hash(config: dict) -> str:
    """Stable short hash of the configuration that shaped the metrics."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def metric_kind(name: str) -> str:
    """``lower``/``higher``/``strict``/``info`` — the gating direction."""
    base = name[5:] if name.startswith("wall_") else name
    if base.endswith("identical"):
        return "strict"
    if base.endswith(("_rate", "_speedup", "speedup")):
        return "higher"
    if base.endswith(("_ms", "_ns", "_s", "_seconds")):
        return "lower"
    return "info"


@dataclass(frozen=True)
class BenchRecord:
    """One normalized benchmark run in the history store."""

    bench: str
    config: dict
    metrics: dict
    host: dict = field(default_factory=host_fingerprint)
    note: str = ""
    schema: int = HISTORY_SCHEMA_VERSION

    @property
    def config_hash(self) -> str:
        return config_hash(self.config)

    @property
    def host_key(self) -> str:
        return config_hash(self.host)

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": self.schema,
                "bench": self.bench,
                "config": self.config,
                "config_hash": self.config_hash,
                "host": self.host,
                "metrics": self.metrics,
                "note": self.note,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "BenchRecord":
        data = json.loads(line)
        schema = data.get("schema")
        if schema != HISTORY_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported history schema {schema!r} "
                f"(this build reads v{HISTORY_SCHEMA_VERSION})"
            )
        for key in ("bench", "config", "metrics"):
            if key not in data:
                raise ValueError(f"history record missing {key!r}")
        if not all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in data["metrics"].values()
        ):
            raise ValueError("history metrics must be numeric")
        return cls(
            bench=data["bench"],
            config=data["config"],
            metrics={k: float(v) for k, v in data["metrics"].items()},
            host=data.get("host", {}),
            note=data.get("note", ""),
        )


class BenchHistory:
    """Append-only JSONL store, one file per bench id under ``root``."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    def path_for(self, bench: str) -> Path:
        return self.root / f"{bench}.jsonl"

    def benches(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.jsonl"))

    def append(self, record: BenchRecord) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(record.bench)
        with path.open("a") as fh:
            fh.write(record.to_json() + "\n")
        return path

    def records(self, bench: str) -> list[BenchRecord]:
        """All records for ``bench``, oldest first; bad lines raise."""
        path = self.path_for(bench)
        if not path.exists():
            return []
        records = []
        for line_no, line in enumerate(path.read_text().splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(BenchRecord.from_json(line))
            except (json.JSONDecodeError, ValueError) as exc:
                raise ValueError(f"{path}:{line_no}: {exc}") from exc
        return records


@dataclass(frozen=True)
class RegressionFinding:
    """One metric outside its tolerance band."""

    metric: str
    value: float
    baseline: float
    ratio: float
    limit: float
    kind: str

    def describe(self) -> str:
        direction = "above" if self.kind == "lower" else "below"
        return (
            f"{self.metric}: {self.value:.4g} vs baseline {self.baseline:.4g} "
            f"({self.ratio:.2f}x, {direction} the {self.limit:.2f}x band)"
        )


@dataclass(frozen=True)
class RegressionReport:
    """Outcome of one bench's newest-vs-baseline comparison."""

    bench: str
    ok: bool
    findings: tuple
    checked: int
    skipped_wall: int
    baseline_records: int
    note: str = ""

    def describe(self) -> str:
        if self.baseline_records == 0:
            return f"{self.bench}: no baseline yet ({self.note})"
        state = "OK" if self.ok else "REGRESSION"
        lines = [
            f"{self.bench}: {state} — {self.checked} metrics vs "
            f"{self.baseline_records}-record baseline"
            + (f", {self.skipped_wall} wall metrics skipped (cross-host)"
               if self.skipped_wall else "")
        ]
        lines.extend(f"  {f.describe()}" for f in self.findings)
        return "\n".join(lines)


def _baseline_for(
    newest: BenchRecord,
    prior: list[BenchRecord],
    *,
    k: int,
    match_host: bool,
) -> tuple[dict, int, bool]:
    """Per-metric median over the last ``k`` comparable prior records.

    Returns ``(medians, count, same_host)`` — ``same_host`` is True only
    when every baseline record shares the newest record's host fingerprint
    (wall metrics gate only then).
    """
    comparable = [r for r in prior if r.config_hash == newest.config_hash]
    if match_host:
        comparable = [r for r in comparable if r.host_key == newest.host_key]
    window = comparable[-k:]
    if not window:
        return {}, 0, False
    medians: dict[str, float] = {}
    for metric in window[-1].metrics:
        values = [r.metrics[metric] for r in window if metric in r.metrics]
        if values:
            medians[metric] = median(values)
    same_host = all(r.host_key == newest.host_key for r in window)
    return medians, len(window), same_host


def check_regression(
    newest: BenchRecord,
    prior: list[BenchRecord],
    *,
    k: int = DEFAULT_BASELINE_K,
    tolerance: float = DEFAULT_TOLERANCE,
    per_metric: dict | None = None,
    min_baseline: int = DEFAULT_MIN_BASELINE,
    match_host: bool = True,
) -> RegressionReport:
    """Compare ``newest`` against the trailing baseline in ``prior``.

    With fewer than ``min_baseline`` comparable records the check passes
    vacuously (a young history cannot gate).  ``per_metric`` overrides the
    tolerance band for specific metric names; correctness metrics
    (``*identical``) are strict regardless.
    """
    if tolerance < 1.0:
        raise ValueError(f"tolerance must be >= 1.0, got {tolerance}")
    medians, count, same_host = _baseline_for(
        newest, prior, k=k, match_host=match_host
    )
    if count < min_baseline:
        return RegressionReport(
            bench=newest.bench,
            ok=True,
            findings=(),
            checked=0,
            skipped_wall=0,
            baseline_records=count,
            note=f"fewer than {min_baseline} comparable baseline records",
        )
    findings = []
    checked = 0
    skipped_wall = 0
    for metric, value in sorted(newest.metrics.items()):
        kind = metric_kind(metric)
        if kind == "info" or metric not in medians:
            continue
        if metric.startswith("wall_") and not same_host:
            skipped_wall += 1
            continue
        baseline = medians[metric]
        limit = 1.0 if kind == "strict" else float(
            (per_metric or {}).get(metric, tolerance)
        )
        checked += 1
        if kind == "lower":
            if baseline > 0 and value > baseline * limit:
                findings.append(RegressionFinding(
                    metric, value, baseline, value / baseline, limit, kind
                ))
        else:  # higher-is-better and strict
            if value * limit < baseline:
                ratio = value / baseline if baseline else 0.0
                findings.append(RegressionFinding(
                    metric, value, baseline, ratio, limit, kind
                ))
    return RegressionReport(
        bench=newest.bench,
        ok=not findings,
        findings=tuple(findings),
        checked=checked,
        skipped_wall=skipped_wall,
        baseline_records=count,
    )


# --------------------------------------------------------------------------
# Normalizers: results JSON written by benchmarks/bench_*.py -> BenchRecord
# --------------------------------------------------------------------------


def normalize_bench_serving(data: dict, note: str = "") -> BenchRecord:
    """Flatten ``bench_serving.json`` into a history record.

    Every gated metric here is *simulated-clock* (deterministic given the
    config), so records compare across hosts — including CI runners against
    a committed baseline.
    """
    config = {
        "bench": "bench_serving",
        "rows": data.get("rows"),
        "requests": data.get("requests"),
        "overload": data.get("overload"),
        "max_queue": data.get("max_queue"),
        "max_step_rows": data.get("max_step_rows"),
        "backend": data.get("backend"),
        "max_concurrent_steps": data.get("max_concurrent_steps"),
    }
    metrics: dict[str, float] = {
        "mean_service_ms": float(data.get("mean_service_ms", 0.0)),
    }
    for record in data.get("policies", []):
        prefix = record["policy"].replace("-", "_")
        metrics[f"{prefix}_p50_latency_ms"] = float(record["p50_latency_ms"])
        metrics[f"{prefix}_p99_latency_ms"] = float(record["p99_latency_ms"])
        metrics[f"{prefix}_deadline_hit_rate"] = float(record["deadline_hit_rate"])
        metrics[f"{prefix}_completed_count"] = float(record["completed"])
    for record in (data.get("multi_tenant") or {}).get("policies", []):
        prefix = "mt_" + record["policy"].replace("-", "_")
        metrics[f"{prefix}_p50_latency_ms"] = float(record["p50_latency_ms"])
        metrics[f"{prefix}_p99_latency_ms"] = float(record["p99_latency_ms"])
        metrics[f"{prefix}_deadline_hit_rate"] = float(record["deadline_hit_rate"])
    return BenchRecord(
        bench="bench_serving", config=config, metrics=metrics, note=note
    )


def normalize_parallel_scaling(data: dict, note: str = "") -> BenchRecord:
    """Flatten ``parallel_scaling.json`` into a history record.

    Timings here are real wall-clock, so they carry the ``wall_`` prefix
    and only gate against same-host baselines; the byte-identity flags are
    strict everywhere.
    """
    config = {
        "bench": "parallel_scaling",
        "tiny": data.get("tiny"),
        "max_concurrent_steps": data.get("max_concurrent_steps"),
        "datasets": [
            {
                "dataset": d.get("dataset"),
                "rows": d.get("rows"),
                "block_size": d.get("block_size"),
                "passes": d.get("passes"),
                "workers": sorted({r["workers"] for r in d.get("runs", [])}),
            }
            for d in data.get("datasets", [])
        ],
    }
    metrics: dict[str, float] = {}
    all_identical = 1.0
    for entry in data.get("datasets", []):
        dataset = entry["dataset"]
        metrics[f"wall_{dataset}_serial_seconds"] = float(entry["serial_seconds"])
        for run in entry.get("runs", []):
            key = f"{dataset}_{run['backend_name']}_{run['workers']}w"
            metrics[f"wall_{key}_seconds"] = float(run["seconds"])
            metrics[f"wall_{key}_speedup"] = float(run["speedup"])
            all_identical = min(
                all_identical, 1.0 if run.get("identical_to_serial") else 0.0
            )
    metrics["counts_identical"] = all_identical
    return BenchRecord(
        bench="parallel_scaling", config=config, metrics=metrics, note=note
    )


def normalize_bench_kernels(data: dict, note: str = "") -> BenchRecord:
    """Flatten ``bench_kernels.json`` into a history record.

    Kernel timings are wall-clock (``wall_`` prefix: same-host gating
    only), but the bytes-moved reduction rates are deterministic functions
    of the benchmark configuration — they gate everywhere, so a kernel
    that silently starts copying more fails CI on any runner.  The
    byte-identity flag is strict everywhere.
    """
    config = {
        "bench": "bench_kernels",
        "tiny": data.get("tiny"),
        "rows": data.get("rows"),
        "block_size": data.get("block_size"),
        "window_blocks": data.get("window_blocks"),
        "passes": data.get("passes"),
        "candidates": data.get("candidates"),
        "groups": data.get("groups"),
    }
    metrics: dict[str, float] = {
        # Deliberately no _seconds suffix: ~100 us of build time is below
        # the noise floor ratio gating can handle, so record it info-only.
        "wall_codes_build": float(data.get("codes_build_seconds", 0.0)),
    }
    all_identical = 1.0
    classic_seconds = None
    kernels = data.get("kernels", {})
    if "classic" in kernels:
        classic_seconds = float(kernels["classic"]["seconds"])
    for kernel, entry in kernels.items():
        metrics[f"wall_{kernel}_seconds"] = float(entry["seconds"])
        if kernel != "classic":
            if classic_seconds is not None and entry["seconds"] > 0:
                metrics[f"wall_{kernel}_speedup"] = (
                    classic_seconds / float(entry["seconds"])
                )
            metrics[f"{kernel}_bytes_moved_reduction_rate"] = float(
                entry.get("bytes_moved_reduction", 0.0)
            )
        all_identical = min(
            all_identical, 1.0 if entry.get("identical_to_classic") else 0.0
        )
    metrics["kernels_identical"] = all_identical
    return BenchRecord(
        bench="bench_kernels", config=config, metrics=metrics, note=note
    )


#: results-file stem -> normalizer, used by ``repro bench-history record``.
NORMALIZERS = {
    "bench_serving": normalize_bench_serving,
    "parallel_scaling": normalize_parallel_scaling,
    "bench_kernels": normalize_bench_kernels,
}
