"""Schema-versioned JSONL traces: write, read, validate, summarize.

One trace file is a header line followed by one JSON object per span or
event, in emission order::

    {"v": 1, "kind": "header", "format": "repro.trace"}
    {"v": 1, "kind": "span", "id": 3, "parent": null, "name": "queue.wait",
     "t0_ns": 0.0, "t1_ns": 81920.0, "clock": "SimulatedClock",
     "attrs": {"name": "q-0", "tenant": "flights"}}

:class:`TraceWriter` is a tracer *sink* (``tracer.subscribe(writer)``),
so recording costs one dict + one line per span and nothing when tracing
is off.  :class:`TraceReader` validates every line on iteration — a trace
that round-trips is schema-correct by construction.

:func:`summarize_records` rebuilds the per-stage time budget the CLI's
``repro trace summarize`` prints: for each lifecycle stage the span
count, total time and p50/p99 durations, plus the tiling check the
acceptance criterion asks for — per request, the queue-wait and
engine-step spans must tile ``[submitted, finished]`` exactly, so their
sum matches the engine's end-to-end latency stamp within one clock tick.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from .tracer import SpanRecord

__all__ = [
    "SCHEMA_VERSION",
    "STAGE_OF_SPAN",
    "TraceReader",
    "TraceSchemaError",
    "TraceSummary",
    "TraceWriter",
    "summarize_records",
    "validate_record",
]

SCHEMA_VERSION = 1

#: Span name → lifecycle stage for per-stage aggregation.  ``queue`` and
#: ``step`` tile the request's engine-clock lifetime; ``stage1/2/3`` and
#: ``scan`` split step time by stepper stage; ``shard``/``pool`` are
#: real-time (monotonic-clock) backend fan-out costs nested inside steps.
STAGE_OF_SPAN = {
    "queue.wait": "queue",
    "engine.step": "step",
    "engine.settle": "settle",
    "stepper.stage1": "stage1",
    "stepper.stage2": "stage2",
    "stepper.stage3": "stage3",
    "stepper.scan": "scan",
    "backend.window": "shard",
    "backend.table": "shard",
    "pool.run": "pool",
}


class TraceSchemaError(ValueError):
    """A trace line that does not conform to the span schema."""


def validate_record(obj) -> None:
    """Raise :class:`TraceSchemaError` unless ``obj`` is a valid trace line."""
    if not isinstance(obj, dict):
        raise TraceSchemaError(f"trace line must be an object, got {type(obj).__name__}")
    version = obj.get("v")
    if version != SCHEMA_VERSION:
        raise TraceSchemaError(f"unsupported schema version {version!r}")
    kind = obj.get("kind")
    if kind == "header":
        return
    if kind not in ("span", "event"):
        raise TraceSchemaError(f"unknown record kind {kind!r}")
    name = obj.get("name")
    if not isinstance(name, str) or not name:
        raise TraceSchemaError(f"span name must be a non-empty string, got {name!r}")
    span_id = obj.get("id")
    if not isinstance(span_id, int) or span_id < 1:
        raise TraceSchemaError(f"span id must be a positive int, got {span_id!r}")
    parent = obj.get("parent")
    if parent is not None and not isinstance(parent, int):
        raise TraceSchemaError(f"span parent must be an int or null, got {parent!r}")
    for key in ("t0_ns", "t1_ns"):
        value = obj.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TraceSchemaError(f"{key} must be numeric, got {value!r}")
    if obj["t1_ns"] < obj["t0_ns"]:
        raise TraceSchemaError(
            f"span {span_id} ends before it starts ({obj['t1_ns']} < {obj['t0_ns']})"
        )
    if not isinstance(obj.get("clock"), str):
        raise TraceSchemaError(f"clock must be a string, got {obj.get('clock')!r}")
    if not isinstance(obj.get("attrs", {}), dict):
        raise TraceSchemaError("attrs must be an object")


class TraceWriter:
    """Append-only JSONL trace sink; subscribe it to a :class:`Tracer`."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._file = self.path.open("w", encoding="utf-8")
        self.written = 0
        self._file.write(
            json.dumps({"v": SCHEMA_VERSION, "kind": "header", "format": "repro.trace"})
            + "\n"
        )

    def observe_span(self, record: SpanRecord) -> None:
        line = json.dumps({"v": SCHEMA_VERSION, **record.to_json()}, default=str)
        with self._lock:
            if self._file.closed:
                return
            self._file.write(line + "\n")
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TraceReader:
    """Iterate a JSONL trace, validating every line against the schema."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def __iter__(self) -> Iterator[SpanRecord]:
        with self.path.open("r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceSchemaError(
                        f"{self.path}:{lineno}: not valid JSON ({exc})"
                    ) from exc
                try:
                    validate_record(obj)
                except TraceSchemaError as exc:
                    raise TraceSchemaError(f"{self.path}:{lineno}: {exc}") from exc
                if obj["kind"] == "header":
                    continue
                yield SpanRecord.from_json(obj)

    def records(self) -> list[SpanRecord]:
        return list(self)


@dataclass(frozen=True)
class _StageBudget:
    """One stage's aggregate over a trace."""

    count: int
    total_ns: float
    p50_ns: float
    p99_ns: float
    max_ns: float
    rows: int


@dataclass(frozen=True)
class TraceSummary:
    """Per-stage time budget reconstructed from a recorded trace."""

    stages: dict = field(default_factory=dict)  # stage -> _StageBudget
    requests: int = 0
    total_latency_ns: float = 0.0
    #: Worst per-request |latency - (queue + step span sums)| — the tiling
    #: invariant; must be within one clock tick on a healthy trace.
    max_drift_ns: float = 0.0
    events: int = 0
    spans: int = 0

    def format_table(self) -> str:
        """Aligned per-stage table for the CLI."""
        header = (
            f"{'stage':<8} {'count':>7} {'total_ms':>10} {'share':>7} "
            f"{'p50_ms':>9} {'p99_ms':>9} {'rows':>10}"
        )
        lines = [header, "-" * len(header)]
        denominator = self.total_latency_ns or 1.0
        order = ["queue", "step", "settle", "stage1", "stage2", "stage3", "scan", "shard", "pool"]
        for stage in sorted(self.stages, key=lambda s: (order.index(s) if s in order else 99, s)):
            budget = self.stages[stage]
            share = budget.total_ns / denominator
            lines.append(
                f"{stage:<8} {budget.count:>7} {budget.total_ns * 1e-6:>10.3f} "
                f"{share:>6.1%} {budget.p50_ns * 1e-6:>9.4f} "
                f"{budget.p99_ns * 1e-6:>9.4f} {budget.rows:>10}"
            )
        lines.append(
            f"requests={self.requests}  spans={self.spans}  events={self.events}  "
            f"total_latency_ms={self.total_latency_ns * 1e-6:.3f}  "
            f"max_tiling_drift_ns={self.max_drift_ns:.3f}"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "spans": self.spans,
            "events": self.events,
            "total_latency_ns": self.total_latency_ns,
            "max_drift_ns": self.max_drift_ns,
            "stages": {
                stage: {
                    "count": b.count,
                    "total_ms": b.total_ns * 1e-6,
                    "p50_ms": b.p50_ns * 1e-6,
                    "p99_ms": b.p99_ns * 1e-6,
                    "max_ms": b.max_ns * 1e-6,
                    "rows": b.rows,
                }
                for stage, b in self.stages.items()
            },
        }


def summarize_records(records: Iterable[SpanRecord]) -> TraceSummary:
    """Fold a trace into its per-stage time budget + the tiling check.

    Lifecycle accounting keys on the ``name`` attribute the engine stamps
    on every queue/step span and on the ``request.finalized`` event, so
    the per-request sums compare like with like even when spans from many
    requests interleave.
    """
    durations: dict[str, list[float]] = {}
    rows: dict[str, int] = {}
    lifecycle: dict[str, float] = {}  # request name -> queue+step span sum
    latencies: dict[str, float] = {}  # request name -> engine latency stamp
    events = spans = 0
    for record in records:
        if record.kind == "event":
            events += 1
            if record.name == "request.finalized":
                request = record.attrs.get("name", "?")
                latencies[request] = latencies.get(request, 0.0) + float(
                    record.attrs.get("latency_ns", 0.0)
                )
            continue
        spans += 1
        stage = STAGE_OF_SPAN.get(record.name)
        if stage is None:
            continue
        durations.setdefault(stage, []).append(record.duration_ns)
        fresh = record.attrs.get("fresh_rows", record.attrs.get("rows", 0))
        try:
            rows[stage] = rows.get(stage, 0) + int(fresh)
        except (TypeError, ValueError):
            pass
        if record.name in ("queue.wait", "engine.step"):
            request = record.attrs.get("name", "?")
            lifecycle[request] = lifecycle.get(request, 0.0) + record.duration_ns
    stages = {}
    for stage, values in durations.items():
        arr = np.asarray(values, dtype=np.float64)
        p50, p99 = np.percentile(arr, (50, 99)).tolist()
        stages[stage] = _StageBudget(
            count=arr.size,
            total_ns=float(arr.sum()),
            p50_ns=p50,
            p99_ns=p99,
            max_ns=float(arr.max()),
            rows=rows.get(stage, 0),
        )
    max_drift = 0.0
    for request, latency in latencies.items():
        drift = abs(latency - lifecycle.get(request, 0.0))
        if drift > max_drift:
            max_drift = drift
    return TraceSummary(
        stages=stages,
        requests=len(latencies),
        total_latency_ns=float(sum(latencies.values())),
        max_drift_ns=max_drift,
        events=events,
        spans=spans,
    )
