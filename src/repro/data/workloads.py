"""The nine evaluation queries of paper Table 3.

| Query      | Z (|V_Z|)        | X (|V_X|)             | k  | target                     |
|------------|------------------|-----------------------|----|----------------------------|
| flights-q1 | origin (347)     | dep_hour (24)         | 10 | Chicago ORD                |
| flights-q2 | origin (347)     | dep_hour (24)         | 10 | Appleton ATW               |
| flights-q3 | origin (347)     | day_of_week (7)       | 5  | [.25, .125 × 6]            |
| flights-q4 | origin (347)     | dest (351)            | 10 | closest to uniform         |
| taxi-q1    | location (7641)  | hour_of_day (24)      | 10 | closest to uniform         |
| taxi-q2    | location (7641)  | month_of_year (12)    | 10 | closest to uniform         |
| police-q1  | road (210)       | contraband_found (2)  | 10 | closest to uniform         |
| police-q2  | road (210)       | officer_race (5)      | 10 | closest to uniform         |
| police-q3  | violation (2110) | driver_gender (2)     | 5  | closest to uniform         |
"""

from __future__ import annotations

import numpy as np

from ..core.target import TargetSpec
from ..query.spec import HistogramQuery
from ..system.fastmatch import DEFAULT_BLOCK_SIZE, PreparedQuery
from .flights import ATW, ORD
from .registry import Dataset, load_dataset

__all__ = ["WORKLOAD_QUERIES", "workload_query", "prepare_workload", "QUERY_NAMES"]


def _uniform_target() -> TargetSpec:
    return TargetSpec(kind="closest_to_uniform")


#: query name -> (dataset name, HistogramQuery)
WORKLOAD_QUERIES: dict[str, tuple[str, HistogramQuery]] = {
    "flights-q1": (
        "flights",
        HistogramQuery(
            "origin", "dep_hour",
            target=TargetSpec(kind="candidate", candidate=ORD),
            k=10, name="flights-q1",
        ),
    ),
    "flights-q2": (
        "flights",
        HistogramQuery(
            "origin", "dep_hour",
            target=TargetSpec(kind="candidate", candidate=ATW),
            k=10, name="flights-q2",
        ),
    ),
    "flights-q3": (
        "flights",
        HistogramQuery(
            "origin", "day_of_week",
            target=TargetSpec(kind="explicit", vector=(0.25,) + (0.125,) * 6),
            k=5, name="flights-q3",
        ),
    ),
    "flights-q4": (
        "flights",
        HistogramQuery("origin", "dest", target=_uniform_target(), k=10, name="flights-q4"),
    ),
    "taxi-q1": (
        "taxi",
        HistogramQuery(
            "location", "hour_of_day", target=_uniform_target(), k=10, name="taxi-q1"
        ),
    ),
    "taxi-q2": (
        "taxi",
        HistogramQuery(
            "location", "month_of_year", target=_uniform_target(), k=10, name="taxi-q2"
        ),
    ),
    "police-q1": (
        "police",
        HistogramQuery(
            "road", "contraband_found", target=_uniform_target(), k=10, name="police-q1"
        ),
    ),
    "police-q2": (
        "police",
        HistogramQuery(
            "road", "officer_race", target=_uniform_target(), k=10, name="police-q2"
        ),
    ),
    "police-q3": (
        "police",
        HistogramQuery(
            "violation", "driver_gender", target=_uniform_target(), k=5, name="police-q3"
        ),
    ),
}

QUERY_NAMES = tuple(WORKLOAD_QUERIES)

_PREPARED_CACHE: dict[tuple, PreparedQuery] = {}


def workload_query(name: str) -> tuple[str, HistogramQuery]:
    """Look up (dataset name, query) for a Table 3 query name."""
    if name not in WORKLOAD_QUERIES:
        raise ValueError(f"unknown query {name!r}; available: {QUERY_NAMES}")
    return WORKLOAD_QUERIES[name]


def prepare_workload(
    name: str,
    rows: int | None = None,
    seed: int = 7,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> PreparedQuery:
    """Build (and cache) the PreparedQuery for one Table 3 query.

    Preparation (dataset build, shuffle layout, bitmap index, exact ground
    truth, target resolution) is deterministic given ``seed`` and shared
    across approaches so comparisons run on identical substrates.
    """
    key = (name, rows, seed, block_size)
    if key not in _PREPARED_CACHE:
        dataset_name, query = workload_query(name)
        dataset: Dataset = load_dataset(dataset_name, rows=rows, seed=seed)
        # The dataset is shuffled by construction (generator.assemble), so
        # preparation reuses it directly; PreparedQuery.prepare would shuffle
        # again, which is wasted work at millions of rows.
        from ..bitmap.builder import build_bitmap_index
        from ..core.target import resolve_target
        from ..query.executor import exact_candidate_counts
        from ..query.predicate import TruePredicate
        from ..storage.blocks import BlockLayout
        from ..storage.shuffle import ShuffledTable

        shuffled = ShuffledTable(
            dataset.table, BlockLayout(dataset.table.num_rows, block_size)
        )
        index = build_bitmap_index(shuffled, query.candidate_attribute)
        exact = exact_candidate_counts(shuffled.table, query)
        target = resolve_target(query.target, exact)
        row_filter = (
            None
            if isinstance(query.predicate, TruePredicate)
            else query.predicate.mask(shuffled.table)
        )
        _PREPARED_CACHE[key] = PreparedQuery(
            query=query,
            shuffled=shuffled,
            index=index,
            exact_counts=exact,
            target=target,
            row_filter=row_filter,
        )
    return _PREPARED_CACHE[key]
