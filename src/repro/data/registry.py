"""Dataset container and cached construction.

Datasets are seeded and deterministic; the registry memoizes them so tests,
examples, and every benchmark in a session share one build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..storage.table import ColumnTable

__all__ = ["Dataset", "load_dataset", "dataset_builders"]


@dataclass(frozen=True)
class Dataset:
    """A named synthetic dataset plus regime metadata.

    ``metadata`` records engineered facts the workloads rely on (e.g. which
    origin index plays the role of Chicago ORD, which candidates form the
    planted near-target cluster for each query).
    """

    name: str
    table: ColumnTable
    metadata: dict = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        return self.table.num_rows


def dataset_builders():
    """name -> builder(rows, seed) -> Dataset (imported lazily to avoid cycles)."""
    from .flights import build_flights
    from .police import build_police
    from .taxi import build_taxi

    return {"flights": build_flights, "taxi": build_taxi, "police": build_police}


@lru_cache(maxsize=8)
def load_dataset(name: str, rows: int | None = None, seed: int = 7) -> Dataset:
    """Build (or fetch the cached) dataset by name.

    ``rows=None`` uses each dataset's default scale.
    """
    builders = dataset_builders()
    if name not in builders:
        raise ValueError(f"unknown dataset {name!r}; available: {sorted(builders)}")
    if rows is None:
        return builders[name](seed=seed)
    return builders[name](rows=rows, seed=seed)
