"""Synthetic TAXI dataset (paper Table 2/3 regimes).

Seven attributes mirroring the paper's extraction from the 2013 NYC Yellow
Cab trips: pickup Location (7641 bins of 0.01°×0.01°), HourOfDay (24),
MonthOfYear (12), DayOfWeek (7), PassengerCount (6), TripMinutes (12 bins),
PaymentType (4).

The defining stress (paper Section 5.1): enormous candidate cardinality with
a huge low-selectivity tail — "more than 3000 candidates have fewer than 10
total datapoints".  Location sizes come in three bands:

- ~500 busy city locations holding most trips (these survive the default
  σ = 0.0008 pruning),
- ~3600 outskirt locations with double-digit row counts (mostly pruned),
- ~3541 locations with 1–10 rows (the paper's ultra-rare tail).

The planted geometry per query (see flights.py for the margin/selectivity
reasoning): a near-uniform cluster among the busiest locations (the
closest-to-uniform targets resolve these cheaply), low-selectivity
*stragglers* at mid distance that dominate the sampling tail — the phase
where AnyActive + lookahead beat sequential scanning — and a crowd of
heavily peaked profiles (business rush-hours, the paper's 3–5 am nightclub
bump, residential) far from uniform.

|V_Z| = 7641 also puts the bitmap index far outside L3: the SyncMatch
cache pathology regime of Section 5.4.
"""

from __future__ import annotations

import numpy as np

from ..storage.schema import CategoricalAttribute, Schema
from ..storage.table import ColumnTable
from .generator import (
    assemble,
    at_distance,
    conditional_column,
    independent_column,
    sizes_from_weights,
    zipf_weights,
)
from .registry import Dataset

__all__ = ["build_taxi", "NUM_LOCATIONS"]

NUM_LOCATIONS = 7641
NUM_HOURS = 24
NUM_MONTHS = 12
NUM_DOW = 7
NUM_PASSENGERS = 6
NUM_TRIP_BINS = 12
NUM_PAYMENT = 4

DEFAULT_ROWS = 6_000_000

_NUM_BUSY = 500
#: Locations just below the σ threshold in size that nevertheless survive
#: stage 1 (the test lacks power right at the boundary).  They are sparse
#: (low per-block presence) yet numerous — the population that makes
#: synchronous per-block probing pathological (Section 5.4).
_NUM_BORDERLINE = 250
_NUM_MID = 3350

_FLAT_HOUR_CLUSTER = tuple(range(0, 10))
_HOUR_CLUSTER_DISTANCES = (0.03, 0.06, 0.09, 0.12, 0.15, 0.17, 0.19, 0.21, 0.23, 0.25)
_HOUR_STRAGGLERS = (497, 498, 499)
_HOUR_STRAGGLER_DISTANCE = 0.8

_FLAT_MONTH_CLUSTER = tuple(range(10, 20))
_MONTH_CLUSTER_DISTANCES = (0.03, 0.06, 0.09, 0.12, 0.15, 0.17, 0.19, 0.21, 0.23, 0.25)
_MONTH_STRAGGLERS = (494, 495, 496)
_MONTH_STRAGGLER_DISTANCE = 0.75

_RUSH_HOURS = (7, 8, 9, 17, 18, 19)
_NIGHT_HOURS = (0, 1, 2, 3, 4)

#: Selectivity floor of the busy band: 1.5x the paper's default sigma.
_BUSY_FLOOR_SHARE = 0.0012


def _location_sizes(rows: int, rng: np.random.Generator) -> np.ndarray:
    """Four-band selectivity profile (busy / borderline / outskirts / rare)."""
    sizes = np.zeros(NUM_LOCATIONS, dtype=np.int64)
    num_rare = NUM_LOCATIONS - _NUM_BUSY - _NUM_BORDERLINE - _NUM_MID

    # Ultra-rare tail first: 1-10 rows each (paper: >3000 such locations);
    # its total is tiny and scale-independent.
    sizes[-num_rare:] = rng.integers(1, 11, size=num_rare)
    rare_rows = int(sizes.sum())

    # Borderline band: 40-60% of the σ threshold — sparse but numerous
    # stage-1 survivors (the under-representation test lacks the power to
    # flag them at the default stage-1 sample size).
    sigma_rows = 0.0008 * rows
    lo, hi = int(0.4 * sigma_rows), int(0.6 * sigma_rows)
    borderline = rng.integers(max(lo, 2), max(hi, 3), size=_NUM_BORDERLINE)
    sizes[_NUM_BUSY : _NUM_BUSY + _NUM_BORDERLINE] = borderline
    borderline_rows = int(borderline.sum())

    mid_rows = max(int(0.06 * rows), 12 * _NUM_MID)
    busy_rows = rows - rare_rows - borderline_rows - mid_rows

    floor = max(2, int(np.ceil(_BUSY_FLOOR_SHARE * rows)))
    if busy_rows < _NUM_BUSY * floor:
        raise ValueError(
            f"TAXI needs more rows: busy band requires {_NUM_BUSY * floor}, "
            f"has {busy_rows}"
        )
    sizes[:_NUM_BUSY] = sizes_from_weights(
        zipf_weights(_NUM_BUSY, alpha=0.85), busy_rows, rng, min_rows=floor
    )
    # Boundary stragglers sit at the very bottom of the busy band; the
    # freed rows go to the largest location so totals stay exact.
    freed = 0
    for loc in _HOUR_STRAGGLERS + _MONTH_STRAGGLERS:
        pinned = floor + int(rng.integers(0, floor // 8 + 1))
        freed += int(sizes[loc]) - pinned
        sizes[loc] = pinned
    sizes[0] += freed

    # Outskirts: tens-to-hundreds of rows, mostly below sigma.
    start = _NUM_BUSY + _NUM_BORDERLINE
    sizes[start : start + _NUM_MID] = sizes_from_weights(
        zipf_weights(_NUM_MID, alpha=0.4), mid_rows, rng, min_rows=11
    )

    sizes[0] += rows - int(sizes.sum())
    return sizes


def build_taxi(rows: int = DEFAULT_ROWS, seed: int = 7) -> Dataset:
    """Build the synthetic TAXI dataset (deterministic given seed)."""
    min_rows = 350_000  # enough for all four selectivity bands at their floors
    if rows < min_rows:
        raise ValueError(f"TAXI needs at least {min_rows} rows, got {rows}")
    rng = np.random.default_rng(seed)
    sizes = _location_sizes(rows, rng)

    uniform_hours = np.full(NUM_HOURS, 1.0 / NUM_HOURS)
    uniform_months = np.full(NUM_MONTHS, 1.0 / NUM_MONTHS)

    hours = np.zeros((NUM_LOCATIONS, NUM_HOURS))
    for loc, distance in zip(_FLAT_HOUR_CLUSTER, _HOUR_CLUSTER_DISTANCES):
        hours[loc] = at_distance(uniform_hours, distance, rng, jitter=50_000.0)
    for loc in _HOUR_STRAGGLERS:
        peak = int(rng.choice(_RUSH_HOURS))
        hours[loc] = at_distance(
            uniform_hours, _HOUR_STRAGGLER_DISTANCE, rng, peak=peak, jitter=20_000.0
        )

    months = np.zeros((NUM_LOCATIONS, NUM_MONTHS))
    for loc, distance in zip(_FLAT_MONTH_CLUSTER, _MONTH_CLUSTER_DISTANCES):
        months[loc] = at_distance(uniform_months, distance, rng, jitter=50_000.0)
    for loc in _MONTH_STRAGGLERS:
        peak = int(rng.integers(0, NUM_MONTHS))
        months[loc] = at_distance(
            uniform_months, _MONTH_STRAGGLER_DISTANCE, rng, peak=peak, jitter=20_000.0
        )

    # The crowd: heavily peaked shapes far from uniform.  kind 0 = business
    # rush hours, kind 1 = nightlife (the 3-5 am bump), kind 2 = residential.
    kinds = rng.integers(0, 3, size=NUM_LOCATIONS)
    crowd_hour_distance = rng.uniform(1.45, 1.7, size=NUM_LOCATIONS)
    crowd_month_distance = rng.uniform(1.2, 1.4, size=NUM_LOCATIONS)
    for loc in range(NUM_LOCATIONS):
        if hours[loc].sum() == 0:
            if kinds[loc] == 0:
                peak = int(rng.choice(_RUSH_HOURS))
            elif kinds[loc] == 1:
                peak = int(rng.choice(_NIGHT_HOURS))
            else:
                peak = int(rng.choice((6, 7, 18, 19, 20)))
            hours[loc] = at_distance(
                uniform_hours, float(crowd_hour_distance[loc]), rng, peak=peak,
                jitter=5_000.0,
            )
        if months[loc].sum() == 0:
            months[loc] = at_distance(
                uniform_months, float(crowd_month_distance[loc]), rng,
                peak=int(rng.integers(0, NUM_MONTHS)), jitter=5_000.0,
            )

    z = np.repeat(np.arange(NUM_LOCATIONS, dtype=np.int64), sizes)
    columns = {
        "location": z,
        "hour_of_day": conditional_column(sizes, hours, rng),
        "month_of_year": conditional_column(sizes, months, rng),
        "day_of_week": independent_column(
            rows, np.array([1.0, 1.0, 1.0, 1.05, 1.2, 1.35, 1.1]), rng
        ),
        "passenger_count": independent_column(
            rows, np.array([0.72, 0.14, 0.05, 0.03, 0.04, 0.02]), rng
        ),
        "trip_minutes": independent_column(
            rows, np.exp(-0.3 * np.arange(NUM_TRIP_BINS)), rng
        ),
        "payment_type": independent_column(rows, np.array([0.55, 0.4, 0.03, 0.02]), rng),
    }
    columns = assemble(columns, rng)

    schema = Schema(
        (
            CategoricalAttribute(
                "location", tuple(f"L{i:04d}" for i in range(NUM_LOCATIONS))
            ),
            CategoricalAttribute("hour_of_day", tuple(f"{h:02d}h" for h in range(NUM_HOURS))),
            CategoricalAttribute(
                "month_of_year",
                ("jan", "feb", "mar", "apr", "may", "jun",
                 "jul", "aug", "sep", "oct", "nov", "dec"),
            ),
            CategoricalAttribute(
                "day_of_week", ("mon", "tue", "wed", "thu", "fri", "sat", "sun")
            ),
            CategoricalAttribute(
                "passenger_count", tuple(f"p{i + 1}" for i in range(NUM_PASSENGERS))
            ),
            CategoricalAttribute(
                "trip_minutes", tuple(f"trip_bin{i}" for i in range(NUM_TRIP_BINS))
            ),
            CategoricalAttribute("payment_type", ("card", "cash", "dispute", "other")),
        )
    )
    table = ColumnTable(schema, columns)
    return Dataset(
        name="taxi",
        table=table,
        metadata={
            "q1_cluster": _FLAT_HOUR_CLUSTER,
            "q1_stragglers": _HOUR_STRAGGLERS,
            "q2_cluster": _FLAT_MONTH_CLUSTER,
            "q2_stragglers": _MONTH_STRAGGLERS,
            "busy_band": _NUM_BUSY,
            "ultra_rare_tail": NUM_LOCATIONS - _NUM_BUSY - _NUM_MID,
        },
    )
