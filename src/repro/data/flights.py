"""Synthetic FLIGHTS dataset (paper Table 2/3 regimes).

Schema mirrors the paper's seven attributes: Origin (347), Dest (351),
DepHour (24 bins of a continuous attribute — Appendix A.1.4), DayOfWeek (7),
DayOfMonth (31), DepDelay and ArrDelay (12 bins each).

Geometry is planted per query with :func:`~repro.data.generator.at_distance`
(exact L1 placement), because HistSim's sampling effort is governed by two
quantities DESIGN.md discusses: each candidate's *margin* to the stage-2
split point (sets its Eq. 1 budget) and its *selectivity* (sets how much
scan distance delivers those samples, and its per-block bitmap presence):

- **q1 (frequent top-k)** — origin 0 is Chicago ORD, the largest hub; nine
  other hubs sit 0.04–0.22 away in departure-hour shape.  Two
  low-selectivity "straggler" airports at distance ~0.9 drive the tail of
  sampling — the phase where AnyActive block-skipping pays.
- **q2 (rare top-k)** — a small airport is Appleton ATW; its regional
  profile is shared only by other small airports (the whole matching
  cluster is low-selectivity).
- **q3 (explicit target)** — five airports are Monday-heavy on DayOfWeek
  (the paper's ``[0.25, 0.125 × 6]`` target), the crowd is weekend-peaked.
- **q4 (wide support, |V_X| = 351)** — hubs fly everywhere (close to the
  global destination mix); feeders concentrate on a few hubs.  At laptop
  scale this query is sample-floor dominated (see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from ..storage.schema import CategoricalAttribute, Schema
from ..storage.table import ColumnTable
from .generator import (
    assemble,
    at_distance,
    conditional_column,
    independent_column,
    jittered,
    mixture,
    sizes_from_weights,
    zipf_weights,
)
from .registry import Dataset

__all__ = ["build_flights", "NUM_ORIGINS", "NUM_DESTS", "ORD", "ATW"]

NUM_ORIGINS = 347
NUM_DESTS = 351
NUM_HOURS = 24
NUM_DOW = 7
NUM_DOM = 31
NUM_DELAY_BINS = 12

#: Origin index playing Chicago O'Hare (the largest hub; q1's target).
ORD = 0
#: Origin index playing Appleton ATW (a small regional airport; q2's target).
ATW = 320

DEFAULT_ROWS = 6_000_000

#: Hub shares: top-10 airports carry ~50% of departures (q1/q4 cluster).
_HUB_SHARES = (0.08, 0.07, 0.06, 0.055, 0.05, 0.045, 0.04, 0.037, 0.034, 0.031)
_HUBS = tuple(range(len(_HUB_SHARES)))

_Q1_CLUSTER = _HUBS
_Q1_DISTANCES = (0.0, 0.04, 0.07, 0.10, 0.13, 0.15, 0.17, 0.19, 0.21, 0.22)
#: Low-selectivity airports at mid distance from the hub profile: the
#: sampling tail of q1.
_Q1_STRAGGLERS = (340, 341)
_Q1_STRAGGLER_DISTANCE = 0.9

_Q2_CLUSTER = (320, 321, 322, 323, 324, 325, 326, 327, 328, 329)
_Q2_DISTANCES = (0.0, 0.05, 0.09, 0.13, 0.16, 0.19, 0.22, 0.25, 0.30, 0.35)
#: ATW and two companions are the deepest (lowest-selectivity) matches.
_Q2_DEEP = (320, 321, 322)
_Q2_DEEP_SHARE = 0.0015
_Q2_SHALLOW_SHARE = 0.0025

_Q3_CLUSTER = (10, 11, 12, 13, 14)
_Q3_DISTANCES = (0.02, 0.05, 0.08, 0.10, 0.12)
_Q3_STRAGGLERS = (342, 343)
_Q3_STRAGGLER_DISTANCE = 0.7

_Q4_DISTANCES = (0.05, 0.08, 0.11, 0.14, 0.17, 0.20, 0.22, 0.25, 0.28, 0.30)

#: Selectivity floor for ordinary airports: 1.5x the paper's default sigma.
_REST_FLOOR_SHARE = 0.0012


def _hour_profile_hub() -> np.ndarray:
    """Bimodal hub profile: morning (7-9) and evening (16-18) banks."""
    base = np.ones(NUM_HOURS) * 0.35
    for hour, weight in ((6, 3), (7, 6), (8, 6), (9, 4), (16, 4), (17, 6), (18, 6), (19, 3)):
        base[hour] += weight
    return base / base.sum()


def _hour_profile_regional() -> np.ndarray:
    """Regional feeder profile, nearly disjoint from the hub banks."""
    base = np.ones(NUM_HOURS) * 0.08
    for hour, weight in ((5, 6), (6, 5), (11, 5), (12, 6), (13, 3), (21, 2)):
        base[hour] += weight
    return base / base.sum()


def _dow_monday_heavy() -> np.ndarray:
    """The q3 explicit target: 25% Monday, 12.5% every other day."""
    return np.array([0.25] + [0.125] * 6)


def _origin_sizes(rows: int, rng: np.random.Generator) -> np.ndarray:
    """Hub-heavy size profile with engineered small bands."""
    shares = np.zeros(NUM_ORIGINS, dtype=np.float64)
    shares[list(_HUBS)] = _HUB_SHARES
    for origin in _Q2_CLUSTER:
        shares[origin] = _Q2_DEEP_SHARE if origin in _Q2_DEEP else _Q2_SHALLOW_SHARE
    for origin in _Q1_STRAGGLERS + _Q3_STRAGGLERS:
        shares[origin] = _REST_FLOOR_SHARE
    rest = np.asarray([i for i in range(NUM_ORIGINS) if shares[i] == 0])
    rest_share = 1.0 - shares.sum()
    rest_weights = zipf_weights(rest.size, alpha=0.8) * (
        rest_share - _REST_FLOOR_SHARE * rest.size
    )
    shares[rest] = _REST_FLOOR_SHARE + rest_weights
    sizes = sizes_from_weights(shares, rows, rng, min_rows=2)
    return sizes


def build_flights(rows: int = DEFAULT_ROWS, seed: int = 7) -> Dataset:
    """Build the synthetic FLIGHTS dataset (deterministic given seed)."""
    if rows < 50 * NUM_ORIGINS:
        raise ValueError(f"FLIGHTS needs at least {50 * NUM_ORIGINS} rows, got {rows}")
    rng = np.random.default_rng(seed)
    sizes = _origin_sizes(rows, rng)

    hub = _hour_profile_hub()
    regional = _hour_profile_regional()
    late_hours = (13, 14, 15, 20, 21, 22, 23)

    # --- DepHour: q1 and q2 geometry ---------------------------------------
    hours = np.zeros((NUM_ORIGINS, NUM_HOURS))
    # Alternate concentrated (1-peak) and spread (5-peak) displacement so L1
    # and L2 rankings genuinely disagree near the boundary (Table 5 regime).
    for rank, (origin, distance) in enumerate(zip(_Q1_CLUSTER, _Q1_DISTANCES)):
        hours[origin] = at_distance(
            hub, distance, rng, jitter=50_000.0, peaks=1 if rank % 2 else 5
        )
    for rank, (origin, distance) in enumerate(zip(_Q2_CLUSTER, _Q2_DISTANCES)):
        hours[origin] = at_distance(
            regional, distance, rng, jitter=50_000.0, peaks=1 if rank % 2 else 5
        )
    for origin in _Q1_STRAGGLERS:
        peak = int(rng.choice(late_hours))
        hours[origin] = at_distance(hub, _Q1_STRAGGLER_DISTANCE, rng, peak=peak, jitter=20_000.0)
    for origin in range(NUM_ORIGINS):
        if hours[origin].sum() > 0:
            continue
        # The crowd: far from both cluster bases (late/midday peaks).
        peak = int(rng.choice(late_hours))
        hours[origin] = at_distance(
            hub, float(rng.uniform(1.2, 1.45)), rng, peak=peak, jitter=5_000.0
        )

    # --- DayOfWeek: q3 geometry ---------------------------------------------
    monday_heavy = _dow_monday_heavy()
    dows = np.zeros((NUM_ORIGINS, NUM_DOW))
    for rank, (origin, distance) in enumerate(zip(_Q3_CLUSTER, _Q3_DISTANCES)):
        dows[origin] = at_distance(
            monday_heavy, distance, rng, jitter=50_000.0, peaks=1 if rank % 2 else 3
        )
    for origin in _Q3_STRAGGLERS:
        peak = int(rng.integers(4, 7))
        dows[origin] = at_distance(
            monday_heavy, _Q3_STRAGGLER_DISTANCE, rng, peak=peak, jitter=20_000.0
        )
    for origin in range(NUM_ORIGINS):
        if dows[origin].sum() > 0:
            continue
        peak = int(rng.integers(5, 7))  # weekend-peaked crowd
        dows[origin] = at_distance(
            monday_heavy, float(rng.uniform(1.1, 1.3)), rng, peak=peak, jitter=5_000.0
        )

    # --- Dest: q4 geometry (wide support) ------------------------------------
    dest_attraction = zipf_weights(NUM_DESTS, alpha=0.7)
    wide = mixture([dest_attraction, np.full(NUM_DESTS, 1.0 / NUM_DESTS)], [0.5, 0.5])
    dests = np.zeros((NUM_ORIGINS, NUM_DESTS))
    for rank, (origin, distance) in enumerate(zip(_HUBS, _Q4_DISTANCES)):
        dests[origin] = at_distance(
            wide, distance, rng, jitter=50_000.0, peaks=1 if rank % 2 else 12
        )
    for origin in range(NUM_ORIGINS):
        if dests[origin].sum() > 0:
            continue
        # Feeder airports: most mass on one hub destination.
        peak = int(rng.integers(0, 24))
        dests[origin] = at_distance(
            wide, float(rng.uniform(1.4, 1.6)), rng, peak=peak, jitter=5_000.0
        )

    # --- Assemble -------------------------------------------------------------
    z = np.repeat(np.arange(NUM_ORIGINS, dtype=np.int64), sizes)
    columns = {
        "origin": z,
        "dest": conditional_column(sizes, dests, rng),
        "dep_hour": conditional_column(sizes, hours, rng),
        "day_of_week": conditional_column(sizes, dows, rng),
        "day_of_month": independent_column(rows, np.ones(NUM_DOM), rng),
        "dep_delay": independent_column(
            rows, np.exp(-0.45 * np.arange(NUM_DELAY_BINS)), rng
        ),
        "arr_delay": independent_column(
            rows, np.exp(-0.4 * np.arange(NUM_DELAY_BINS)), rng
        ),
    }
    columns = assemble(columns, rng)

    schema = Schema(
        (
            CategoricalAttribute("origin", tuple(f"APT{i:03d}" for i in range(NUM_ORIGINS))),
            CategoricalAttribute("dest", tuple(f"DST{i:03d}" for i in range(NUM_DESTS))),
            CategoricalAttribute("dep_hour", tuple(f"{h:02d}h" for h in range(NUM_HOURS))),
            CategoricalAttribute(
                "day_of_week", ("mon", "tue", "wed", "thu", "fri", "sat", "sun")
            ),
            CategoricalAttribute("day_of_month", tuple(f"d{i + 1:02d}" for i in range(NUM_DOM))),
            CategoricalAttribute(
                "dep_delay", tuple(f"delay_bin{i}" for i in range(NUM_DELAY_BINS))
            ),
            CategoricalAttribute(
                "arr_delay", tuple(f"arr_bin{i}" for i in range(NUM_DELAY_BINS))
            ),
        )
    )
    table = ColumnTable(schema, columns)
    return Dataset(
        name="flights",
        table=table,
        metadata={
            "ord": ORD,
            "atw": ATW,
            "q1_cluster": _Q1_CLUSTER,
            "q2_cluster": _Q2_CLUSTER,
            "q3_cluster": _Q3_CLUSTER,
            "q1_stragglers": _Q1_STRAGGLERS,
            "q3_stragglers": _Q3_STRAGGLERS,
            "hubs": _HUBS,
        },
    )
