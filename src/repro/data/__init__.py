"""Synthetic evaluation datasets (Table 2) and the nine Table 3 queries."""

from .flights import ATW, ORD, build_flights
from .generator import (
    assemble,
    at_distance,
    conditional_column,
    independent_column,
    jittered,
    mixture,
    peaked,
    sizes_from_weights,
    zipf_weights,
)
from .police import build_police
from .registry import Dataset, load_dataset
from .taxi import build_taxi
from .workloads import (
    QUERY_NAMES,
    WORKLOAD_QUERIES,
    prepare_workload,
    workload_query,
)

__all__ = [
    "ATW",
    "ORD",
    "build_flights",
    "build_police",
    "build_taxi",
    "Dataset",
    "load_dataset",
    "QUERY_NAMES",
    "WORKLOAD_QUERIES",
    "prepare_workload",
    "workload_query",
    "assemble",
    "at_distance",
    "conditional_column",
    "independent_column",
    "jittered",
    "mixture",
    "peaked",
    "sizes_from_weights",
    "zipf_weights",
]
