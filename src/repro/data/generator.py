"""Synthetic-population machinery shared by the three evaluation datasets.

The paper's datasets cannot be shipped (tens of GiB of raw CSV); DESIGN.md
records the substitution.  HistSim's behaviour depends on exactly two things
per query: (a) the candidate selectivity profile (how many rows each ``Z``
value has — drives stage-1 pruning and block presence) and (b) the geometry
of candidate distributions around the target (drives stage-2 separation).
The helpers here control both directly:

- :func:`zipf_weights` / :func:`sizes_from_weights` — skewed selectivities;
- :func:`jittered` — Dirichlet perturbations of a base shape, with
  ``concentration`` controlling expected distance from the base;
- :func:`conditional_column` — a grouping column whose distribution depends
  on the candidate column;
- :func:`assemble` — final single shared permutation, so generated tables
  are "shuffled by construction" (Challenge 1's preprocessing).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "zipf_weights",
    "sizes_from_weights",
    "jittered",
    "peaked",
    "mixture",
    "at_distance",
    "conditional_column",
    "independent_column",
    "assemble",
]


def zipf_weights(n: int, alpha: float) -> np.ndarray:
    """Normalized Zipf weights ``k^-alpha``, descending."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")
    raw = np.arange(1, n + 1, dtype=np.float64) ** (-alpha)
    return raw / raw.sum()


def sizes_from_weights(
    weights: np.ndarray, total_rows: int, rng: np.random.Generator, min_rows: int = 0
) -> np.ndarray:
    """Integer candidate sizes ~ Multinomial(total, weights), floored at min_rows.

    Flooring keeps engineered candidates above a selectivity threshold; the
    excess is taken from the largest candidate so the total is exact.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if total_rows < 0:
        raise ValueError(f"total_rows must be non-negative, got {total_rows}")
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty vector")
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("weights must be non-negative with positive sum")
    if min_rows * weights.size > total_rows:
        raise ValueError(
            f"cannot give {weights.size} candidates {min_rows} rows each "
            f"out of {total_rows}"
        )
    sizes = rng.multinomial(total_rows, weights / weights.sum()).astype(np.int64)
    if min_rows > 0:
        deficit = np.maximum(min_rows - sizes, 0)
        sizes += deficit
        overshoot = int(deficit.sum())
        if overshoot > 0:
            # Reclaim proportionally from everyone's excess above the floor,
            # preserving the shape of the size distribution.
            excess = np.maximum(sizes - min_rows, 0)
            total_excess = int(excess.sum())
            if total_excess < overshoot:
                raise RuntimeError("could not satisfy min_rows flooring")
            quota = np.minimum(
                np.floor(overshoot * excess / total_excess).astype(np.int64), excess
            )
            sizes -= quota
            overshoot -= int(quota.sum())
            while overshoot > 0:
                largest = int(np.argmax(sizes - min_rows))
                if sizes[largest] <= min_rows:
                    raise RuntimeError("could not satisfy min_rows flooring")
                sizes[largest] -= 1
                overshoot -= 1
    return sizes.astype(np.int64)


def jittered(
    base: np.ndarray, concentration: float, rng: np.random.Generator
) -> np.ndarray:
    """A random distribution near ``base``: Dirichlet(base · concentration).

    Larger ``concentration`` → closer to the base shape (expected L1
    distance shrinks roughly as ``1/sqrt(concentration)``).
    """
    base = np.asarray(base, dtype=np.float64)
    if concentration <= 0:
        raise ValueError(f"concentration must be positive, got {concentration}")
    if np.any(base < 0) or base.sum() <= 0:
        raise ValueError("base must be non-negative with positive mass")
    alpha = base / base.sum() * concentration
    # Dirichlet parameters must be positive; give empty cells a whisper.
    alpha = np.maximum(alpha, 1e-3)
    return rng.dirichlet(alpha)


def peaked(num_groups: int, peak: int, mass: float) -> np.ndarray:
    """A distribution with ``mass`` on one group and the rest uniform."""
    if not 0 <= peak < num_groups:
        raise ValueError(f"peak {peak} out of range [0, {num_groups})")
    if not 0.0 <= mass <= 1.0:
        raise ValueError(f"mass must be in [0, 1], got {mass}")
    out = np.full(num_groups, (1.0 - mass) / num_groups)
    out[peak] += mass
    return out / out.sum()


def mixture(components: list[np.ndarray], weights: list[float]) -> np.ndarray:
    """Convex combination of distributions."""
    if len(components) != len(weights) or not components:
        raise ValueError("components and weights must align and be non-empty")
    weights_arr = np.asarray(weights, dtype=np.float64)
    if np.any(weights_arr < 0) or weights_arr.sum() <= 0:
        raise ValueError("weights must be non-negative with positive sum")
    weights_arr = weights_arr / weights_arr.sum()
    out = np.zeros_like(np.asarray(components[0], dtype=np.float64))
    for component, w in zip(components, weights_arr):
        out += w * np.asarray(component, dtype=np.float64)
    return out / out.sum()


def at_distance(
    base: np.ndarray,
    distance: float,
    rng: np.random.Generator,
    peak: int | np.ndarray | None = None,
    jitter: float = 0.0,
    peaks: int = 1,
) -> np.ndarray:
    """A distribution at (almost) exactly L1 ``distance`` from ``base``.

    Mass is removed proportionally from all groups and piled evenly onto
    ``peaks`` peak groups (random by default), yielding an exact L1
    displacement of ``distance``.  Optional Dirichlet ``jitter`` (a
    concentration; 0 disables) roughens the result for realism, moving the
    realized distance slightly.

    The number of peaks controls the L2-per-L1 ratio: one peak concentrates
    the deviation (large L2 for the same L1 — the Figure 2 regime), many
    peaks spread it (small L2).  Mixing both styles is what makes L1 and L2
    rankings genuinely disagree, as on the paper's real data (Table 5).

    This is how the datasets plant candidates at controlled distances from a
    query's target — the quantity HistSim's stage-2 budgets actually react
    to (margins to the split point).
    """
    base = np.asarray(base, dtype=np.float64)
    if np.any(base < 0) or base.sum() <= 0:
        raise ValueError("base must be non-negative with positive mass")
    base = base / base.sum()
    if not 0.0 <= distance < 2.0:
        raise ValueError(f"L1 distance must be in [0, 2), got {distance}")
    if peak is None:
        if not 1 <= peaks <= base.size:
            raise ValueError(f"peaks must be in [1, {base.size}], got {peaks}")
        peak_idx = rng.choice(base.size, size=peaks, replace=False)
    else:
        peak_idx = np.atleast_1d(np.asarray(peak, dtype=np.int64))
    if peak_idx.size == 0 or np.any(peak_idx < 0) or np.any(peak_idx >= base.size):
        raise ValueError(f"peak indices out of range: {peak_idx}")
    k = peak_idx.size
    if np.any(base[peak_idx] > 1.0 / k):
        # The even-split formula needs every peak to gain mass; fall back to
        # the least-loaded groups if the random choice was unlucky.
        peak_idx = np.argsort(base, kind="stable")[:k]
    headroom = 1.0 - float(base[peak_idx].sum())
    if headroom <= 0:
        raise ValueError("base already concentrates all mass on the peaks")
    take = distance / (2.0 * headroom)
    if take > 1.0:
        raise ValueError(
            f"distance {distance} unreachable via {k} peak(s) "
            f"(headroom {headroom:.3f})"
        )
    out = base * (1.0 - take)
    out[peak_idx] += take / k
    if jitter > 0:
        out = jittered(out, jitter, rng)
    return out


def conditional_column(
    sizes: np.ndarray, distributions: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Grouping column drawn per candidate: candidate ``i`` contributes
    ``sizes[i]`` values from ``distributions[i]``.

    Returned in candidate-major order — :func:`assemble` applies the final
    shared permutation.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    distributions = np.asarray(distributions, dtype=np.float64)
    if distributions.ndim != 2 or distributions.shape[0] != sizes.size:
        raise ValueError("distributions must have one row per candidate")
    num_groups = distributions.shape[1]
    parts = []
    for size, dist in zip(sizes, distributions):
        if size == 0:
            continue
        total = dist.sum()
        if total <= 0:
            raise ValueError("each candidate needs a positive-mass distribution")
        parts.append(rng.choice(num_groups, size=int(size), p=dist / total))
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


def independent_column(
    total_rows: int, distribution: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """A column independent of the candidate attribute."""
    distribution = np.asarray(distribution, dtype=np.float64)
    total = distribution.sum()
    if total <= 0:
        raise ValueError("distribution must have positive mass")
    return rng.choice(distribution.size, size=total_rows, p=distribution / total)


def assemble(
    columns: dict[str, np.ndarray], rng: np.random.Generator
) -> dict[str, np.ndarray]:
    """Apply one shared random permutation to all columns.

    Rows generated candidate-major become exchangeable — the table is
    pre-shuffled exactly as FastMatch's preprocessing requires.
    """
    lengths = {name: col.size for name, col in columns.items()}
    if len(set(lengths.values())) > 1:
        raise ValueError(f"ragged columns: {lengths}")
    n = next(iter(lengths.values())) if lengths else 0
    order = rng.permutation(n)
    return {name: col[order] for name, col in columns.items()}
