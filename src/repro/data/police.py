"""Synthetic POLICE dataset (paper Table 2/3 regimes).

Ten attributes mirroring the paper's extraction from the Washington state
road-stop records: County (39), RoadID (210), DriverGender (2),
OfficerGender (2), DriverRace (5), OfficerRace (5), Violation (2110),
StopOutcome (6), SearchConducted (2), ContrabandFound (2).

Query regimes (Table 3; see flights.py for the margin/selectivity design
reasoning):

- **q1** — Z=RoadID, X=ContrabandFound (binary): most roads find contraband
  rarely (p ≈ 0.03–0.10, far from uniform); a planted cluster of busy roads
  sits near p = 0.5 plus two low-selectivity stragglers at p = 0.25 that
  drive the sampling tail.  Frequent top-k.
- **q2** — Z=RoadID, X=OfficerRace (5 groups): the crowd is dominated by a
  majority race; a planted cluster patrols with a near-uniform mix.  No
  stragglers: the paper's easiest query (largest speedups).
- **q3** — Z=Violation (2110 values, Zipf tail below σ), X=DriverGender:
  the crowd skews heavily male; a planted cluster of frequent violations
  sits near 0.5, plus two low-selectivity stragglers.  High-cardinality Z —
  the SyncMatch cache-pathology regime, and stage-1 pruning matters.
"""

from __future__ import annotations

import numpy as np

from ..storage.schema import CategoricalAttribute, Schema
from ..storage.table import ColumnTable
from .generator import (
    assemble,
    at_distance,
    conditional_column,
    independent_column,
    sizes_from_weights,
    zipf_weights,
)
from .registry import Dataset

__all__ = ["build_police", "NUM_ROADS", "NUM_VIOLATIONS"]

NUM_COUNTIES = 39
NUM_ROADS = 210
NUM_VIOLATIONS = 2110
NUM_RACES = 5
NUM_OUTCOMES = 6

DEFAULT_ROWS = 6_000_000

_Q1_CLUSTER = (0, 2, 4, 6, 8, 10, 12, 14, 16, 18)
_Q1_GAPS = (0.002, 0.006, 0.010, 0.014, 0.018, 0.024, 0.030, 0.036, 0.042, 0.048)
_Q1_STRAGGLERS = (150, 151)
_Q1_STRAGGLER_P = 0.25  # distance 0.5 from uniform

_Q2_CLUSTER = (1, 3, 5, 7, 9, 11, 13, 15, 17, 19)
_Q2_DISTANCES = (0.02, 0.04, 0.06, 0.08, 0.10, 0.11, 0.12, 0.13, 0.14, 0.15)

_Q3_CLUSTER = (0, 1, 2, 3, 4)
_Q3_GAPS = (0.005, 0.012, 0.020, 0.032, 0.048)
_Q3_STRAGGLERS = (30, 31)
_Q3_STRAGGLER_P = 0.25

#: Selectivity floor for pinned stragglers: 1.5x the paper's default sigma.
_STRAGGLER_SHARE = 0.0012


def _binary(p: float) -> np.ndarray:
    """A two-group histogram distribution (p, 1-p)."""
    return np.array([p, 1.0 - p])


def _road_sizes(rows: int, rng: np.random.Generator) -> np.ndarray:
    floor = max(2, int(np.ceil(0.002 * rows)))
    sizes = sizes_from_weights(
        zipf_weights(NUM_ROADS, alpha=0.8), rows, rng, min_rows=floor
    )
    pinned = max(2, int(np.ceil(_STRAGGLER_SHARE * rows)))
    for road in _Q1_STRAGGLERS:
        sizes[road] = pinned
    sizes[0] += rows - int(sizes.sum())
    return sizes


def _violation_sizes(rows: int, rng: np.random.Generator) -> np.ndarray:
    sizes = sizes_from_weights(
        zipf_weights(NUM_VIOLATIONS, alpha=1.05), rows, rng, min_rows=1
    )
    pinned = max(2, int(np.ceil(_STRAGGLER_SHARE * rows)))
    for violation in _Q3_STRAGGLERS:
        sizes[violation] = pinned
    sizes[0] += rows - int(sizes.sum())
    return sizes


def build_police(rows: int = DEFAULT_ROWS, seed: int = 7) -> Dataset:
    """Build the synthetic POLICE dataset (deterministic given seed)."""
    if rows < 20 * NUM_VIOLATIONS:
        raise ValueError(f"POLICE needs at least {20 * NUM_VIOLATIONS} rows, got {rows}")
    rng = np.random.default_rng(seed)

    road_sizes = _road_sizes(rows, rng)
    violation_sizes = _violation_sizes(rows, rng)

    # --- q1 geometry: ContrabandFound per road. -----------------------------
    contraband = np.zeros((NUM_ROADS, 2))
    for road, gap in zip(_Q1_CLUSTER, _Q1_GAPS):
        contraband[road] = _binary(0.5 - gap)
    for road in _Q1_STRAGGLERS:
        contraband[road] = _binary(_Q1_STRAGGLER_P)
    for road in range(NUM_ROADS):
        if contraband[road].sum() > 0:
            continue
        contraband[road] = _binary(float(rng.uniform(0.03, 0.10)))

    # --- q2 geometry: OfficerRace per road. -----------------------------------
    uniform_race = np.full(NUM_RACES, 1.0 / NUM_RACES)
    officer_race = np.zeros((NUM_ROADS, NUM_RACES))
    for road, distance in zip(_Q2_CLUSTER, _Q2_DISTANCES):
        officer_race[road] = at_distance(uniform_race, distance, rng, jitter=50_000.0)
    for road in range(NUM_ROADS):
        if officer_race[road].sum() > 0:
            continue
        officer_race[road] = at_distance(
            uniform_race, float(rng.uniform(0.95, 1.15)), rng, peak=0, jitter=5_000.0
        )

    # --- q3 geometry: DriverGender per violation. -------------------------------
    gender = np.zeros((NUM_VIOLATIONS, 2))
    for violation, gap in zip(_Q3_CLUSTER, _Q3_GAPS):
        gender[violation] = _binary(0.5 - gap)
    for violation in _Q3_STRAGGLERS:
        gender[violation] = _binary(_Q3_STRAGGLER_P)
    crowd_p = rng.uniform(0.93, 0.98, size=NUM_VIOLATIONS)
    for violation in range(NUM_VIOLATIONS):
        if gender[violation].sum() > 0:
            continue
        gender[violation] = _binary(1.0 - float(crowd_p[violation]))

    # --- Columns ------------------------------------------------------------------
    # Road-conditioned columns are generated road-major; violation and its
    # gender column are generated violation-major and aligned with each
    # other.  Zipping the two orders row-by-row is an arbitrary-but-fixed
    # join (the paper's queries never correlate road with violation), and
    # the final shared permutation in :func:`assemble` preserves every
    # within-row pairing.
    road = np.repeat(np.arange(NUM_ROADS, dtype=np.int64), road_sizes)
    violation = np.repeat(np.arange(NUM_VIOLATIONS, dtype=np.int64), violation_sizes)
    driver_gender = conditional_column(violation_sizes, gender, rng)

    columns = {
        "road": road,
        "county": independent_column(rows, zipf_weights(NUM_COUNTIES, 0.7), rng),
        "contraband_found": conditional_column(road_sizes, contraband, rng),
        "officer_race": conditional_column(road_sizes, officer_race, rng),
        "violation": violation,
        "driver_gender": driver_gender,
        "officer_gender": independent_column(rows, np.array([0.82, 0.18]), rng),
        "driver_race": independent_column(
            rows, np.array([0.6, 0.15, 0.12, 0.08, 0.05]), rng
        ),
        "stop_outcome": independent_column(
            rows, np.array([0.5, 0.25, 0.12, 0.07, 0.04, 0.02]), rng
        ),
        "search_conducted": independent_column(rows, np.array([0.06, 0.94]), rng),
    }
    columns = assemble(columns, rng)

    schema = Schema(
        (
            CategoricalAttribute("road", tuple(f"R{i:03d}" for i in range(NUM_ROADS))),
            CategoricalAttribute(
                "county", tuple(f"county{i:02d}" for i in range(NUM_COUNTIES))
            ),
            CategoricalAttribute("contraband_found", ("found", "not_found")),
            CategoricalAttribute(
                "officer_race", tuple(f"race{i}" for i in range(NUM_RACES))
            ),
            CategoricalAttribute(
                "violation", tuple(f"V{i:04d}" for i in range(NUM_VIOLATIONS))
            ),
            CategoricalAttribute("driver_gender", ("female", "male")),
            CategoricalAttribute("officer_gender", ("male", "female")),
            CategoricalAttribute(
                "driver_race", tuple(f"drace{i}" for i in range(NUM_RACES))
            ),
            CategoricalAttribute(
                "stop_outcome",
                ("citation", "warning", "verbal", "arrest", "felony", "other"),
            ),
            CategoricalAttribute("search_conducted", ("yes", "no")),
        )
    )
    table = ColumnTable(schema, columns)
    return Dataset(
        name="police",
        table=table,
        metadata={
            "q1_cluster": _Q1_CLUSTER,
            "q1_stragglers": _Q1_STRAGGLERS,
            "q2_cluster": _Q2_CLUSTER,
            "q3_cluster": _Q3_CLUSTER,
            "q3_stragglers": _Q3_STRAGGLERS,
        },
    )
