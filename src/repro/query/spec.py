"""Histogram-generating query templates (paper Definition 1).

    SELECT X, COUNT(*) FROM T WHERE Z = z_i [AND predicate] GROUP BY X

``(T, X, Z)`` is the template; letting ``z_i`` range over ``V_Z`` yields the
candidate visualizations.  ``HistogramQuery`` captures the template plus the
optional extra predicate; the executor and the FastMatch runner both consume
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.target import TargetSpec
from ..storage.table import ColumnTable
from .predicate import Predicate, TruePredicate

__all__ = ["HistogramQuery"]


@dataclass(frozen=True)
class HistogramQuery:
    """A histogram-matching query: template + target + retrieval size.

    Attributes
    ----------
    candidate_attribute:
        ``Z`` — each of its values defines one candidate visualization.
    grouping_attribute:
        ``X`` — the histogram's x-axis.
    target:
        How to resolve the visual target ``q``.
    k:
        Number of matches to retrieve.
    predicate:
        Optional extra WHERE condition applied to all candidates.
    name:
        Identifier used by workloads and benchmarks (e.g. ``"flights-q1"``).
    """

    candidate_attribute: str
    grouping_attribute: str
    target: TargetSpec = field(default_factory=TargetSpec)
    k: int = 10
    predicate: Predicate = field(default_factory=TruePredicate)
    name: str = ""

    def __post_init__(self) -> None:
        if self.candidate_attribute == self.grouping_attribute:
            raise ValueError("candidate and grouping attributes must differ")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")

    def validate_against(self, table: ColumnTable) -> None:
        """Check the template's attributes exist in a table's schema."""
        for attr in (self.candidate_attribute, self.grouping_attribute):
            if attr not in table.schema:
                raise ValueError(f"attribute {attr!r} not in table schema")

    def cardinalities(self, table: ColumnTable) -> tuple[int, int]:
        """``(|V_Z|, |V_X|)`` for this template on a table."""
        return (
            table.cardinality(self.candidate_attribute),
            table.cardinality(self.grouping_attribute),
        )
