"""Binning helpers for continuous attributes (paper Appendix A.1.4 / A.1.6).

Continuous grouping or candidate attributes are handled by binning values
into buckets before encoding — FLIGHTS' DepartureHour is exactly this (a
continuous attribute placed into 24 bins).
"""

from __future__ import annotations

import numpy as np

from ..storage.schema import BinnedAttribute

__all__ = ["equal_width_bins", "quantile_bins", "coarsen"]


def equal_width_bins(name: str, low: float, high: float, bins: int) -> BinnedAttribute:
    """A binned attribute with ``bins`` equal-width buckets over [low, high]."""
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    if not low < high:
        raise ValueError(f"need low < high, got [{low}, {high}]")
    edges = tuple(np.linspace(low, high, bins + 1))
    return BinnedAttribute(name, edges)


def quantile_bins(name: str, values: np.ndarray, bins: int) -> BinnedAttribute:
    """Buckets with (approximately) equal row counts, from observed values."""
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot derive quantile bins from no data")
    edges = np.quantile(values, np.linspace(0.0, 1.0, bins + 1))
    edges = np.unique(edges)
    if edges.size < 2:
        raise ValueError("data too degenerate for quantile binning")
    return BinnedAttribute(name, tuple(edges))


def coarsen(attribute: BinnedAttribute, factor: int) -> BinnedAttribute:
    """Merge every ``factor`` adjacent bins into one (Appendix A.1.6: bitmaps
    at the finest granularity induce any coarser granularity)."""
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    edges = attribute.edges
    kept = list(edges[::factor])
    if kept[-1] != edges[-1]:
        kept.append(edges[-1])
    if len(kept) < 2:
        raise ValueError("coarsening factor leaves no bins")
    return BinnedAttribute(attribute.name, tuple(kept))
