"""Boolean predicate trees over encoded attributes (paper Appendix A.1.2).

Histogram-generating queries may carry additional WHERE predicates beyond
``Z = z_i``.  Predicates here are composable trees of equality, membership
and range tests joined by AND/OR/NOT, evaluated vectorized against a
:class:`~repro.storage.table.ColumnTable`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..storage.table import ColumnTable

__all__ = ["Predicate", "Equals", "IsIn", "InRange", "And", "Or", "Not", "TruePredicate"]


class Predicate:
    """Base class: a boolean row filter."""

    def mask(self, table: ColumnTable) -> np.ndarray:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches every row (the default WHERE clause)."""

    def mask(self, table: ColumnTable) -> np.ndarray:
        return np.ones(table.num_rows, dtype=bool)


@dataclass(frozen=True)
class Equals(Predicate):
    """``attribute = code``."""

    attribute: str
    code: int

    def mask(self, table: ColumnTable) -> np.ndarray:
        if not 0 <= self.code < table.cardinality(self.attribute):
            raise ValueError(
                f"code {self.code} out of range for attribute {self.attribute!r}"
            )
        return table.column(self.attribute) == self.code


@dataclass(frozen=True)
class IsIn(Predicate):
    """``attribute IN (codes…)``."""

    attribute: str
    codes: tuple[int, ...]

    def mask(self, table: ColumnTable) -> np.ndarray:
        cardinality = table.cardinality(self.attribute)
        if any(not 0 <= c < cardinality for c in self.codes):
            raise ValueError(f"codes out of range for attribute {self.attribute!r}")
        lookup = np.zeros(cardinality, dtype=bool)
        lookup[list(self.codes)] = True
        return lookup[table.column(self.attribute)]


@dataclass(frozen=True)
class InRange(Predicate):
    """``low <= attribute_code <= high`` (over encoded/binned codes)."""

    attribute: str
    low: int
    high: int

    def mask(self, table: ColumnTable) -> np.ndarray:
        if self.low > self.high:
            raise ValueError(f"empty range [{self.low}, {self.high}]")
        col = table.column(self.attribute)
        return (col >= self.low) & (col <= self.high)


@dataclass(frozen=True)
class And(Predicate):
    children: tuple[Predicate, ...]

    def mask(self, table: ColumnTable) -> np.ndarray:
        if not self.children:
            raise ValueError("And requires at least one child")
        out = self.children[0].mask(table)
        for child in self.children[1:]:
            out = out & child.mask(table)
        return out


@dataclass(frozen=True)
class Or(Predicate):
    children: tuple[Predicate, ...]

    def mask(self, table: ColumnTable) -> np.ndarray:
        if not self.children:
            raise ValueError("Or requires at least one child")
        out = self.children[0].mask(table)
        for child in self.children[1:]:
            out = out | child.mask(table)
        return out


@dataclass(frozen=True)
class Not(Predicate):
    child: Predicate

    def mask(self, table: ColumnTable) -> np.ndarray:
        return ~self.child.mask(table)
