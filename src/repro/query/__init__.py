"""Histogram-generating queries (Definition 1): templates, predicates,
binning, and the exact executor used for ground truth."""

from .binning import coarsen, equal_width_bins, quantile_bins
from .executor import exact_candidate_counts, exact_histogram
from .predicate import And, Equals, InRange, IsIn, Not, Or, Predicate, TruePredicate
from .spec import HistogramQuery

__all__ = [
    "HistogramQuery",
    "exact_candidate_counts",
    "exact_histogram",
    "And",
    "Equals",
    "InRange",
    "IsIn",
    "Not",
    "Or",
    "Predicate",
    "TruePredicate",
    "coarsen",
    "equal_width_bins",
    "quantile_bins",
]
