"""Exact group-by executor: ground truth for audits and the Scan baseline.

Evaluates every candidate histogram of a Definition 1 template in one pass
(vectorized two-dimensional ``bincount``), exactly what the paper's Scan
baseline computes.  The counting itself routes through an
:class:`~repro.parallel.ExecutionBackend` — the pass is embarrassingly
shardable, so a sharded backend partitions the rows across its worker pool
and merges by exact integer addition, byte-identical to the serial pass.
"""

from __future__ import annotations

import numpy as np

from ..parallel.backend import ExecutionBackend, SerialBackend
from ..storage.table import ColumnTable
from .predicate import TruePredicate
from .spec import HistogramQuery

__all__ = ["exact_candidate_counts", "exact_histogram"]


def exact_candidate_counts(
    table: ColumnTable,
    query: HistogramQuery,
    backend: ExecutionBackend | None = None,
) -> np.ndarray:
    """The full ``(|V_Z|, |V_X|)`` matrix of exact grouped counts.

    ``backend`` selects how the counting pass executes (default: serial);
    results are byte-identical across backends.
    """
    query.validate_against(table)
    num_z, num_x = query.cardinalities(table)
    if isinstance(query.predicate, TruePredicate):
        row_filter = None
    else:
        row_filter = query.predicate.mask(table)
    resolved = backend if backend is not None else SerialBackend()
    return resolved.count_table(
        table,
        query.candidate_attribute,
        query.grouping_attribute,
        num_z,
        num_x,
        row_filter=row_filter,
    )


def exact_histogram(table: ColumnTable, query: HistogramQuery, candidate: int) -> np.ndarray:
    """One candidate's exact histogram (the query of Definition 1 verbatim)."""
    num_z, _ = query.cardinalities(table)
    if not 0 <= candidate < num_z:
        raise ValueError(f"candidate {candidate} out of range [0, {num_z})")
    return exact_candidate_counts(table, query)[candidate]
