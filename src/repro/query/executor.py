"""Exact group-by executor: ground truth for audits and the Scan baseline.

Evaluates every candidate histogram of a Definition 1 template in one pass
(vectorized two-dimensional ``bincount``), exactly what the paper's Scan
baseline computes.
"""

from __future__ import annotations

import numpy as np

from ..storage.table import ColumnTable
from .spec import HistogramQuery

__all__ = ["exact_candidate_counts", "exact_histogram"]


def exact_candidate_counts(table: ColumnTable, query: HistogramQuery) -> np.ndarray:
    """The full ``(|V_Z|, |V_X|)`` matrix of exact grouped counts."""
    query.validate_against(table)
    num_z, num_x = query.cardinalities(table)
    z = table.column(query.candidate_attribute)
    x = table.column(query.grouping_attribute)
    mask = query.predicate.mask(table)
    z = z[mask].astype(np.int64, copy=False)
    x = x[mask].astype(np.int64, copy=False)
    flat = np.bincount(z * num_x + x, minlength=num_z * num_x)
    return flat.reshape(num_z, num_x)


def exact_histogram(table: ColumnTable, query: HistogramQuery, candidate: int) -> np.ndarray:
    """One candidate's exact histogram (the query of Definition 1 verbatim)."""
    num_z, _ = query.cardinalities(table)
    if not 0 <= candidate < num_z:
        raise ValueError(f"candidate {candidate} out of range [0, {num_z})")
    return exact_candidate_counts(table, query)[candidate]
