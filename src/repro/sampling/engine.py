"""Block-based sampling engine (paper Section 4: the Sampling Engine).

Implements the :class:`~repro.core.sampler.TupleSampler` protocol on top of
the storage and bitmap substrates, so HistSim runs unmodified against real
block mechanics:

- the scan proceeds sequentially from a random start block, wrapping once
  per pass (Challenge 1: randomness via shuffled layout);
- per window, a block-selection policy decides which blocks to read and what
  the decision costs (Challenge 3: AnyActive);
- already-read blocks are never re-read — their tuples were consumed, and
  fresh samples must be fresh;
- costs are charged to a simulated clock, serially (SyncMatch) or
  overlapped (FastMatch lookahead — Challenge 4);
- the delivery of each window's blocks (gather + filter + count) routes
  through an :class:`~repro.parallel.ExecutionBackend`, so the serial and
  sharded execution paths share one engine and differ only in *who* counts.
"""

from __future__ import annotations

import numpy as np

from ..bitmap.bitmap_index import BlockBitmapIndex
from ..obs.profiler import NULL_PROFILER
from ..parallel.backend import CountSource, ExecutionBackend, SerialBackend
from ..storage.cost_model import CostModel
from ..storage.io_manager import IOManager
from ..storage.shuffle import ShuffledTable
from .policies import PolicyDecision, ScanAllPolicy

__all__ = ["BlockSamplingEngine", "EngineCounters"]


class EngineCounters:
    """Observable effort counters for reports and benchmarks."""

    __slots__ = ("blocks_read", "blocks_skipped", "rows_delivered", "probes", "windows")

    def __init__(self) -> None:
        self.blocks_read = 0
        self.blocks_skipped = 0
        self.rows_delivered = 0
        self.probes = 0
        self.windows = 0


class BlockSamplingEngine:
    """A :class:`TupleSampler` over a shuffled, block-laid-out table.

    Parameters
    ----------
    shuffled:
        The permuted table with its block layout.
    candidate_attribute, grouping_attribute:
        ``Z`` and ``X`` of the histogram-generating template.
    index:
        Bit-per-block bitmap index over ``Z`` (what AnyActive probes).
    cost_model, clock:
        The simulated-hardware constants and the clock charges go to.
    policy:
        Block-selection policy instance.
    rng:
        Chooses the random scan start (paper Section 5.2).
    window_blocks:
        Blocks examined per decision window; the active set refreshes at
        this granularity.  FastMatch sets it to ``lookahead``; SyncMatch
        uses a small window to approximate per-block freshness.
    row_filter:
        Optional boolean row mask (extra WHERE predicate).  AnyActive still
        keys on ``Z`` presence — a conservative superset of matching blocks
        — while delivered tuples are filtered exactly.
    backend:
        The :class:`~repro.parallel.ExecutionBackend` that delivers each
        window's blocks.  Default: a private serial backend (exact legacy
        behaviour).
    profiler:
        Optional :class:`~repro.obs.Profiler` the engine threads to the
        backend via its :class:`CountSource` — per-job attribution of
        counting-kernel effort even on a shared backend.  ``None`` (the
        default) wires the shared no-op profiler: one attribute load and
        branch per window, no allocation.
    kernel:
        Counting-kernel spec forwarded to the backend via the
        :class:`CountSource` (see :mod:`~repro.parallel.kernels`).
        ``"auto"`` (the default) picks the cheapest byte-identical kernel.
    codes:
        Optional prepared pair-code column
        (:func:`~repro.parallel.kernels.build_pair_codes`) enabling the
        fused kernel; must have one entry per row.
    """

    def __init__(
        self,
        shuffled: ShuffledTable,
        candidate_attribute: str,
        grouping_attribute: str,
        index: BlockBitmapIndex,
        cost_model: CostModel,
        clock,
        policy=None,
        rng: np.random.Generator | None = None,
        window_blocks: int = 1024,
        row_filter: np.ndarray | None = None,
        start_block: int | None = None,
        backend: ExecutionBackend | None = None,
        profiler=None,
        kernel: str = "auto",
        codes: np.ndarray | None = None,
    ) -> None:
        if window_blocks < 1:
            raise ValueError(f"window_blocks must be >= 1, got {window_blocks}")
        self.shuffled = shuffled
        self.layout = shuffled.layout
        self.io = IOManager(shuffled, cost_model)
        self.backend = backend or SerialBackend()
        self.index = index
        self.cost_model = cost_model
        self.clock = clock
        self.policy = policy or ScanAllPolicy()
        self.window_blocks = window_blocks
        self.counters = EngineCounters()
        self.profiler = profiler if profiler is not None else NULL_PROFILER

        self._z_name = candidate_attribute
        self._x_name = grouping_attribute
        self._num_candidates = shuffled.table.cardinality(candidate_attribute)
        self._num_groups = shuffled.table.cardinality(grouping_attribute)

        if row_filter is not None:
            row_filter = np.asarray(row_filter, dtype=bool)
            if row_filter.shape != (shuffled.num_rows,):
                raise ValueError("row_filter must have one entry per row")
        self._row_filter = row_filter
        if codes is not None and codes.shape != (shuffled.num_rows,):
            raise ValueError("codes must have one entry per row")
        self._source = CountSource(
            shuffled=shuffled,
            z_name=candidate_attribute,
            x_name=grouping_attribute,
            num_candidates=self._num_candidates,
            num_groups=self._num_groups,
            row_filter=row_filter,
            io=self.io,
            profiler=self.profiler,
            codes=codes,
            kernel=kernel,
        )

        z_column = shuffled.table.column(candidate_attribute).astype(np.int64, copy=False)
        if row_filter is not None:
            z_column = z_column[row_filter]
        self._totals = np.bincount(z_column, minlength=self._num_candidates).astype(
            np.int64
        )
        self._delivered = np.zeros(self._num_candidates, dtype=np.int64)
        self._consumed = np.zeros(max(self.layout.num_blocks, 1), dtype=bool)
        if self.layout.num_blocks == 0:
            self._consumed = np.zeros(0, dtype=bool)

        if start_block is None:
            start_block = shuffled.random_start_block(rng or np.random.default_rng())
        if self.layout.num_blocks and not 0 <= start_block < self.layout.num_blocks:
            raise ValueError(f"start_block {start_block} out of range")
        num_blocks = self.layout.num_blocks
        self._scan_order = (
            np.concatenate(
                [np.arange(start_block, num_blocks), np.arange(0, start_block)]
            )
            if num_blocks
            else np.empty(0, dtype=np.int64)
        )
        self._scan_pos = 0

    # -------------------------------------------------------- protocol surface

    @property
    def num_candidates(self) -> int:
        return self._num_candidates

    @property
    def num_groups(self) -> int:
        return self._num_groups

    @property
    def total_rows(self) -> int:
        if self._row_filter is not None:
            return int(self._totals.sum())
        return self.shuffled.num_rows

    @property
    def fully_scanned(self) -> bool:
        return bool(self._consumed.all()) if self._consumed.size else True

    def delivered_rows(self) -> np.ndarray:
        return self._delivered.copy()

    def candidate_rows(self) -> np.ndarray | None:
        return self._totals.copy()

    # ------------------------------------------------------------- internals

    def _window(self) -> np.ndarray:
        """Next window of candidate (non-consumed) blocks in scan order."""
        num_blocks = self._scan_order.size
        if num_blocks == 0:
            return np.empty(0, dtype=np.int64)
        stop = min(self._scan_pos + self.window_blocks, num_blocks)
        window = self._scan_order[self._scan_pos : stop]
        self._scan_pos = stop % num_blocks
        return window[~self._consumed[window]]

    def _deliver_blocks(self, blocks: np.ndarray) -> tuple[np.ndarray, float]:
        """Deliver blocks through the execution backend, mark them consumed.

        The backend gathers, filters, and counts (serially or sharded across
        workers); the engine keeps the bookkeeping — consumed blocks, per-
        candidate delivery tallies, effort counters.  Returns the fresh
        count matrix and the I/O cost.
        """
        if blocks.size == 0:
            return np.zeros((self._num_candidates, self._num_groups), dtype=np.int64), 0.0
        blocks = np.sort(blocks)
        counts, cost_ns = self.backend.count_blocks(self._source, blocks)
        self._delivered += counts.sum(axis=1)
        self._consumed[blocks] = True
        self.counters.blocks_read += int(blocks.size)
        self.counters.rows_delivered += int(counts.sum())
        if self.profiler.enabled:
            # Simulated I/O charge, not wall time — the ``engine.`` prefix
            # keeps it out of real-kernel-nanosecond totals; rows/blocks are
            # zero because the backend kernel already tallied this window.
            self.profiler.record_kernel("engine.deliver", float(cost_ns))
            self.profiler.bump("windows")
        return counts, cost_ns

    # ---------------------------------------------------------------- stage 1

    def sample_uniform(self, m: int) -> np.ndarray:
        """Sequential scan from the cursor until ``m`` rows are delivered.

        On the shuffled layout this is a uniform without-replacement sample;
        blocks are read unconditionally (no selection cost).
        """
        if m < 0:
            raise ValueError(f"m must be non-negative, got {m}")
        total = np.zeros((self._num_candidates, self._num_groups), dtype=np.int64)
        delivered = 0
        windows_without_blocks = 0
        max_windows = -(-max(self.layout.num_blocks, 1) // self.window_blocks) + 1
        while delivered < m and not self.fully_scanned:
            blocks = self._window()
            self.counters.windows += 1
            if blocks.size == 0:
                windows_without_blocks += 1
                if windows_without_blocks > max_windows:
                    break
                continue
            windows_without_blocks = 0
            # Trim to the minimal prefix reaching the budget.
            cumulative = np.cumsum(self.layout.rows_per_block(blocks))
            cutoff = int(np.searchsorted(cumulative, m - delivered)) + 1
            blocks = blocks[:cutoff]
            counts, io_cost = self._deliver_blocks(blocks)
            self.clock.charge_serial(io=io_cost)
            total += counts
            delivered += int(counts.sum())
        return total

    # ---------------------------------------------------------------- stage 2+

    def sample_until(self, needed: np.ndarray, max_rows: float | None = None) -> np.ndarray:
        """Scan with block selection until every candidate's fresh budget is met.

        ``needed`` is capped per candidate by its remaining (undelivered)
        rows; one full pass over the non-consumed blocks therefore always
        suffices to terminate.

        ``max_rows`` (optional) returns early once this call has delivered
        at least that many rows, at a window boundary; the caller resumes by
        calling again with the residual budgets.  The engine consumes blocks
        in a fixed scan order and the active set is recomputed per window
        from the residuals, so an incremental sequence of calls reads the
        same blocks as one unbounded call.
        """
        needed = np.asarray(needed, dtype=np.float64)
        if needed.shape != (self._num_candidates,):
            raise ValueError(
                f"needed must have shape ({self._num_candidates},), got {needed.shape}"
            )
        remaining = (self._totals - self._delivered).astype(np.float64)
        goal = np.minimum(np.maximum(needed, 0.0), remaining)
        fresh = np.zeros((self._num_candidates, self._num_groups), dtype=np.int64)
        fresh_rows = np.zeros(self._num_candidates, dtype=np.float64)
        delivered_call = 0

        num_blocks = max(self.layout.num_blocks, 1)
        windows_budget = 2 * (-(-num_blocks // self.window_blocks)) + 2
        windows_used = 0
        while windows_used <= windows_budget:
            active = np.flatnonzero(fresh_rows < goal)
            if active.size == 0:
                break
            if self.fully_scanned:
                break
            if max_rows is not None and delivered_call >= max_rows:
                break
            blocks = self._window()
            windows_used += 1
            self.counters.windows += 1
            if blocks.size == 0:
                continue
            resident = self.cost_model.bitmaps_resident(
                self._num_candidates, self.layout.num_blocks
            )
            decision: PolicyDecision = self.policy.select(
                self.index, blocks, active, self.cost_model, resident
            )
            self.counters.probes += decision.probes
            to_read = blocks[decision.read_mask]
            self.counters.blocks_skipped += int(blocks.size - to_read.size)
            counts, io_cost = self._deliver_blocks(to_read)
            if decision.overlaps_io:
                self.clock.charge_pipelined(io_ns=io_cost, mark_ns=decision.mark_cost_ns)
            else:
                # Synchronous path: block selection, the per-block candidate
                # state refresh, and a blocking engine↔I/O handoff all
                # serialize with I/O (Challenge 4).
                update_cost = self.cost_model.sync_update_cost(
                    int(counts.sum()), self._num_candidates * self._num_groups
                )
                handoff = self.cost_model.sync_handoff_cost(int(blocks.size))
                self.clock.charge_serial(
                    io=io_cost,
                    mark=decision.mark_cost_ns + handoff,
                    update=update_cost,
                )
            fresh += counts
            fresh_rows += counts.sum(axis=1)
            delivered_call += int(counts.sum())
        else:
            raise RuntimeError(
                "sampling engine exceeded its window budget; "
                "active candidates could not be satisfied in two passes"
            )
        return fresh
