"""Block-selection policies (paper Section 4.2, Challenge 3).

Given a window of candidate blocks and the set of *active* candidates (those
still needing fresh samples), a policy decides which blocks to read and what
the decision itself costs:

- :class:`ScanAllPolicy` — read everything (ScanMatch): free decisions.
- :class:`AnyActiveSyncPolicy` — Algorithm 2: per block, probe active
  candidates' bitmaps in order until one is present; every probe is a
  synchronous cache-line fetch, and the decision cost serializes with I/O
  (SyncMatch).
- :class:`AnyActiveLookaheadPolicy` — Algorithm 3: per active candidate,
  stream the window's contiguous bits; cache-efficient, and the decision
  overlaps I/O (FastMatch).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bitmap.bitmap_index import BlockBitmapIndex
from ..storage.cost_model import CACHELINE_BITS, CostModel

__all__ = [
    "PolicyDecision",
    "ScanAllPolicy",
    "AnyActiveSyncPolicy",
    "AnyActiveLookaheadPolicy",
    "POLICIES",
]


@dataclass(frozen=True)
class PolicyDecision:
    """Outcome of block selection for one window.

    ``read_mask`` aligns with the window's candidate block array;
    ``mark_cost_ns`` is the cost of making the decision; ``overlaps_io``
    says whether that cost runs on a separate thread (pipelined with I/O) or
    serializes with it; ``probes`` counts bitmap touches for reporting.
    """

    read_mask: np.ndarray
    mark_cost_ns: float
    overlaps_io: bool
    probes: int


class ScanAllPolicy:
    """No pruning: every candidate block is read (ScanMatch)."""

    name = "scan_all"
    overlaps_io = True

    def select(
        self,
        index: BlockBitmapIndex,
        blocks: np.ndarray,
        active_values: np.ndarray,
        cost_model: CostModel,
        resident: bool,
    ) -> PolicyDecision:
        return PolicyDecision(
            read_mask=np.ones(blocks.size, dtype=bool),
            mark_cost_ns=0.0,
            overlaps_io=True,
            probes=0,
        )


class AnyActiveSyncPolicy:
    """Algorithm 2: per-block early-exit probing, serialized with I/O.

    For block ``b`` the probe loop touches active candidates in order until
    one's bitmap bit is set; a read costs ``first_hit + 1`` probes, a skip
    costs ``|active|`` probes.  Each probe is an isolated cache-line fetch
    whose latency depends on whether the active bitmaps are L3-resident —
    the Section 5.4 pathology at high ``|V_Z|``.
    """

    name = "any_active_sync"
    overlaps_io = False

    def select(
        self,
        index: BlockBitmapIndex,
        blocks: np.ndarray,
        active_values: np.ndarray,
        cost_model: CostModel,
        resident: bool,
    ) -> PolicyDecision:
        if blocks.size == 0 or active_values.size == 0:
            return PolicyDecision(
                read_mask=np.zeros(blocks.size, dtype=bool),
                mark_cost_ns=0.0,
                overlaps_io=False,
                probes=0,
            )
        lo = int(blocks.min())
        hi = int(blocks.max()) + 1
        first = index.first_present(active_values, lo, hi)[blocks - lo]
        found = first < active_values.size
        probes = np.where(found, first + 1, active_values.size)
        total_probes = int(probes.sum())
        return PolicyDecision(
            read_mask=found,
            mark_cost_ns=cost_model.probe_cost(total_probes, resident),
            overlaps_io=False,
            probes=total_probes,
        )


class AnyActiveLookaheadPolicy:
    """Algorithm 3: mark a whole lookahead batch per candidate, overlapping I/O.

    The inner loop streams the window's contiguous bits for one candidate at
    a time, so each candidate costs ``⌈span/512⌉`` cache-line fetches plus a
    per-bit scan — and the marking happens on the lookahead thread while the
    I/O manager drains the previous batch (Figure 7).
    """

    name = "any_active_lookahead"
    overlaps_io = True

    def select(
        self,
        index: BlockBitmapIndex,
        blocks: np.ndarray,
        active_values: np.ndarray,
        cost_model: CostModel,
        resident: bool,
    ) -> PolicyDecision:
        if blocks.size == 0 or active_values.size == 0:
            return PolicyDecision(
                read_mask=np.zeros(blocks.size, dtype=bool),
                mark_cost_ns=0.0,
                overlaps_io=True,
                probes=0,
            )
        lo = int(blocks.min())
        hi = int(blocks.max()) + 1
        presence = index.chunk_presence(active_values, lo, hi)
        read_mask = presence[:, blocks - lo].any(axis=0)
        span = hi - lo
        lines = -(-span // CACHELINE_BITS)
        return PolicyDecision(
            read_mask=read_mask,
            mark_cost_ns=cost_model.lookahead_mark_cost(
                active_values.size, span, resident
            ),
            overlaps_io=True,
            probes=int(active_values.size) * lines,
        )


class DensityAnyActivePolicy:
    """AnyActive over *predicate* candidates via density maps (Appendix A.1.2).

    Candidates defined by boolean predicates over the candidate attribute
    cannot use plain presence bitmaps; the density map answers "how many
    tuples in this block match any active candidate's value set?".  The
    ``active_values`` passed by the engine are interpreted through
    ``candidate_value_masks``: row ``i`` gives candidate ``i``'s accepted
    ``Z`` values.
    """

    name = "density_any_active"
    overlaps_io = True

    def __init__(self, candidate_value_masks: np.ndarray, density_map) -> None:
        masks = np.asarray(candidate_value_masks, dtype=bool)
        if masks.ndim != 2:
            raise ValueError("candidate_value_masks must be (candidates, values)")
        self.candidate_value_masks = masks
        self.density_map = density_map

    def select(
        self,
        index: BlockBitmapIndex,
        blocks: np.ndarray,
        active_values: np.ndarray,
        cost_model: CostModel,
        resident: bool,
    ) -> PolicyDecision:
        if blocks.size == 0 or active_values.size == 0:
            return PolicyDecision(
                read_mask=np.zeros(blocks.size, dtype=bool),
                mark_cost_ns=0.0,
                overlaps_io=True,
                probes=0,
            )
        if active_values.max() >= self.candidate_value_masks.shape[0]:
            raise ValueError("active candidate index outside the mask table")
        union = self.candidate_value_masks[active_values].any(axis=0)
        lo = int(blocks.min())
        hi = int(blocks.max()) + 1
        per_block = self.density_map.tuples_matching(union, lo, hi)
        read_mask = per_block[blocks - lo] > 0
        # Density entries are wider than bits; charge one line per 64
        # (value, count) pairs streamed, batched like the lookahead path.
        span = hi - lo
        lines = -(-span // 64)
        return PolicyDecision(
            read_mask=read_mask,
            mark_cost_ns=cost_model.lookahead_mark_cost(1, lines * CACHELINE_BITS, resident),
            overlaps_io=True,
            probes=lines,
        )


#: Policy registry used by the FastMatch runner.
POLICIES = {
    ScanAllPolicy.name: ScanAllPolicy,
    AnyActiveSyncPolicy.name: AnyActiveSyncPolicy,
    AnyActiveLookaheadPolicy.name: AnyActiveLookaheadPolicy,
    DensityAnyActivePolicy.name: DensityAnyActivePolicy,
}
