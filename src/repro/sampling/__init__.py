"""Sampling engine substrate: block-selection policies (AnyActive, lookahead)
and the block-based TupleSampler implementation."""

from .engine import BlockSamplingEngine, EngineCounters
from .policies import (
    POLICIES,
    AnyActiveLookaheadPolicy,
    AnyActiveSyncPolicy,
    DensityAnyActivePolicy,
    PolicyDecision,
    ScanAllPolicy,
)

__all__ = [
    "BlockSamplingEngine",
    "EngineCounters",
    "POLICIES",
    "AnyActiveLookaheadPolicy",
    "AnyActiveSyncPolicy",
    "DensityAnyActivePolicy",
    "PolicyDecision",
    "ScanAllPolicy",
]
