"""Bitmap-index substrate: bit-per-block presence bitmaps (Section 4.1) and
per-block density maps (Appendix A.1.2)."""

from .bitmap_index import BlockBitmapIndex
from .builder import build_bitmap_index, build_density_map, build_indexes
from .compressed import WahBitmap, compress_index
from .density_map import DensityMap

__all__ = [
    "BlockBitmapIndex",
    "DensityMap",
    "WahBitmap",
    "compress_index",
    "build_bitmap_index",
    "build_density_map",
    "build_indexes",
]
