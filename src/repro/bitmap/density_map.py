"""Per-block value counts — "density maps" (paper Appendix A.1.2, citing [48]).

Where a bitmap answers "does block ``b`` contain value ``v`` at all?", a
density map answers "how many tuples with value ``v`` does block ``b``
hold?", which is what AnyActive needs for candidates defined by *arbitrary
boolean predicates* over attribute values.

Stored CSR-style per block, so the footprint is one entry per distinct
``(block, value)`` pair rather than a dense ``cardinality × num_blocks``
matrix.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DensityMap"]


class DensityMap:
    """CSR per-block (value, count) pairs for one encoded column."""

    def __init__(
        self,
        indptr: np.ndarray,
        values: np.ndarray,
        counts: np.ndarray,
        cardinality: int,
        num_blocks: int,
    ) -> None:
        if indptr.shape != (num_blocks + 1,):
            raise ValueError("indptr must have num_blocks + 1 entries")
        if values.shape != counts.shape:
            raise ValueError("values and counts must align")
        self._indptr = indptr
        self._values = values
        self._counts = counts
        self.cardinality = cardinality
        self.num_blocks = num_blocks

    @classmethod
    def build(cls, column: np.ndarray, cardinality: int, block_size: int) -> "DensityMap":
        column = np.asarray(column)
        if column.ndim != 1:
            raise ValueError("column must be 1-D")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        num_rows = column.size
        num_blocks = -(-num_rows // block_size) if num_rows else 0
        if num_rows == 0:
            return cls(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64),
                       np.empty(0, dtype=np.int64), cardinality, 0)
        if column.min() < 0 or column.max() >= cardinality:
            raise ValueError("column codes out of range")
        blocks = np.arange(num_rows, dtype=np.int64) // block_size
        keys = blocks * cardinality + column
        unique_keys, counts = np.unique(keys, return_counts=True)
        key_blocks = unique_keys // cardinality
        values = unique_keys % cardinality
        indptr = np.zeros(num_blocks + 1, dtype=np.int64)
        np.add.at(indptr, key_blocks + 1, 1)
        indptr = np.cumsum(indptr)
        return cls(indptr, values.astype(np.int64), counts.astype(np.int64),
                   cardinality, num_blocks)

    def block_counts(self, block: int) -> tuple[np.ndarray, np.ndarray]:
        """Distinct values in a block and their tuple counts."""
        if not 0 <= block < self.num_blocks:
            raise ValueError(f"block {block} out of range [0, {self.num_blocks})")
        lo, hi = self._indptr[block], self._indptr[block + 1]
        return self._values[lo:hi], self._counts[lo:hi]

    def tuples_matching(self, value_mask: np.ndarray, start_block: int, stop_block: int) -> np.ndarray:
        """Per-block tuple counts matching a boolean mask over values.

        This is the "estimate the number of active tuples in a block"
        primitive Appendix A.1.2 needs for predicate candidates.
        """
        value_mask = np.asarray(value_mask, dtype=bool)
        if value_mask.shape != (self.cardinality,):
            raise ValueError(f"value_mask must have {self.cardinality} entries")
        if not 0 <= start_block <= stop_block <= self.num_blocks:
            raise ValueError("block window out of range")
        lo = self._indptr[start_block]
        hi = self._indptr[stop_block]
        vals = self._values[lo:hi]
        cnts = self._counts[lo:hi]
        matched = np.where(value_mask[vals], cnts, 0)
        # Re-aggregate per block via the indptr offsets.
        out = np.zeros(stop_block - start_block, dtype=np.int64)
        block_of_entry = np.searchsorted(self._indptr, np.arange(lo, hi), side="right") - 1
        np.add.at(out, block_of_entry - start_block, matched)
        return out

    def value_totals(self) -> np.ndarray:
        """Total rows per value across all blocks (index-build statistics —
        how the engine knows each candidate's ``N_i``)."""
        totals = np.zeros(self.cardinality, dtype=np.int64)
        np.add.at(totals, self._values, self._counts)
        return totals

    @property
    def nbytes(self) -> int:
        return int(self._indptr.nbytes + self._values.nbytes + self._counts.nbytes)
