"""Bit-per-block bitmap index (paper Section 4.1, "Bitmap Index Structures").

For an attribute value ``v``, bit ``b`` is set iff block ``b`` contains at
least one tuple with that value.  This is the paper's storage-frugal variant
of the per-tuple bitmaps used in earlier sampling engines — one bit per
block per value — and is what the AnyActive policy probes.

Bits are stored MSB-first inside each byte (NumPy ``packbits`` convention).
"""

from __future__ import annotations

import numpy as np

__all__ = ["BlockBitmapIndex"]


class BlockBitmapIndex:
    """Packed presence bitmaps: shape ``(cardinality, ⌈num_blocks/8⌉)`` bytes."""

    def __init__(self, packed: np.ndarray, cardinality: int, num_blocks: int) -> None:
        expected_bytes = -(-num_blocks // 8)
        if packed.shape != (cardinality, expected_bytes):
            raise ValueError(
                f"packed shape {packed.shape} does not match "
                f"({cardinality}, {expected_bytes})"
            )
        self._packed = packed
        self.cardinality = cardinality
        self.num_blocks = num_blocks

    # ------------------------------------------------------------ construction

    @classmethod
    def build(cls, column: np.ndarray, cardinality: int, block_size: int) -> "BlockBitmapIndex":
        """Build from an encoded column laid out in ``block_size``-row blocks."""
        column = np.asarray(column)
        if column.ndim != 1:
            raise ValueError("column must be 1-D")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        num_rows = column.size
        num_blocks = -(-num_rows // block_size) if num_rows else 0
        bits = np.zeros((cardinality, max(num_blocks, 1)), dtype=np.uint8)
        if num_rows:
            if column.min() < 0 or column.max() >= cardinality:
                raise ValueError("column codes out of range")
            blocks = np.arange(num_rows, dtype=np.int64) // block_size
            bits[column, blocks] = 1
        packed = np.packbits(bits[:, :max(num_blocks, 0)], axis=1)
        if num_blocks == 0:
            packed = np.zeros((cardinality, 0), dtype=np.uint8)
        return cls(packed, cardinality, num_blocks)

    # ----------------------------------------------------------------- queries

    def contains(self, value: int, block: int) -> bool:
        """Is there any tuple with ``value`` in ``block``? (one probe)"""
        if not 0 <= value < self.cardinality:
            raise ValueError(f"value {value} out of range")
        if not 0 <= block < self.num_blocks:
            raise ValueError(f"block {block} out of range")
        byte = self._packed[value, block >> 3]
        return bool((byte >> (7 - (block & 7))) & 1)

    def blocks_with_value(self, value: int) -> np.ndarray:
        """Boolean presence vector over all blocks for one value."""
        if not 0 <= value < self.cardinality:
            raise ValueError(f"value {value} out of range")
        bits = np.unpackbits(self._packed[value])[: self.num_blocks]
        return bits.astype(bool)

    def chunk_presence(
        self, values: np.ndarray, start_block: int, stop_block: int
    ) -> np.ndarray:
        """Presence matrix ``(len(values), stop−start)`` for a block window.

        This is the batch the lookahead thread (Algorithm 3) walks: for each
        candidate row, the window's bits are contiguous in storage.
        """
        values = np.asarray(values, dtype=np.int64)
        if not 0 <= start_block <= stop_block <= self.num_blocks:
            raise ValueError(
                f"window [{start_block}, {stop_block}) outside [0, {self.num_blocks})"
            )
        if values.size == 0 or stop_block == start_block:
            return np.zeros((values.size, stop_block - start_block), dtype=bool)
        if values.min() < 0 or values.max() >= self.cardinality:
            raise ValueError("values out of range")
        byte0 = start_block >> 3
        byte1 = -(-stop_block // 8)
        window = np.unpackbits(self._packed[values, byte0:byte1], axis=1)
        offset = start_block - byte0 * 8
        return window[:, offset : offset + (stop_block - start_block)].astype(bool)

    def first_present(
        self, values: np.ndarray, start_block: int, stop_block: int
    ) -> np.ndarray:
        """For each block in the window: the index *within* ``values`` of the
        first value present, or ``len(values)`` when none is.

        This models Algorithm 2's early-exit probe loop: the number of probes
        spent on block ``b`` is ``first_present[b] + 1`` when a value is found
        and ``len(values)`` when the block is skipped.
        """
        presence = self.chunk_presence(values, start_block, stop_block)
        if presence.size == 0:
            return np.full(stop_block - start_block, values.size, dtype=np.int64)
        first = np.argmax(presence, axis=0).astype(np.int64)
        none_present = ~presence.any(axis=0)
        first[none_present] = values.size
        return first

    @property
    def nbytes(self) -> int:
        """Index footprint — the quantity the residency model cares about."""
        return int(self._packed.nbytes)
