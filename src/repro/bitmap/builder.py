"""Index construction helpers: build bitmap indexes / density maps for the
attributes a workload will filter or group on (paper Section 4.1)."""

from __future__ import annotations

from ..storage.shuffle import ShuffledTable
from .bitmap_index import BlockBitmapIndex
from .density_map import DensityMap

__all__ = ["build_bitmap_index", "build_density_map", "build_indexes"]


def build_bitmap_index(shuffled: ShuffledTable, attribute: str) -> BlockBitmapIndex:
    """Bit-per-block index over one attribute of a shuffled table."""
    column = shuffled.table.column(attribute)
    cardinality = shuffled.table.cardinality(attribute)
    return BlockBitmapIndex.build(column, cardinality, shuffled.layout.block_size)


def build_density_map(shuffled: ShuffledTable, attribute: str) -> DensityMap:
    """Per-block count map over one attribute of a shuffled table."""
    column = shuffled.table.column(attribute)
    cardinality = shuffled.table.cardinality(attribute)
    return DensityMap.build(column, cardinality, shuffled.layout.block_size)


def build_indexes(
    shuffled: ShuffledTable, attributes: tuple[str, ...]
) -> dict[str, BlockBitmapIndex]:
    """Bitmap indexes for several attributes at once."""
    return {name: build_bitmap_index(shuffled, name) for name in attributes}
