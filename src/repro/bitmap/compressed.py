"""Word-aligned hybrid (WAH) compressed bitmaps (paper Section 4.1).

The paper notes its bitmaps "are amenable to significant compression
[74, 75]" — Wu et al.'s WAH scheme.  A bitmap is stored as a sequence of
31-bit-payload words: *literal* words carry 31 raw bits; *fill* words carry
a run of identical 31-bit groups (all-zero or all-one) with a repeat count.
Sparse presence bitmaps (rare candidates touch few blocks) compress by
orders of magnitude, which is what makes a per-value-per-block index
affordable at the paper's 64M-block scale.

This implementation is self-contained and exact: ``compress`` /
``decompress`` round-trip bit-perfectly, and ``any_in_range`` answers the
AnyActive probe ("any set bit among blocks [lo, hi)?") directly on the
compressed form without materializing bits.
"""

from __future__ import annotations

import numpy as np

__all__ = ["WahBitmap", "compress_index"]

_PAYLOAD = 31
_FILL_FLAG = np.uint32(1 << 31)
_FILL_VALUE = np.uint32(1 << 30)
_COUNT_MASK = np.uint32((1 << 30) - 1)


class WahBitmap:
    """An immutable WAH-compressed bit vector."""

    def __init__(self, words: np.ndarray, num_bits: int) -> None:
        self._words = words.astype(np.uint32, copy=False)
        self.num_bits = int(num_bits)

    # ------------------------------------------------------------ construction

    @classmethod
    def compress(cls, bits: np.ndarray) -> "WahBitmap":
        """Compress a boolean vector into WAH words."""
        bits = np.asarray(bits, dtype=bool)
        if bits.ndim != 1:
            raise ValueError("bits must be a 1-D boolean vector")
        num_bits = bits.size
        if num_bits == 0:
            return cls(np.empty(0, dtype=np.uint32), 0)

        # Pad to a multiple of the payload and view as 31-bit groups.
        groups = -(-num_bits // _PAYLOAD)
        padded = np.zeros(groups * _PAYLOAD, dtype=bool)
        padded[:num_bits] = bits
        payload = padded.reshape(groups, _PAYLOAD)
        weights = (1 << np.arange(_PAYLOAD - 1, -1, -1)).astype(np.uint32)
        values = (payload * weights).sum(axis=1, dtype=np.uint64).astype(np.uint32)

        words: list[np.uint32] = []
        i = 0
        all_ones = np.uint32((1 << _PAYLOAD) - 1)
        while i < groups:
            value = values[i]
            if value == 0 or value == all_ones:
                run = 1
                while i + run < groups and values[i + run] == value:
                    run += 1
                remaining = run
                while remaining > 0:
                    chunk = min(remaining, int(_COUNT_MASK))
                    word = _FILL_FLAG | np.uint32(chunk)
                    if value == all_ones:
                        word |= _FILL_VALUE
                    words.append(word)
                    remaining -= chunk
                i += run
            else:
                words.append(value)
                i += 1
        return cls(np.asarray(words, dtype=np.uint32), num_bits)

    # ------------------------------------------------------------------ access

    def decompress(self) -> np.ndarray:
        """Back to a boolean vector (exact round trip)."""
        out = np.zeros(-(-self.num_bits // _PAYLOAD) * _PAYLOAD, dtype=bool)
        pos = 0
        for word in self._words:
            if word & _FILL_FLAG:
                count = int(word & _COUNT_MASK)
                if word & _FILL_VALUE:
                    out[pos : pos + count * _PAYLOAD] = True
                pos += count * _PAYLOAD
            else:
                bits = (int(word) >> np.arange(_PAYLOAD - 1, -1, -1)) & 1
                out[pos : pos + _PAYLOAD] = bits.astype(bool)
                pos += _PAYLOAD
        return out[: self.num_bits]

    def get(self, position: int) -> bool:
        """One bit, read off the compressed form."""
        if not 0 <= position < self.num_bits:
            raise IndexError(f"bit {position} out of range [0, {self.num_bits})")
        group, offset = divmod(position, _PAYLOAD)
        cursor = 0
        for word in self._words:
            if word & _FILL_FLAG:
                count = int(word & _COUNT_MASK)
                if cursor <= group < cursor + count:
                    return bool(word & _FILL_VALUE)
                cursor += count
            else:
                if cursor == group:
                    return bool((int(word) >> (_PAYLOAD - 1 - offset)) & 1)
                cursor += 1
        raise AssertionError("walked past the end of the compressed stream")

    def any_in_range(self, lo: int, hi: int) -> bool:
        """AnyActive probe: any set bit among positions [lo, hi)?

        Answered on the compressed stream — fills are skipped in O(1) each,
        which is the compressed-index analogue of the lookahead scan.
        """
        if not 0 <= lo <= hi <= self.num_bits:
            raise ValueError(f"range [{lo}, {hi}) outside [0, {self.num_bits})")
        if lo == hi:
            return False
        first_group, first_offset = divmod(lo, _PAYLOAD)
        last_group, last_offset = divmod(hi - 1, _PAYLOAD)
        cursor = 0
        for word in self._words:
            if word & _FILL_FLAG:
                count = int(word & _COUNT_MASK)
                span_lo, span_hi = cursor, cursor + count
                if span_hi > first_group and span_lo <= last_group:
                    if word & _FILL_VALUE:
                        return True
                cursor += count
            else:
                if first_group <= cursor <= last_group:
                    value = int(word)
                    start = first_offset if cursor == first_group else 0
                    stop = last_offset if cursor == last_group else _PAYLOAD - 1
                    mask = ((1 << (stop - start + 1)) - 1) << (_PAYLOAD - 1 - stop)
                    if value & mask:
                        return True
                cursor += 1
            if cursor > last_group:
                break
        return False

    @property
    def nbytes(self) -> int:
        return int(self._words.nbytes)

    def compression_ratio(self) -> float:
        """Uncompressed bit-bytes divided by compressed bytes."""
        raw = -(-self.num_bits // 8)
        return raw / max(self.nbytes, 1)


def compress_index(presence_matrix: np.ndarray) -> list[WahBitmap]:
    """Compress a (values × blocks) presence matrix row by row."""
    presence_matrix = np.asarray(presence_matrix, dtype=bool)
    if presence_matrix.ndim != 2:
        raise ValueError("presence matrix must be 2-D")
    return [WahBitmap.compress(row) for row in presence_matrix]
