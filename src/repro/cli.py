"""Command-line interface: run a Table 3 workload query end to end.

    python -m repro --query flights-q1 --approach fastmatch --rows 1000000
    python -m repro --list

Prints the run report (simulated latency, speedup over Scan, guarantee
audit) and renders the best matches as ASCII visualizations.
"""

from __future__ import annotations

import argparse
import sys

from .core.config import HistSimConfig
from .data import QUERY_NAMES, prepare_workload
from .system import APPROACHES, run_approach
from .system.visualize import render_result

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FastMatch/HistSim reproduction: top-k histogram matching",
    )
    parser.add_argument("--list", action="store_true", help="list available queries")
    parser.add_argument("--query", choices=QUERY_NAMES, help="Table 3 query to run")
    parser.add_argument(
        "--approach", choices=APPROACHES, default="fastmatch",
        help="execution approach (default: fastmatch)",
    )
    parser.add_argument("--rows", type=int, default=1_000_000,
                        help="dataset rows (default 1,000,000; paper-scale: 6,000,000)")
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--delta", type=float, default=0.01)
    parser.add_argument("--sigma", type=float, default=0.0008)
    parser.add_argument("--k", type=int, default=None,
                        help="override the query's default k")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--no-render", action="store_true",
                        help="skip the ASCII visualization panels")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        print("available queries:")
        for name in QUERY_NAMES:
            print(f"  {name}")
        return 0
    if not args.query:
        parser.error("--query is required (or use --list)")

    prepared = prepare_workload(args.query, rows=args.rows, seed=args.seed)
    k = args.k if args.k is not None else prepared.query.k
    config = HistSimConfig(
        k=k, epsilon=args.epsilon, delta=args.delta, sigma=args.sigma,
        stage1_samples=min(50_000, max(1, args.rows // 20)),
    )

    scan = run_approach(prepared, "scan", config, seed=args.seed)
    report = (
        scan if args.approach == "scan"
        else run_approach(prepared, args.approach, config, seed=args.seed)
    )

    print(f"query      : {args.query}  (Z={prepared.query.candidate_attribute}, "
          f"X={prepared.query.grouping_attribute}, k={k})")
    print(f"approach   : {args.approach}")
    print(f"rows       : {prepared.shuffled.num_rows:,} "
          f"({prepared.shuffled.num_blocks:,} blocks)")
    print(f"latency    : {report.elapsed_seconds * 1e3:.2f} ms simulated "
          f"({report.speedup_over(scan):.2f}x vs scan)")
    print(f"samples    : {report.result.stats.total_samples:,} "
          f"(stage-2 rounds: {report.result.stats.rounds}, "
          f"pruned: {report.result.stats.pruned_candidates})")
    if report.audit is not None:
        print(f"guarantees : separation={'OK' if report.audit.separation_ok else 'VIOLATED'} "
              f"reconstruction={'OK' if report.audit.reconstruction_ok else 'VIOLATED'} "
              f"delta_d={report.audit.delta_d:+.4f}")
    z_attr = prepared.shuffled.table.schema[prepared.query.candidate_attribute]
    matches = ", ".join(
        f"{z_attr.values[c]}({d:.3f})"
        for c, d in zip(report.result.matching, report.result.distances)
    )
    print(f"matches    : {matches}")

    if not args.no_render and report.result.k > 0:
        x_attr = prepared.shuffled.table.schema[prepared.query.grouping_attribute]
        print()
        print(
            render_result(
                report.result,
                prepared.target,
                candidate_labels=list(z_attr.values),
                group_labels=list(x_attr.values),
                max_candidates=2,
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
