"""Command-line interface: run Table 3 workload queries end to end.

Single query (prints the run report and ASCII visualizations):

    python -m repro --query flights-q1 --approach fastmatch --rows 1000000
    python -m repro --list

Multi-query serving (one MatchSession per dataset; prepared artifacts are
shared across queries and execution is interleaved on one simulated clock):

    python -m repro batch --queries flights-q1 flights-q3 flights-q4
    python -m repro serve --queries taxi-q1 taxi-q2 --repeat 4 --rows 500000

Prints per-query latency/service time, aggregate throughput, and the
artifact-cache hit profile.

Sharded parallel execution (``--backend sharded --workers N``) fans each
window's block counting out to a persistent pool of shared-memory worker
processes; results are byte-identical to the serial backend:

    python -m repro --query taxi-q1 --backend sharded --workers 4
    python -m repro serve --queries taxi-q1 taxi-q2 --backend sharded
"""

from __future__ import annotations

import argparse
import sys

from .core.config import HistSimConfig
from .data import QUERY_NAMES, load_dataset, prepare_workload, workload_query
from .parallel import BACKENDS, make_backend
from .system import APPROACHES, MatchSession, run_approach
from .system.visualize import render_result

__all__ = ["build_parser", "main"]


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _add_batch_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--queries", nargs="+", choices=QUERY_NAMES, required=True,
        help="Table 3 queries to serve concurrently",
    )
    # Flags the top-level parser also accepts use SUPPRESS so a value given
    # before the subcommand (``repro --rows 5000 batch ...``) is not
    # overwritten by a subparser default; the top-level defaults apply.
    sub.add_argument(
        "--approach", choices=APPROACHES, default=argparse.SUPPRESS,
        help="execution approach for every query (default: fastmatch)",
    )
    sub.add_argument("--rows", type=int, default=argparse.SUPPRESS,
                     help="dataset rows (default 1,000,000)")
    sub.add_argument("--repeat", type=_positive_int, default=1,
                     help="submit each query this many times (shows cache reuse)")
    sub.add_argument("--epsilon", type=float, default=argparse.SUPPRESS)
    sub.add_argument("--delta", type=float, default=argparse.SUPPRESS)
    sub.add_argument("--sigma", type=float, default=argparse.SUPPRESS)
    sub.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    sub.add_argument(
        "--max-step-rows", type=_positive_int, default=None,
        help="bound rows sampled per scheduler step (finer interleaving)",
    )
    sub.add_argument(
        "--backend", choices=BACKENDS, default=argparse.SUPPRESS,
        help="execution backend for sampling (default: serial)",
    )
    sub.add_argument(
        "--workers", type=_positive_int, default=argparse.SUPPRESS,
        help="worker processes for --backend sharded (default: CPU count)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FastMatch/HistSim reproduction: top-k histogram matching",
    )
    parser.add_argument("--list", action="store_true", help="list available queries")
    parser.add_argument("--query", choices=QUERY_NAMES, help="Table 3 query to run")
    parser.add_argument(
        "--approach", choices=APPROACHES, default="fastmatch",
        help="execution approach (default: fastmatch)",
    )
    parser.add_argument("--rows", type=int, default=1_000_000,
                        help="dataset rows (default 1,000,000; paper-scale: 6,000,000)")
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--delta", type=float, default=0.01)
    parser.add_argument("--sigma", type=float, default=0.0008)
    parser.add_argument("--k", type=int, default=None,
                        help="override the query's default k")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--no-render", action="store_true",
                        help="skip the ASCII visualization panels")
    parser.add_argument(
        "--backend", choices=BACKENDS, default="serial",
        help="execution backend for sampling approaches (default: serial; "
             "'sharded' fans block counting out to a worker-process pool "
             "with byte-identical results)",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=None,
        help="worker processes for --backend sharded (default: CPU count)",
    )

    subparsers = parser.add_subparsers(dest="command")
    batch = subparsers.add_parser(
        "batch", aliases=["serve"],
        help="serve several queries through shared MatchSessions",
        description="Interleave several workload queries per dataset through "
                    "one MatchSession each, reporting per-query latency, "
                    "aggregate throughput, and artifact-cache reuse.",
    )
    _add_batch_arguments(batch)
    batch.set_defaults(command="batch")
    return parser


def _run_single(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if not args.query:
        parser.error("--query is required (or use --list)")

    prepared = prepare_workload(args.query, rows=args.rows, seed=args.seed)
    k = args.k if args.k is not None else prepared.query.k
    config = HistSimConfig(
        k=k, epsilon=args.epsilon, delta=args.delta, sigma=args.sigma,
        stage1_samples=min(50_000, max(1, args.rows // 20)),
    )

    scan = run_approach(prepared, "scan", config, seed=args.seed)
    if args.approach == "scan":
        report = scan
    else:
        backend = make_backend(args.backend, args.workers)
        try:
            report = run_approach(
                prepared, args.approach, config, seed=args.seed, backend=backend
            )
        finally:
            backend.close()

    print(f"query      : {args.query}  (Z={prepared.query.candidate_attribute}, "
          f"X={prepared.query.grouping_attribute}, k={k})")
    print(f"approach   : {args.approach}")
    print(f"backend    : {report.backend}"
          + (f" ({args.workers or 'auto'} workers)"
             if report.backend == "sharded" else ""))
    print(f"rows       : {prepared.shuffled.num_rows:,} "
          f"({prepared.shuffled.num_blocks:,} blocks)")
    print(f"latency    : {report.elapsed_seconds * 1e3:.2f} ms simulated "
          f"({report.speedup_over(scan):.2f}x vs scan)")
    print(f"samples    : {report.result.stats.total_samples:,} "
          f"(stage-2 rounds: {report.result.stats.rounds}, "
          f"pruned: {report.result.stats.pruned_candidates})")
    if report.audit is not None:
        print(f"guarantees : separation={'OK' if report.audit.separation_ok else 'VIOLATED'} "
              f"reconstruction={'OK' if report.audit.reconstruction_ok else 'VIOLATED'} "
              f"delta_d={report.audit.delta_d:+.4f}")
    z_attr = prepared.shuffled.table.schema[prepared.query.candidate_attribute]
    matches = ", ".join(
        f"{z_attr.values[c]}({d:.3f})"
        for c, d in zip(report.result.matching, report.result.distances)
    )
    print(f"matches    : {matches}")

    if not args.no_render and report.result.k > 0:
        x_attr = prepared.shuffled.table.schema[prepared.query.grouping_attribute]
        print()
        print(
            render_result(
                report.result,
                prepared.target,
                candidate_labels=list(z_attr.values),
                group_labels=list(x_attr.values),
                max_candidates=2,
            )
        )
    return 0


def _run_batch(args: argparse.Namespace) -> int:
    # One MatchSession per dataset: a session owns one table, so queries are
    # grouped by the dataset they run against.
    by_dataset: dict[str, list[str]] = {}
    for query_name in args.queries:
        dataset_name, _ = workload_query(query_name)
        by_dataset.setdefault(dataset_name, []).append(query_name)

    total_queries = 0
    total_elapsed = 0.0
    for dataset_name, query_names in by_dataset.items():
        dataset = load_dataset(dataset_name, rows=args.rows, seed=args.seed)
        # One session (and thus one worker pool / shared-memory store for the
        # sharded backend) serves the dataset's whole batch.
        with MatchSession(
            dataset.table, backend=args.backend, workers=args.workers
        ) as session:
            for query_name in query_names:
                _, query = workload_query(query_name)
                k = args.k if args.k is not None else query.k
                config = HistSimConfig(
                    k=k, epsilon=args.epsilon, delta=args.delta,
                    sigma=args.sigma,
                    stage1_samples=min(50_000, max(1, args.rows // 20)),
                )
                # Repeats share one seed so they hit the prepared-artifact cache
                # (one shuffle/index for the whole batch) — the point of --repeat.
                for repeat in range(args.repeat):
                    session.submit(
                        query,
                        approach=args.approach,
                        config=config,
                        seed=args.seed,
                        max_step_rows=args.max_step_rows,
                        name=f"{query_name}" + (f"#{repeat}" if args.repeat > 1 else ""),
                    )
            run = session.run()

        backend_desc = ", ".join(
            f"{key}={value}" for key, value in (run.backend or {}).items()
        )
        print(f"dataset    : {dataset_name}  ({dataset.table.num_rows:,} rows, "
              f"{len(run)} queries, approach={args.approach})")
        print(f"  backend    : {backend_desc or 'serial'}")
        for outcome in run:
            audit = outcome.report.audit
            guarantees = (
                "OK" if audit is not None and audit.ok else
                ("VIOLATED" if audit is not None else "n/a")
            )
            print(f"  {outcome.name:<14} latency={outcome.latency_seconds * 1e3:8.2f} ms  "
                  f"service={outcome.service_seconds * 1e3:7.2f} ms  "
                  f"steps={outcome.steps:<3d} "
                  f"samples={outcome.report.result.stats.total_samples:>9,}  "
                  f"guarantees={guarantees}")
        print(f"  throughput : {run.throughput_qps:,.1f} queries/simulated-second "
              f"({run.elapsed_seconds * 1e3:.2f} ms total)")
        print(f"  cache      : {session.cache_stats.summary()} "
              f"({session.cache_hits} hits)")
        total_queries += len(run)
        total_elapsed += run.elapsed_seconds

    if len(by_dataset) > 1 and total_elapsed > 0:
        print(f"overall    : {total_queries} queries, "
              f"{total_queries / total_elapsed:,.1f} queries/simulated-second")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.workers is not None and args.backend != "sharded":
        parser.error("--workers requires --backend sharded")
    if args.backend != "serial" and args.approach == "scan":
        parser.error(
            "--backend sharded has no effect on the exact scan baseline; "
            "pick a sampling approach"
        )

    if getattr(args, "command", None) == "batch":
        return _run_batch(args)

    if args.list:
        print("available queries:")
        for name in QUERY_NAMES:
            print(f"  {name}")
        return 0
    return _run_single(args, parser)


if __name__ == "__main__":
    sys.exit(main())
