"""Command-line interface: run Table 3 workload queries end to end.

Single query (prints the run report and ASCII visualizations):

    python -m repro --query flights-q1 --approach fastmatch --rows 1000000
    python -m repro --list

Multi-query batch (one MatchSession per dataset; prepared artifacts are
shared across queries and execution is interleaved on one simulated clock):

    python -m repro batch --queries flights-q1 flights-q3 flights-q4

Online serving through the front door — admission control, a scheduling
policy (including feasibility-aware ``edf-f``), per-query deadlines with
ε-relaxed partial answers, and an open-loop trace replay mode.  All
datasets in play are served *multi-tenant* through one
``SessionRegistry`` behind a single front door (one shared clock, one
worker pool), and ``--datasets`` pre-loads tenants explicitly:

    python -m repro serve --queries taxi-q1 taxi-q2 --repeat 4 \\
        --policy edf --deadline-ms 50 --max-queue 8
    python -m repro serve --datasets flights,taxi --policy edf-f \\
        --deadline-ms 50
    python -m repro serve --trace arrivals.jsonl --policy cost
    python -m repro serve --datasets flights,taxi --async

``--async`` drives the same requests through the asyncio
``AsyncFrontDoor`` (one scheduler task, awaitable handles) instead of the
synchronous open-loop replay.

A trace file holds one JSON object per line:
``{"query": "flights-q1", "arrival_ms": 12.5, "deadline_ms": 40}``
(optional keys: ``approach``, ``seed``, ``on_deadline``).

Parallel execution fans each window's block counting — and the exact
Scan/ground-truth passes — out to workers, with byte-identical results:
``--backend sharded --workers N`` uses a persistent pool of shared-memory
worker processes, ``--backend threads --workers N`` an in-process thread
pool over GIL-releasing kernels (no fork, no /dev/shm).  Online serving
can additionally run steps of different requests concurrently
(``serve --async --max-concurrent-steps M``):

    python -m repro --query taxi-q1 --backend sharded --workers 4
    python -m repro serve --queries taxi-q1 taxi-q2 --backend threads \\
        --async --max-concurrent-steps 4
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .core.config import HistSimConfig
from .data import QUERY_NAMES, load_dataset, prepare_workload, workload_query
from .data.registry import dataset_builders
from .obs import (
    ProfileSnapshot,
    Profiler,
    StatsExporter,
    TraceReader,
    TraceSchemaError,
    TraceWriter,
    Tracer,
    WallProfiler,
    summarize_records,
)
from .obs.bench_history import (
    DEFAULT_BASELINE_K,
    DEFAULT_MIN_BASELINE,
    DEFAULT_TOLERANCE,
    NORMALIZERS,
    BenchHistory,
    BenchRecord,
    check_regression,
)
from .parallel import (
    AFFINITY_POLICIES,
    BACKENDS,
    KERNEL_SPECS,
    WORKER_BACKENDS,
    make_backend,
)
from .serving import POLICIES, QueryRequest
from .system import APPROACHES, MatchSession, SessionRegistry, run_approach
from .system.visualize import render_result

__all__ = ["build_parser", "main"]


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def resolve_backend_args(
    args: argparse.Namespace,
) -> tuple[str, int | None, str | None]:
    """Normalize ``(--backend, --workers, --cpu-affinity)`` — the one
    backend-spec rule.

    Every subcommand (single run, batch, serve, serve --async) routes its
    backend choice through here: worker-carrying backends (``sharded``,
    ``threads``) keep ``--workers`` and ``--cpu-affinity``; ``serial``
    with either knob is ignored-with-warning rather than silently accepted
    (or fatally rejected) — scripted callers flipping ``--backend`` should
    not crash, but must be told their parallelism knob did nothing.
    """
    backend = getattr(args, "backend", "serial")
    workers = getattr(args, "workers", None)
    cpu_affinity = getattr(args, "cpu_affinity", None)
    if cpu_affinity == "none":
        cpu_affinity = None
    if workers is not None and backend not in WORKER_BACKENDS:
        print(
            f"warning: --workers {workers} is ignored with --backend {backend}",
            file=sys.stderr,
        )
        workers = None
    if cpu_affinity is not None and backend not in WORKER_BACKENDS:
        print(
            f"warning: --cpu-affinity {cpu_affinity} is ignored with "
            f"--backend {backend}",
            file=sys.stderr,
        )
        cpu_affinity = None
    return backend, workers, cpu_affinity


def _add_batch_arguments(sub: argparse.ArgumentParser, queries_required: bool = True) -> None:
    sub.add_argument(
        "--queries", nargs="+", choices=QUERY_NAMES, required=queries_required,
        help="Table 3 queries to serve concurrently",
    )
    # Flags the top-level parser also accepts use SUPPRESS so a value given
    # before the subcommand (``repro --rows 5000 batch ...``) is not
    # overwritten by a subparser default; the top-level defaults apply.
    sub.add_argument(
        "--approach", choices=APPROACHES, default=argparse.SUPPRESS,
        help="execution approach for every query (default: fastmatch)",
    )
    sub.add_argument("--rows", type=int, default=argparse.SUPPRESS,
                     help="dataset rows (default 1,000,000)")
    sub.add_argument("--repeat", type=_positive_int, default=1,
                     help="submit each query this many times (shows cache reuse)")
    sub.add_argument("--epsilon", type=float, default=argparse.SUPPRESS)
    sub.add_argument("--delta", type=float, default=argparse.SUPPRESS)
    sub.add_argument("--sigma", type=float, default=argparse.SUPPRESS)
    sub.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    sub.add_argument(
        "--max-step-rows", type=_positive_int, default=None,
        help="bound rows sampled per scheduler step (finer interleaving)",
    )
    sub.add_argument(
        "--backend", choices=BACKENDS, default=argparse.SUPPRESS,
        help="execution backend for sampling (default: serial)",
    )
    sub.add_argument(
        "--workers", type=_positive_int, default=argparse.SUPPRESS,
        help="workers for --backend sharded (processes) or threads "
             "(default: CPU count)",
    )
    sub.add_argument(
        "--kernel", choices=KERNEL_SPECS, default=argparse.SUPPRESS,
        help="counting kernel (default: auto; all byte-identical)",
    )
    sub.add_argument(
        "--cpu-affinity", choices=AFFINITY_POLICIES, default=argparse.SUPPRESS,
        help="pin workers to CPUs for --backend sharded/threads "
             "(default: none)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FastMatch/HistSim reproduction: top-k histogram matching",
    )
    parser.add_argument("--list", action="store_true", help="list available queries")
    parser.add_argument("--query", choices=QUERY_NAMES, help="Table 3 query to run")
    parser.add_argument(
        "--approach", choices=APPROACHES, default="fastmatch",
        help="execution approach (default: fastmatch)",
    )
    parser.add_argument("--rows", type=int, default=1_000_000,
                        help="dataset rows (default 1,000,000; paper-scale: 6,000,000)")
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--delta", type=float, default=0.01)
    parser.add_argument("--sigma", type=float, default=0.0008)
    parser.add_argument("--k", type=int, default=None,
                        help="override the query's default k")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--no-render", action="store_true",
                        help="skip the ASCII visualization panels")
    parser.add_argument(
        "--backend", choices=BACKENDS, default="serial",
        help="execution backend for sampling approaches (default: serial; "
             "'sharded' fans block counting out to a worker-process pool, "
             "'threads' to an in-process GIL-releasing thread pool — both "
             "with byte-identical results)",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=None,
        help="workers for --backend sharded (processes) or threads "
             "(default: CPU count)",
    )
    parser.add_argument(
        "--kernel", choices=KERNEL_SPECS, default="auto",
        help="counting kernel: 'auto' picks the narrowest exact path, "
             "'fused' adds a cached pair-code column (session layer), "
             "'narrow'/'classic' force a specific path — all choices "
             "produce byte-identical answers (default: auto)",
    )
    parser.add_argument(
        "--cpu-affinity", choices=AFFINITY_POLICIES, default=None,
        help="worker CPU placement for --backend sharded/threads: 'spread' "
             "distributes workers across the CPU set, 'compact' packs them "
             "onto the lowest CPUs; no-op where unsupported (default: none)",
    )

    subparsers = parser.add_subparsers(dest="command")
    batch = subparsers.add_parser(
        "batch",
        help="drain several queries through shared MatchSessions",
        description="Interleave several workload queries per dataset through "
                    "one MatchSession each, reporting per-query latency, "
                    "aggregate throughput, and artifact-cache reuse.",
    )
    _add_batch_arguments(batch)
    batch.set_defaults(command="batch")

    serve = subparsers.add_parser(
        "serve",
        help="online serving through the async front door",
        description="Serve workload queries through the front door: bounded "
                    "admission, a scheduling policy, per-query deadlines "
                    "(ε-relaxed partial answers on expiry), and an open-loop "
                    "trace replay mode.  Reports per-query outcomes plus "
                    "latency percentiles, deadline-hit rate, and shed count.",
    )
    _add_batch_arguments(serve, queries_required=False)
    serve.add_argument(
        "--policy", choices=POLICIES, default="edf",
        help="scheduling policy (default: edf)",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-query deadline on the simulated clock (default: none)",
    )
    serve.add_argument(
        "--max-queue", type=_positive_int, default=None,
        help="admission bound on requests in flight (default: unbounded)",
    )
    serve.add_argument(
        "--trace", type=Path, default=None,
        help="JSONL trace replayed open-loop: one "
             '{"query", "arrival_ms", "deadline_ms"?, ...} per line',
    )
    serve.add_argument(
        "--datasets", type=str, default=None,
        help="comma-separated dataset tenants to pre-load behind the one "
             "front door (e.g. 'flights,taxi'); without --queries/--trace, "
             "serves every workload query of those datasets",
    )
    serve.add_argument(
        "--async", dest="use_async", action="store_true",
        help="drive requests through the asyncio AsyncFrontDoor (one "
             "scheduler task, awaitable handles) instead of the "
             "synchronous open-loop replay",
    )
    serve.add_argument(
        "--max-concurrent-steps", type=_positive_int, default=1,
        help="step-execution slots for --async: above 1, steps of "
             "different requests run concurrently on a bounded executor "
             "(answers stay byte-identical; replay mode is deterministic "
             "single-slot and ignores this)",
    )
    serve.add_argument(
        "--trace-out", type=Path, default=None,
        help="export every span/event of the run as schema-versioned JSONL "
             "to this path (enables tracing; inspect with "
             "'repro trace summarize FILE')",
    )
    serve.add_argument(
        "--stats-out", type=Path, default=None,
        help="periodically export queue/latency/health frames as JSON to "
             "this path while serving (watch live with 'repro top FILE')",
    )
    serve.add_argument(
        "--stats-interval", type=float, default=0.5,
        help="seconds between --stats-out frames (default: 0.5)",
    )
    serve.set_defaults(command="serve")

    trace = subparsers.add_parser(
        "trace",
        help="inspect an exported JSONL trace",
        description="Read a trace written by 'serve --trace-out' and print "
                    "the per-stage time budget: where every request's "
                    "latency went (queue wait, engine steps, HistSim "
                    "stages, shard fan-out), with p50/p99 per stage.",
    )
    trace.add_argument("action", choices=["summarize"],
                       help="what to do with the trace (summarize: "
                            "per-stage time-budget table)")
    trace.add_argument("file", type=Path, help="JSONL trace file")
    trace.add_argument("--json", action="store_true",
                       help="emit the summary as JSON instead of a table")
    trace.set_defaults(command="trace")

    profile = subparsers.add_parser(
        "profile",
        help="profile one workload query's hot path",
        description="Run one workload query with the hot-path profiler on: "
                    "per-kernel effort (calls, ns, rows gathered, blocks, "
                    "bytes moved, bincount invocations) attributed per "
                    "HistSim stage, per-stage simulated time reconciled "
                    "against trace spans, and (with --wall) collapsed-stack "
                    "samples renderable by any flamegraph tool.",
    )
    profile.add_argument("query", choices=QUERY_NAMES, help="Table 3 query")
    profile.add_argument(
        "--approach", choices=APPROACHES, default=argparse.SUPPRESS,
        help="execution approach (default: fastmatch)",
    )
    profile.add_argument("--rows", type=int, default=argparse.SUPPRESS,
                         help="dataset rows (default 1,000,000)")
    profile.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    profile.add_argument("--epsilon", type=float, default=argparse.SUPPRESS)
    profile.add_argument("--delta", type=float, default=argparse.SUPPRESS)
    profile.add_argument("--sigma", type=float, default=argparse.SUPPRESS)
    profile.add_argument(
        "--backend", choices=BACKENDS, default=argparse.SUPPRESS,
        help="execution backend (default: serial)",
    )
    profile.add_argument(
        "--workers", type=_positive_int, default=argparse.SUPPRESS,
        help="workers for --backend sharded/threads",
    )
    profile.add_argument(
        "--kernel", choices=KERNEL_SPECS, default=argparse.SUPPRESS,
        help="counting kernel (default: auto; all byte-identical)",
    )
    profile.add_argument(
        "--cpu-affinity", choices=AFFINITY_POLICIES, default=argparse.SUPPRESS,
        help="pin workers to CPUs for --backend sharded/threads",
    )
    profile.add_argument(
        "--wall", action="store_true",
        help="also sample wall-clock stacks on a background thread and "
             "print collapsed flamegraph lines",
    )
    profile.add_argument(
        "--wall-interval-ms", type=float, default=5.0,
        help="wall-profiler sampling interval (default: 5 ms)",
    )
    profile.add_argument(
        "--top", type=_positive_int, default=15,
        help="collapsed stacks to print with --wall (default: 15)",
    )
    profile.add_argument("--json", action="store_true",
                         help="emit the profile as JSON")
    profile.set_defaults(command="profile")

    top = subparsers.add_parser(
        "top",
        help="live dashboard over a serving process's --stats-out file",
        description="Tail the JSON frames a running 'repro serve "
                    "--stats-out FILE' exports and render a live dashboard: "
                    "queue depth, step slots, shared-memory bytes, per-"
                    "tenant latency percentiles, calibration ratios, and "
                    "health status.  Purely a reader — the serving process "
                    "is never touched.",
    )
    top.add_argument("file", type=Path, help="stats JSON file written by "
                                             "'serve --stats-out'")
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between refreshes (default: 1.0)")
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (no screen clearing)")
    top.set_defaults(command="top")

    bench_history = subparsers.add_parser(
        "bench-history",
        help="record/check/show the benchmark perf history",
        description="Maintain the append-only benchmark history under "
                    "benchmarks/results/history/ and gate regressions: "
                    "'record' normalizes bench_*.json results into history "
                    "records, 'check' compares the newest record per bench "
                    "against the median of the last K comparable runs (or a "
                    "committed baseline file) with per-metric tolerance "
                    "bands, 'show' lists recorded history.",
    )
    bench_history.add_argument("action", choices=["record", "check", "show"])
    bench_history.add_argument(
        "--results-dir", type=Path, default=Path("benchmarks/results"),
        help="directory holding bench_*.json results (record)",
    )
    bench_history.add_argument(
        "--history-dir", type=Path, default=None,
        help="history directory (default: RESULTS_DIR/history)",
    )
    bench_history.add_argument(
        "--bench", choices=sorted(NORMALIZERS), default=None,
        help="restrict to one bench id (default: all)",
    )
    bench_history.add_argument(
        "--note", type=str, default="",
        help="free-form note stored on recorded history entries",
    )
    bench_history.add_argument(
        "--baseline", type=Path, default=None,
        help="JSONL baseline file to check against instead of the trailing "
             "history window (CI's committed tiny baseline)",
    )
    bench_history.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"tolerance band for gated metrics (default: {DEFAULT_TOLERANCE})",
    )
    bench_history.add_argument(
        "--k", type=_positive_int, default=DEFAULT_BASELINE_K,
        help=f"trailing baseline window (default: {DEFAULT_BASELINE_K})",
    )
    bench_history.add_argument(
        "--min-baseline", type=_positive_int, default=DEFAULT_MIN_BASELINE,
        help="comparable records required before the gate arms "
             f"(default: {DEFAULT_MIN_BASELINE})",
    )
    bench_history.add_argument(
        "--match-host", action="store_true",
        help="only compare against records from this host (default: compare "
             "everywhere; wall_* metrics auto-skip cross-host)",
    )
    bench_history.add_argument(
        "--last", type=_positive_int, default=10,
        help="records to list per bench with 'show' (default: 10)",
    )
    bench_history.set_defaults(command="bench-history")
    return parser


def _run_single(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if not args.query:
        parser.error("--query is required (or use --list)")

    prepared = prepare_workload(args.query, rows=args.rows, seed=args.seed)
    k = args.k if args.k is not None else prepared.query.k
    config = HistSimConfig(
        k=k, epsilon=args.epsilon, delta=args.delta, sigma=args.sigma,
        stage1_samples=min(50_000, max(1, args.rows // 20)),
    )

    backend = make_backend(args.backend, args.workers, args.cpu_affinity)
    try:
        if args.approach == "scan":
            # The report IS the baseline; count it through the chosen
            # backend (byte-identical, exercises the sharded exact pass).
            scan = run_approach(prepared, "scan", config, seed=args.seed, backend=backend)
            report = scan
        else:
            scan = run_approach(prepared, "scan", config, seed=args.seed)
            report = run_approach(
                prepared, args.approach, config, seed=args.seed,
                backend=backend, kernel=args.kernel,
            )
    finally:
        backend.close()

    print(f"query      : {args.query}  (Z={prepared.query.candidate_attribute}, "
          f"X={prepared.query.grouping_attribute}, k={k})")
    print(f"approach   : {args.approach}")
    print(f"backend    : {report.backend}"
          + (f" ({args.workers or 'auto'} workers)"
             if report.backend in WORKER_BACKENDS else ""))
    print(f"rows       : {prepared.shuffled.num_rows:,} "
          f"({prepared.shuffled.num_blocks:,} blocks)")
    print(f"latency    : {report.elapsed_seconds * 1e3:.2f} ms simulated "
          f"({report.speedup_over(scan):.2f}x vs scan)")
    print(f"samples    : {report.result.stats.total_samples:,} "
          f"(stage-2 rounds: {report.result.stats.rounds}, "
          f"pruned: {report.result.stats.pruned_candidates})")
    if report.audit is not None:
        print(f"guarantees : separation={'OK' if report.audit.separation_ok else 'VIOLATED'} "
              f"reconstruction={'OK' if report.audit.reconstruction_ok else 'VIOLATED'} "
              f"delta_d={report.audit.delta_d:+.4f}")
    z_attr = prepared.shuffled.table.schema[prepared.query.candidate_attribute]
    matches = ", ".join(
        f"{z_attr.values[c]}({d:.3f})"
        for c, d in zip(report.result.matching, report.result.distances)
    )
    print(f"matches    : {matches}")

    if not args.no_render and report.result.k > 0:
        x_attr = prepared.shuffled.table.schema[prepared.query.grouping_attribute]
        print()
        print(
            render_result(
                report.result,
                prepared.target,
                candidate_labels=list(z_attr.values),
                group_labels=list(x_attr.values),
                max_candidates=2,
            )
        )
    return 0


def _run_batch(args: argparse.Namespace) -> int:
    # One MatchSession per dataset: a session owns one table, so queries are
    # grouped by the dataset they run against.
    by_dataset: dict[str, list[str]] = {}
    for query_name in args.queries:
        dataset_name, _ = workload_query(query_name)
        by_dataset.setdefault(dataset_name, []).append(query_name)

    total_queries = 0
    total_elapsed = 0.0
    for dataset_name, query_names in by_dataset.items():
        dataset = load_dataset(dataset_name, rows=args.rows, seed=args.seed)
        # One session (and thus one worker pool / shared-memory store for the
        # sharded backend) serves the dataset's whole batch.
        with MatchSession(
            dataset.table, backend=args.backend, workers=args.workers,
            kernel=args.kernel, cpu_affinity=args.cpu_affinity,
        ) as session:
            for query_name in query_names:
                _, query = workload_query(query_name)
                k = args.k if args.k is not None else query.k
                config = HistSimConfig(
                    k=k, epsilon=args.epsilon, delta=args.delta,
                    sigma=args.sigma,
                    stage1_samples=min(50_000, max(1, args.rows // 20)),
                )
                # Repeats share one seed so they hit the prepared-artifact cache
                # (one shuffle/index for the whole batch) — the point of --repeat.
                for repeat in range(args.repeat):
                    session.submit(
                        query,
                        approach=args.approach,
                        config=config,
                        seed=args.seed,
                        max_step_rows=args.max_step_rows,
                        name=f"{query_name}" + (f"#{repeat}" if args.repeat > 1 else ""),
                    )
            run = session.run()

        backend_desc = ", ".join(
            f"{key}={value}" for key, value in (run.backend or {}).items()
        )
        print(f"dataset    : {dataset_name}  ({dataset.table.num_rows:,} rows, "
              f"{len(run)} queries, approach={args.approach})")
        print(f"  backend    : {backend_desc or 'serial'}")
        for outcome in run:
            audit = outcome.report.audit
            guarantees = (
                "OK" if audit is not None and audit.ok else
                ("VIOLATED" if audit is not None else "n/a")
            )
            print(f"  {outcome.name:<14} latency={outcome.latency_seconds * 1e3:8.2f} ms  "
                  f"service={outcome.service_seconds * 1e3:7.2f} ms  "
                  f"steps={outcome.steps:<3d} "
                  f"samples={outcome.report.result.stats.total_samples:>9,}  "
                  f"guarantees={guarantees}")
        print(f"  throughput : {run.throughput_qps:,.1f} queries/simulated-second "
              f"({run.elapsed_seconds * 1e3:.2f} ms total)")
        print(f"  cache      : {session.cache_stats.summary()} "
              f"({session.cache_hits} hits)")
        total_queries += len(run)
        total_elapsed += run.elapsed_seconds

    if len(by_dataset) > 1 and total_elapsed > 0:
        print(f"overall    : {total_queries} queries, "
              f"{total_queries / total_elapsed:,.1f} queries/simulated-second")
    return 0


def _dataset_list(args: argparse.Namespace) -> list[str]:
    """The validated ``--datasets`` tenants (empty when the flag is unset)."""
    datasets = [d.strip() for d in (args.datasets or "").split(",") if d.strip()]
    known = set(dataset_builders())
    unknown = [d for d in datasets if d not in known]
    if unknown:
        raise SystemExit(
            f"unknown dataset(s) {unknown}; available: {sorted(known)}"
        )
    return datasets


def _serve_query_names(args: argparse.Namespace) -> list[str]:
    """The workload queries the serve command targets.

    ``--queries`` wins; otherwise ``--datasets`` implies every workload
    query of those datasets."""
    if args.queries:
        return list(args.queries)
    datasets = set(_dataset_list(args))
    return [name for name in QUERY_NAMES if workload_query(name)[0] in datasets]


def _load_trace(args: argparse.Namespace) -> list[tuple[float, str, QueryRequest]]:
    """Arrival events as ``(arrival_ns, dataset, request)``, arrival-sorted.

    Sourced from ``--trace`` (JSONL, open-loop timestamps) or synthesized
    from ``--queries``/``--datasets``/``--repeat`` (all arriving at time
    zero).  Every request is tagged with its dataset key so one registry
    front door routes it to the right tenant."""
    events: list[tuple[float, str, QueryRequest]] = []

    def request_for(query_name: str, *, deadline_ms, seed, approach,
                    on_deadline="partial", label=None) -> tuple[str, QueryRequest]:
        dataset_name, query = workload_query(query_name)
        k = args.k if args.k is not None else query.k
        config = HistSimConfig(
            k=k, epsilon=args.epsilon, delta=args.delta, sigma=args.sigma,
            stage1_samples=min(50_000, max(1, args.rows // 20)),
        )
        return dataset_name, QueryRequest(
            query,
            approach=approach,
            config=config,
            seed=seed,
            max_step_rows=args.max_step_rows,
            deadline_ns=None if deadline_ms is None else deadline_ms * 1e6,
            on_deadline=on_deadline,
            name=label or query_name,
            dataset=dataset_name,
        )

    if args.trace is not None:
        for line_no, line in enumerate(args.trace.read_text().splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                event = json.loads(line)
                query_name = event["query"]
            except (json.JSONDecodeError, KeyError) as exc:
                raise SystemExit(f"{args.trace}:{line_no}: bad trace event: {exc}")
            if query_name not in QUERY_NAMES:
                raise SystemExit(
                    f"{args.trace}:{line_no}: unknown query {query_name!r}"
                )
            try:
                dataset_name, request = request_for(
                    query_name,
                    deadline_ms=event.get("deadline_ms", args.deadline_ms),
                    seed=event.get("seed", args.seed),
                    approach=event.get("approach", args.approach),
                    on_deadline=event.get("on_deadline", "partial"),
                    label=f"{query_name}@{line_no}",
                )
            except ValueError as exc:
                raise SystemExit(f"{args.trace}:{line_no}: bad trace event: {exc}")
            events.append((event.get("arrival_ms", 0.0) * 1e6, dataset_name, request))
    else:
        for query_name in _serve_query_names(args):
            for repeat in range(args.repeat):
                dataset_name, request = request_for(
                    query_name,
                    deadline_ms=args.deadline_ms,
                    seed=args.seed,
                    approach=args.approach,
                    label=f"{query_name}" + (f"#{repeat}" if args.repeat > 1 else ""),
                )
                events.append((0.0, dataset_name, request))
    return sorted(events, key=lambda e: e[0])


def _drive_async(door, events) -> list:
    """Submit every request through the AsyncFrontDoor and await outcomes.

    Closed-loop with backpressure: arrivals are submitted in trace order,
    and while the admission queue is full the client first awaits its
    oldest outstanding request — so a bounded ``--max-queue`` throttles
    instead of shedding everything beyond the bound (the open-loop timing
    study is :meth:`FrontDoor.replay`).
    """
    import asyncio

    async def drive():
        outcomes: list = [None] * len(events)
        admission = door.admission
        async with door:
            handles: list[tuple[int, object]] = []
            waiting = 0
            for index, (_, _, request) in enumerate(events):
                # Backpressure: while the queue is full, await the oldest
                # outstanding request (capacity reads are race-free in one
                # event loop), so nothing is submitted into a rejection.
                while (
                    admission.max_queue is not None
                    and admission.in_flight >= admission.max_queue
                    and waiting < len(handles)
                ):
                    await handles[waiting][1].outcome()
                    waiting += 1
                handles.append((index, await door.submit(request)))
            for index, handle in handles:
                outcomes[index] = await handle.outcome()
        return outcomes

    return asyncio.run(drive())


def _run_serve(args: argparse.Namespace) -> int:
    events = _load_trace(args)
    if not events:
        raise SystemExit("nothing to serve: no queries matched")

    # --trace-out turns tracing on: one tracer collects spans from every
    # layer (engine, stepper, backend) and streams them to the JSONL file.
    tracer = None
    writer = None
    if args.trace_out is not None:
        tracer = Tracer()
        writer = TraceWriter(args.trace_out)
        tracer.subscribe(writer)

    # One registry serves every dataset in play behind a single front door:
    # one shared clock, one backend (worker pool), requests routed by key.
    # --datasets tenants are pre-loaded even when --queries/--trace name
    # only a subset (the flag promises the tenants exist behind the door).
    registry = SessionRegistry(
        backend=args.backend, workers=args.workers, kernel=args.kernel,
        cpu_affinity=args.cpu_affinity, tracer=tracer,
    )
    dataset_rows: dict[str, int] = {}
    tenants = dict.fromkeys(
        _dataset_list(args) + [name for _, name, _ in events]
    )
    for dataset_name in tenants:
        dataset = load_dataset(dataset_name, rows=args.rows, seed=args.seed)
        registry.add_dataset(dataset_name, dataset.table)
        dataset_rows[dataset_name] = dataset.table.num_rows

    # --stats-out starts the read-only StatsExporter over the live door:
    # queue/latency/health frames land in a JSON file `repro top` tails.
    exporter = None
    try:
        if args.use_async:
            door = registry.serve_async(
                policy=args.policy,
                max_queue=args.max_queue,
                max_concurrent_steps=args.max_concurrent_steps,
            )
            if args.stats_out is not None:
                exporter = StatsExporter(
                    door, args.stats_out, interval_s=args.stats_interval
                ).start()
            outcomes = _drive_async(door, events)
            mode = "async (closed-loop)"
            if args.max_concurrent_steps > 1:
                mode += f", {args.max_concurrent_steps} step slots"
        else:
            if args.max_concurrent_steps > 1:
                print(
                    "warning: --max-concurrent-steps is ignored in replay mode "
                    "(the open-loop trace is deterministic single-slot); "
                    "use --async for concurrent steps",
                    file=sys.stderr,
                )
            door = registry.serve(policy=args.policy, max_queue=args.max_queue)
            if args.stats_out is not None:
                exporter = StatsExporter(
                    door, args.stats_out, interval_s=args.stats_interval
                ).start()
            try:
                outcomes = door.replay(
                    [(arrival_ns, request) for arrival_ns, _, request in events]
                )
            finally:
                door.shutdown()
            mode = "replay (open-loop)"
    finally:
        if exporter is not None:
            exporter.stop()
        if writer is not None:
            writer.close()

    print(f"tenants    : {', '.join(f'{name} ({rows:,} rows)' for name, rows in dataset_rows.items())}")
    print(f"mode       : {mode}, policy={args.policy}, "
          f"max_queue={args.max_queue or 'unbounded'}, "
          f"{len(events)} requests")
    for (_, dataset_name, _), outcome in zip(events, outcomes):
        extra = ""
        if outcome.status == "partial" and outcome.report is not None:
            extra = (f"  achieved_eps={outcome.report.achieved_epsilon:.3f}"
                     f" (asked {args.epsilon})")
        elif outcome.status == "completed" and outcome.deadline_ns is not None:
            extra = "  deadline=hit" if outcome.deadline_hit else "  deadline=late"
        print(f"  {outcome.name:<16} [{dataset_name:<7}] {outcome.status:<9} "
              f"latency={outcome.latency_seconds * 1e3:8.2f} ms  "
              f"steps={outcome.steps:<3d}{extra}")
    snap = door.metrics.snapshot()
    print(f"  served     : {snap.completed} completed, {snap.partial} partial, "
          f"{snap.missed} missed, {snap.shed} shed")
    print(f"  latency    : p50={snap.p50_latency_ms:.2f} "
          f"p95={snap.p95_latency_ms:.2f} p99={snap.p99_latency_ms:.2f} ms")
    print(f"  deadlines  : hit rate "
          f"{snap.deadline_hit_rate * 100:.1f}% "
          f"({door.metrics.deadline_hits}/{door.metrics.deadline_requests})")
    for dataset_name in dataset_rows:
        session = registry.session(dataset_name)
        print(f"  cache      : [{dataset_name}] {session.cache_stats.summary()} "
              f"({session.cache_hits} hits)")
    if writer is not None:
        print(f"  trace      : {writer.written} records -> {args.trace_out} "
              "(inspect: repro trace summarize)")
    if exporter is not None:
        print(f"  stats      : {exporter.frames} frames -> {args.stats_out} "
              f"(watch: repro top {args.stats_out})")
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    """``repro trace summarize FILE`` — the per-stage time-budget table."""
    if not args.file.exists():
        print(f"trace file not found: {args.file}", file=sys.stderr)
        return 1
    try:
        records = TraceReader(args.file).records()
    except TraceSchemaError as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    summary = summarize_records(records)
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"trace      : {args.file}  ({summary.spans} spans, "
          f"{summary.events} events, {summary.requests} requests)")
    print(summary.format_table())
    if summary.requests:
        print(f"end-to-end : {summary.total_latency_ns / 1e6:.2f} ms total latency, "
              f"max queue+step tiling drift {summary.max_drift_ns:.0f} ns")
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    """``repro profile QUERY`` — hot-path profile of one workload run."""
    dataset_name, query = workload_query(args.query)
    dataset = load_dataset(dataset_name, rows=args.rows, seed=args.seed)
    k = args.k if args.k is not None else query.k
    config = HistSimConfig(
        k=k, epsilon=args.epsilon, delta=args.delta, sigma=args.sigma,
        stage1_samples=min(50_000, max(1, args.rows // 20)),
    )
    profiler = Profiler()
    tracer = Tracer()
    wall = WallProfiler(args.wall_interval_ms * 1e-3) if args.wall else None
    with MatchSession(
        dataset.table, backend=args.backend, workers=args.workers,
        kernel=args.kernel, cpu_affinity=args.cpu_affinity,
        profiler=profiler, tracer=tracer,
    ) as session:
        if wall is not None:
            wall.start()
        try:
            outcome = session.match(
                query, approach=args.approach, config=config, seed=args.seed
            )
        finally:
            if wall is not None:
                wall.stop()
    report = outcome.report
    profile = report.profile or {}

    # The profile's per-stage durations and the stepper's trace spans share
    # the same clock endpoints, so their per-stage sums agree exactly —
    # printing both makes the reconciliation visible (drift should be 0).
    trace_stage_ns: dict[str, float] = {}
    for span in tracer.spans:
        if span.name.startswith("stepper."):
            stage = span.name[len("stepper."):]
            trace_stage_ns[stage] = (
                trace_stage_ns.get(stage, 0.0) + span.duration_ns
            )

    if args.json:
        payload = {
            "query": args.query,
            "approach": args.approach,
            "backend": report.backend,
            "kernel": args.kernel,
            "rows": dataset.table.num_rows,
            "elapsed_ns": report.elapsed_ns,
            "steps": outcome.steps,
            "profile": profile,
            "trace_stage_ns": trace_stage_ns,
        }
        if wall is not None:
            payload["wall"] = {"samples": wall.samples, "stacks": wall.collapsed()}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(f"query      : {args.query}  (approach={args.approach}, "
          f"backend={report.backend}, kernel={args.kernel}, "
          f"rows={dataset.table.num_rows:,})")
    print(f"latency    : {report.elapsed_seconds * 1e3:.2f} ms simulated, "
          f"{outcome.steps} steps")
    stages = profile.get("stages", {})
    if stages:
        print()
        print(f"{'stage':<10} {'steps':>6} {'rows':>12} {'profile ms':>11} "
              f"{'trace ms':>11} {'drift ns':>9}")
        for stage, stats in stages.items():
            trace_ns = trace_stage_ns.get(stage)
            trace_ms = "-" if trace_ns is None else f"{trace_ns * 1e-6:.3f}"
            drift = 0.0 if trace_ns is None else stats["ns"] - trace_ns
            print(f"{stage:<10} {stats['steps']:>6} {stats['rows']:>12,} "
                  f"{stats['ns'] * 1e-6:>11.3f} {trace_ms:>11} {drift:>9.0f}")
    if profile.get("kernels"):
        print()
        print(ProfileSnapshot(**profile).format_table())
    totals = profile.get("totals", {})
    if totals:
        print()
        print(f"totals     : {totals.get('rows_gathered', 0):,} rows gathered, "
              f"{totals.get('blocks_touched', 0):,} blocks, "
              f"{totals.get('bytes_moved', 0) / 2**20:.2f} MiB moved, "
              f"{totals.get('bincount_calls', 0)} bincounts, "
              f"{totals.get('kernel_ns', 0.0) * 1e-6:.3f} ms in kernels")
    if wall is not None:
        print()
        print(f"wall stacks: {wall.samples} samples @ "
              f"{args.wall_interval_ms:g} ms (collapsed, flamegraph-ready)")
        print(wall.format_collapsed(top=args.top) or "  (no samples landed)")
    return 0


def _render_top_frame(frame: dict, path: Path) -> str:
    """One ``repro top`` screen from a StatsExporter frame dict."""
    queue = frame.get("queue", {})
    shm = frame.get("shm", {})
    serving = frame.get("serving", {})
    health = frame.get("health", {})
    max_queue = queue.get("max_queue")
    lines = [
        f"repro top — {path}  (frame {frame.get('frame', 0)})",
        "",
        f"queue      : {queue.get('in_flight', 0)} in flight "
        f"(bound {max_queue if max_queue is not None else 'unbounded'}), "
        f"{queue.get('pending', 0)} pending, "
        f"{queue.get('stepping', 0)}/{queue.get('step_slots', 1)} step slots",
        f"shm        : {shm.get('bytes', 0) / 2**20:.2f} MiB in "
        f"{shm.get('segments', 0)} segments",
        f"served     : {serving.get('requests', 0)} requests — "
        f"{serving.get('completed', 0)} completed, "
        f"{serving.get('partial', 0)} partial, "
        f"{serving.get('missed', 0)} missed, {serving.get('shed', 0)} shed",
        f"latency    : p50={serving.get('p50_latency_ms', 0.0):.2f} "
        f"p95={serving.get('p95_latency_ms', 0.0):.2f} "
        f"p99={serving.get('p99_latency_ms', 0.0):.2f} ms  "
        f"deadline hit rate {serving.get('deadline_hit_rate', 1.0) * 100:.1f}%",
    ]
    merged = serving.get("all_tenants")
    if merged:
        lines.append(
            f"all tenants: {merged.get('requests', 0)} requests, merged "
            f"p50={merged.get('p50_latency_ms', 0.0):.2f} "
            f"p99={merged.get('p99_latency_ms', 0.0):.2f} ms"
        )
    tenants = serving.get("per_tenant") or {}
    for tenant, stats in sorted(tenants.items()):
        line = (f"  [{tenant:<8}] completed={stats.get('completed', 0):<4} "
                f"p50={stats.get('p50_latency_ms', 0.0):8.2f} ms")
        calibration = stats.get("calibration_ratio", 0.0)
        if calibration:
            line += f"  calibration={calibration:.3f}"
        lines.append(line)
    status = health.get("status", "unknown")
    lines.append(f"health     : {status.upper()}")
    for reason in health.get("reasons", []):
        lines.append(f"  ! {reason}")
    return "\n".join(lines)


def _run_top(args: argparse.Namespace) -> int:
    """``repro top FILE`` — live dashboard over serve's --stats-out frames."""
    import time as _time

    last_frame = -1
    try:
        while True:
            if not args.file.exists():
                if args.once:
                    print(f"stats file not found: {args.file} "
                          "(is 'repro serve --stats-out' running?)",
                          file=sys.stderr)
                    return 1
                print(f"waiting for {args.file} ...", file=sys.stderr)
                _time.sleep(args.interval)
                continue
            try:
                frame = json.loads(args.file.read_text())
            except json.JSONDecodeError:
                # Torn read can't happen (atomic rename) but an unrelated
                # file here shouldn't crash the dashboard loop.
                if args.once:
                    print(f"not a stats frame: {args.file}", file=sys.stderr)
                    return 1
                _time.sleep(args.interval)
                continue
            if args.once:
                print(_render_top_frame(frame, args.file))
                return 0
            if frame.get("frame", 0) != last_frame:
                last_frame = frame.get("frame", 0)
                sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home cursor
                print(_render_top_frame(frame, args.file))
                sys.stdout.flush()
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def _load_baseline(path: Path) -> list[BenchRecord]:
    """Records of a committed baseline JSONL file (CI's perf gate input)."""
    if not path.exists():
        raise SystemExit(f"baseline file not found: {path}")
    records = []
    for line_no, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            records.append(BenchRecord.from_json(line))
        except (json.JSONDecodeError, ValueError) as exc:
            raise SystemExit(f"{path}:{line_no}: bad baseline record: {exc}")
    return records


def _run_bench_history(args: argparse.Namespace) -> int:
    """``repro bench-history {record,check,show}`` — the perf history store."""
    history_dir = (
        args.history_dir if args.history_dir is not None
        else args.results_dir / "history"
    )
    history = BenchHistory(history_dir)
    benches = [args.bench] if args.bench else sorted(NORMALIZERS)

    if args.action == "record":
        recorded = 0
        for bench in benches:
            results_file = args.results_dir / f"{bench}.json"
            if not results_file.exists():
                print(f"{bench}: no results at {results_file} (skipped)")
                continue
            record = NORMALIZERS[bench](
                json.loads(results_file.read_text()), note=args.note
            )
            path = history.append(record)
            recorded += 1
            print(f"{bench}: recorded {len(record.metrics)} metrics "
                  f"(config {record.config_hash}) -> {path}")
        if not recorded:
            print("nothing recorded: no results files found", file=sys.stderr)
            return 1
        return 0

    if args.action == "check":
        baseline = (
            _load_baseline(args.baseline) if args.baseline is not None else None
        )
        failed = False
        checked = 0
        for bench in benches:
            records = history.records(bench)
            if not records:
                continue
            newest = records[-1]
            if baseline is not None:
                prior = [r for r in baseline if r.bench == bench]
            else:
                prior = records[:-1]
            report = check_regression(
                newest, prior,
                k=args.k,
                tolerance=args.tolerance,
                min_baseline=args.min_baseline,
                match_host=args.match_host,
            )
            checked += 1
            print(report.describe())
            failed = failed or not report.ok
        if not checked:
            print(f"no history to check under {history_dir} "
                  "(run 'repro bench-history record' first)", file=sys.stderr)
            return 1
        return 1 if failed else 0

    # show
    shown = 0
    for bench in history.benches():
        if args.bench and bench != args.bench:
            continue
        records = history.records(bench)
        print(f"{bench}: {len(records)} records ({history.path_for(bench)})")
        for index, record in enumerate(records[-args.last:],
                                       max(0, len(records) - args.last) + 1):
            preview = ", ".join(
                f"{name}={value:.4g}"
                for name, value in sorted(record.metrics.items())[:4]
            )
            more = len(record.metrics) - 4
            if more > 0:
                preview += f", +{more} more"
            note = f"  ({record.note})" if record.note else ""
            print(f"  #{index:<3} config={record.config_hash} "
                  f"host={record.host_key}  {preview}{note}")
        shown += 1
    if not shown:
        print(f"no history under {history_dir}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.backend, args.workers, args.cpu_affinity = resolve_backend_args(args)

    command = getattr(args, "command", None)
    if command == "batch":
        return _run_batch(args)
    if command == "trace":
        return _run_trace(args)
    if command == "profile":
        return _run_profile(args)
    if command == "top":
        return _run_top(args)
    if command == "bench-history":
        return _run_bench_history(args)
    if command == "serve":
        if args.trace is None and not args.queries and not args.datasets:
            parser.error("serve requires --queries, --datasets, or --trace")
        if args.deadline_ms is not None and args.deadline_ms <= 0:
            parser.error("--deadline-ms must be positive")
        return _run_serve(args)

    if args.list:
        print("available queries:")
        for name in QUERY_NAMES:
            print(f"  {name}")
        return 0
    return _run_single(args, parser)


if __name__ == "__main__":
    sys.exit(main())
