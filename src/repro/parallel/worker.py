"""Worker-side execution: count one shard's ``(candidate, group)`` pairs.

The counting kernel is a pure function shared by three callers — pool
workers (over shared-memory views), the sharded backend's small-window
fallback (over the coordinator's own columns), and tests — so there is
exactly one implementation of the arithmetic whose exactness the
byte-identity guarantee rests on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..storage.blocks import BlockLayout
from .kernels import count_window
from .shm import SegmentRef, attach_segment

__all__ = ["ShardTask", "ShardResult", "count_shard", "worker_loop"]


@dataclass(frozen=True)
class ShardTask:
    """One shard's counting assignment, as shipped over the task queue.

    Column payloads travel as :class:`SegmentRef`\\ s (names, not data); the
    only arrays pickled per task are the shard's block list and, for
    one-shot exact passes, ``filter_values`` — the row filter *sliced to the
    shard's rows* (shipping a slice beats publishing a throwaway full-table
    mask to shared memory, where worker attachment caches would pin it).
    """

    task_id: int
    blocks: np.ndarray
    z_ref: SegmentRef
    x_ref: SegmentRef
    filter_ref: SegmentRef | None
    block_size: int
    num_rows: int
    num_candidates: int
    num_groups: int
    filter_values: np.ndarray | None = None
    #: Attachment-GC watermark (:meth:`SharedMemoryStore.gc_state`): when a
    #: worker sees an epoch newer than its cached one, it closes every
    #: cached attachment whose segment name is not in ``live_segments``,
    #: releasing pages the coordinator unlinked on cache eviction.
    gc_epoch: int = 0
    live_segments: tuple[str, ...] | None = None
    #: Prepared pair-code column (published to shared memory) enabling the
    #: fused kernel; ``None`` when the session has not prepared one.
    codes_ref: SegmentRef | None = None
    #: Kernel spec forwarded to :func:`~repro.parallel.kernels.count_window`.
    kernel: str = "auto"


@dataclass(frozen=True)
class ShardResult:
    """One shard's merged-ready output: exact counts plus a rows tally.

    ``cached_attachments`` reports how many shared-memory attachments the
    worker held *after* this task (post-GC) — observability for the
    segment-forgetting tests; merging ignores it.
    """

    task_id: int
    counts: np.ndarray
    rows: int
    cached_attachments: int = 0
    #: Worker-side execution time of this shard (``perf_counter_ns`` delta,
    #: attach + gather + count; queue time excluded).  Observability only —
    #: merging ignores it; the sharded backend folds it into its
    #: ``backend.window`` span attributes.
    elapsed_ns: float = 0.0
    #: Bytes the counting kernel materialized for this shard (see
    #: :func:`~repro.parallel.kernels.count_window`).  Observability only;
    #: the coordinator sums it into the profiler's ``nbytes``.
    moved_bytes: int = 0


def count_shard(
    z: np.ndarray,
    x: np.ndarray,
    blocks: np.ndarray,
    layout: BlockLayout,
    num_candidates: int,
    num_groups: int,
    row_filter: np.ndarray | None = None,
    filter_slice: np.ndarray | None = None,
    codes: np.ndarray | None = None,
    kernel: str = "auto",
) -> np.ndarray:
    """Count ``(z, x)`` pairs of the rows covered by ``blocks``.

    Identical arithmetic to the serial engine's delivery path — a thin
    wrapper over :func:`~repro.parallel.kernels.count_window` that keeps the
    historical signature for pool workers and tests.

    The filter comes either as ``row_filter`` (a full-table mask indexed by
    the gathered rows) or ``filter_slice`` (a mask already aligned to the
    shard's rows in block order) — mutually exclusive, same arithmetic.
    """
    return count_window(
        z,
        x,
        blocks,
        layout,
        num_candidates,
        num_groups,
        row_filter=row_filter,
        filter_slice=filter_slice,
        codes=codes,
        kernel=kernel,
    )[0]


def _gc_attachments(task: ShardTask, attachments: dict, state: dict) -> None:
    """Epoch-based attachment forgetting (worker-side segment GC).

    The coordinator bumps the store epoch on every unpublish and stamps
    each task with the epoch plus the then-live segment names.  A worker
    seeing a newer epoch closes every cached attachment that is no longer
    live, so pages of evicted cache entries are released while the pool
    keeps running.  Epochs only move forward; an out-of-order older task
    (pulled late from the shared queue) cannot resurrect anything — its
    stale refs would re-attach and fail, and the coordinator never
    dispatches refs it has unlinked.
    """
    if task.live_segments is None or task.gc_epoch <= state.get("epoch", 0):
        return
    state["epoch"] = task.gc_epoch
    live = set(task.live_segments)
    for name in [name for name in attachments if name not in live]:
        entry = attachments.pop(name)
        shm = entry[0]
        # Drop the NumPy view before closing: mmap.close() raises
        # BufferError while exported buffers exist, which would silently
        # keep the evicted pages pinned.
        del entry
        try:
            shm.close()
        except Exception:
            pass


def _run_task(task: ShardTask, attachments: dict, shared_tracker: bool) -> ShardResult:
    """Execute one task against cached shared-memory attachments."""
    started = time.perf_counter_ns()

    def view(ref: SegmentRef) -> np.ndarray:
        if ref.name not in attachments:
            attachments[ref.name] = attach_segment(ref, shared_tracker)
        return attachments[ref.name][1]

    layout = BlockLayout(task.num_rows, task.block_size)
    row_filter = view(task.filter_ref) if task.filter_ref is not None else None
    codes = view(task.codes_ref) if task.codes_ref is not None else None
    counts, moved = count_window(
        view(task.z_ref),
        view(task.x_ref),
        task.blocks,
        layout,
        task.num_candidates,
        task.num_groups,
        row_filter=row_filter,
        filter_slice=task.filter_values,
        codes=codes,
        kernel=task.kernel,
    )
    return ShardResult(
        task_id=task.task_id,
        counts=counts,
        rows=int(counts.sum()),
        cached_attachments=len(attachments),
        elapsed_ns=float(time.perf_counter_ns() - started),
        moved_bytes=moved,
    )


def worker_loop(task_queue, result_queue, shared_tracker: bool = False) -> None:
    """Entry point of one pool worker process.

    Pulls :class:`ShardTask`\\ s until the ``None`` sentinel, caching
    shared-memory attachments across tasks (attach once per dataset, not per
    window) and *forgetting* attachments to segments the coordinator has
    since unpublished (epoch GC — see :func:`_gc_attachments`), so cache
    eviction actually frees memory while the pool lives.  Failures are
    reported per-task as ``(task_id, None, error)`` so the coordinator can
    raise with context instead of hanging.  ``shared_tracker`` reflects the
    pool's start method (see :func:`~repro.parallel.shm.attach_segment`).
    """
    attachments: dict = {}
    gc_state: dict = {}
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            try:
                _gc_attachments(task, attachments, gc_state)
                result = _run_task(task, attachments, shared_tracker)
                result_queue.put((task.task_id, result, None))
            except Exception as exc:  # pragma: no cover - exercised via pool tests
                result_queue.put((task.task_id, None, f"{type(exc).__name__}: {exc}"))
    finally:
        for shm, _ in attachments.values():
            try:
                shm.close()
            except Exception:
                pass
