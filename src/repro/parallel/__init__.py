"""Sharded parallel execution backends (scaling beyond one core).

The paper's FastMatch overlaps block selection with I/O on a single core;
this package scales the other axis — the per-window counting work — across
worker processes.  The design preserves the serial path's exact semantics:

- the *coordinator* (the sampling engine driving HistSim) keeps the serial
  control flow: one scan order, one window sequence, one set of policy
  decisions and budgets;
- only the counting of each window's delivered blocks is sharded: a
  :class:`ShardPlanner` partitions the blocks into per-worker shards, a
  persistent :class:`WorkerPool` counts each shard against columns published
  in :class:`multiprocessing.shared_memory` (zero-copy for workers), and a
  :class:`ShardMerger` sums the per-shard count matrices.

Because the shards partition the *same* rows the serial path would count,
and integer addition is exact and commutative, the merged
``(candidate × group)`` counts are byte-identical to serial execution — so
every downstream statistical decision (stage-2 tests, stage-3 targets, the
chosen top-k, the stopping round) is identical too.  Per-shard samples also
remain uniform without replacement: a shard is a fixed subset of blocks of
the *shuffled* layout, and any fixed subset of a random permutation is a
uniform without-replacement sample.

:class:`ExecutionBackend` is the seam all sampling routes through;
:class:`SerialBackend` reproduces today's single-process behaviour exactly,
:class:`ShardedBackend` is the opt-in multi-process implementation,
:class:`ThreadPoolBackend` the in-process multi-threaded one (GIL-releasing
bincount kernels; no fork, no shared memory), and :func:`make_backend`
resolves a CLI/config spec into an instance.
"""

from .affinity import AFFINITY_POLICIES, apply_affinity, available_cpus, plan_affinity
from .backend import CountSource, ExecutionBackend, SerialBackend, count_pairs
from .kernels import (
    KERNEL_SPECS,
    KERNELS,
    build_pair_codes,
    count_window,
    pair_code_dtype,
    resolve_kernel,
)
from .merge import ShardMerger
from .pool import WorkerPool
from .shard import Shard, ShardPlanner
from .sharded import ShardedBackend
from .shm import SegmentRef, SharedMemoryStore, attach_segment
from .threaded import ThreadPoolBackend
from .worker import ShardResult, ShardTask, count_shard

__all__ = [
    "AFFINITY_POLICIES",
    "BACKENDS",
    "KERNELS",
    "KERNEL_SPECS",
    "WORKER_BACKENDS",
    "CountSource",
    "ExecutionBackend",
    "SegmentRef",
    "SerialBackend",
    "Shard",
    "ShardMerger",
    "ShardPlanner",
    "ShardResult",
    "ShardTask",
    "ShardedBackend",
    "SharedMemoryStore",
    "ThreadPoolBackend",
    "WorkerPool",
    "apply_affinity",
    "attach_segment",
    "available_cpus",
    "build_pair_codes",
    "count_pairs",
    "count_shard",
    "count_window",
    "make_backend",
    "pair_code_dtype",
    "plan_affinity",
    "resolve_kernel",
]

#: Backend names accepted by the CLI and :class:`~repro.system.MatchSession`.
BACKENDS = ("serial", "sharded", "threads")

#: The backends for which ``workers`` is meaningful (serial takes none).
WORKER_BACKENDS = ("sharded", "threads")


def make_backend(
    spec: str | ExecutionBackend = "serial",
    workers: int | None = None,
    cpu_affinity: str | None = None,
) -> ExecutionBackend:
    """Resolve a backend spec (``"serial"``, ``"sharded"``, ``"threads"``,
    or an existing instance) into an :class:`ExecutionBackend`.

    ``workers`` and ``cpu_affinity`` apply to the worker-carrying backends
    only (workers default to the machine's CPU count; affinity defaults to
    no pinning); passing either alongside an existing instance is an error
    since the instance already fixed its pool configuration.
    """
    if cpu_affinity == "none":
        cpu_affinity = None
    if isinstance(spec, ExecutionBackend):
        if workers is not None:
            raise ValueError("workers cannot be overridden on an existing backend")
        if cpu_affinity is not None:
            raise ValueError("cpu_affinity cannot be overridden on an existing backend")
        return spec
    if spec == "serial":
        if workers is not None:
            raise ValueError("the serial backend takes no workers")
        if cpu_affinity is not None:
            raise ValueError("the serial backend takes no cpu_affinity")
        return SerialBackend()
    if spec == "sharded":
        return ShardedBackend(workers, cpu_affinity=cpu_affinity)
    if spec == "threads":
        return ThreadPoolBackend(workers, cpu_affinity=cpu_affinity)
    raise ValueError(f"backend must be one of {BACKENDS}, got {spec!r}")
