"""The sharded execution backend: plan → publish → fan out → merge.

The coordinator's control flow (scan order, windows, policies, budgets,
statistical tests) is untouched; :meth:`ShardedBackend.count_blocks`
replaces only the counting of a window's delivered blocks:

1. :class:`~repro.parallel.shard.ShardPlanner` splits the window's blocks
   into row-balanced contiguous shards, one per worker;
2. the dataset's columns (and the query's row filter) are published to
   shared memory once per session via
   :class:`~repro.parallel.shm.SharedMemoryStore` — workers attach
   zero-copy;
3. the persistent :class:`~repro.parallel.pool.WorkerPool` counts each
   shard;
4. :class:`~repro.parallel.merge.ShardMerger` sums the per-shard matrices
   into exactly the fresh-count state the serial path would have produced.

Small windows (common in stage 1's budget-trimmed reads and late stage-2
rounds) fall below ``min_shard_rows`` and are counted inline — process
round-trips would cost more than they save.  The fallback uses the same
kernel as the workers, so the short-circuit cannot change results.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from ..storage.blocks import BlockLayout
from .backend import CountSource, ExecutionBackend
from .kernels import count_window
from .merge import ShardMerger
from .pool import WorkerPool
from .shard import ShardPlanner
from .shm import SharedMemoryStore
from .worker import ShardTask

__all__ = ["ShardedBackend"]

#: Below this many rows per average shard, inline counting beats the pool.
DEFAULT_MIN_SHARD_ROWS = 8192

#: Synthetic block size used to shard whole-table exact-counting passes
#: (Scan baseline, ground truth).  Any value partitions the rows exactly;
#: this one keeps per-shard task payloads small while giving the planner
#: enough blocks to balance.
EXACT_PASS_BLOCK_ROWS = 8192


class ShardedBackend(ExecutionBackend):
    """Shared-memory multi-process counting behind the backend seam.

    Parameters
    ----------
    n_workers:
        Worker processes (default: the machine's CPU count).  The pool is
        spawned lazily on the first window large enough to shard, then
        reused for every subsequent window and query.
    min_shard_rows:
        Minimum average rows per shard worth a round-trip to the pool;
        windows below ``n_workers * min_shard_rows`` rows are counted
        inline with the identical kernel.  Set to 0 to force every window
        through the pool — even single-shard ones, so a one-worker pool's
        IPC overhead is really measured (used by the equivalence tests and
        the benchmark's ``--tiny`` mode).
    start_method:
        Worker start method (default: ``fork`` where available).
    cpu_affinity:
        Optional worker-placement policy (``"spread"`` / ``"compact"``, see
        :mod:`~repro.parallel.affinity`) forwarded to the worker pool: each
        worker process is pinned to one CPU after spawn.  Best-effort — a
        no-op on platforms without :func:`os.sched_setaffinity`.
    """

    name = "sharded"

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        min_shard_rows: int = DEFAULT_MIN_SHARD_ROWS,
        start_method: str | None = None,
        cpu_affinity: str | None = None,
    ) -> None:
        resolved = n_workers if n_workers is not None else (os.cpu_count() or 1)
        if resolved < 1:
            raise ValueError(f"n_workers must be >= 1, got {resolved}")
        if min_shard_rows < 0:
            raise ValueError(f"min_shard_rows must be >= 0, got {min_shard_rows}")
        self.n_workers = resolved
        self.min_shard_rows = min_shard_rows
        self.start_method = start_method
        self.cpu_affinity = cpu_affinity
        self.planner = ShardPlanner(resolved)
        self.store = SharedMemoryStore()
        self.shard_tasks = 0
        self.inline_windows = 0
        # Serializes dispatch bookkeeping (pool creation, publishing, task-id
        # allocation) under concurrent steps; the pool.run fan-out itself
        # runs outside the lock so concurrent windows overlap on the pool.
        self._dispatch_lock = threading.Lock()
        self._pool: WorkerPool | None = None
        # Tables whose columns were published, pinned by identity: segment
        # cache keys use id(table), so the object must outlive the cache
        # entry (a recycled id would silently serve another dataset's data).
        self._pinned_tables: dict[int, object] = {}
        self.closed = False

    # ------------------------------------------------------------------ pool

    @property
    def pool(self) -> WorkerPool:
        """The persistent worker pool, spawned on first use.

        A pool that closed itself (worker death fails the in-flight window
        and poisons the pool so stale results can't leak) is replaced by a
        fresh one here, so the backend recovers for subsequent queries
        instead of failing every later window against a dead pool.
        """
        with self._dispatch_lock:
            if self.closed:
                raise RuntimeError("ShardedBackend is closed")
            if self._pool is not None and self._pool.closed:
                self._pool = None
            if self._pool is None:
                self._pool = WorkerPool(
                    self.n_workers,
                    start_method=self.start_method,
                    cpu_affinity=self.cpu_affinity,
                )
                self._pool.tracer = self.tracer
            return self._pool

    def set_tracer(self, tracer) -> None:
        """Attach a tracer to the backend, its pool, and its shm store.

        The store reports publish/unpublish/close through the tracer's
        event callback; an already-running pool picks the tracer up too.
        """
        super().set_tracer(tracer)
        with self._dispatch_lock:
            if self._pool is not None:
                self._pool.tracer = self.tracer
            self.store.on_event = (
                self.tracer.callback() if self.tracer.enabled else None
            )

    # ------------------------------------------------------------- publishing

    def _refs(self, source: CountSource):
        """Segment refs for the source's columns, publishing on first use.

        Keyed by table/filter identity: every engine of a session shares the
        cached shuffled table objects, so each dataset column crosses into
        shared memory exactly once no matter how many queries run.  Keyed
        objects are pinned while published (the store pins filter arrays;
        tables are pinned here), so an id can never be recycled while its
        cache entry lives.  Eviction happens through :meth:`unpublish`
        (driven by the session layer's LRU): segments are unlinked
        immediately and pool workers drop their cached attachments via the
        epoch GC watermark shipped with every task.
        """
        table = source.shuffled.table
        self._pinned_tables[id(table)] = table
        z_ref = self.store.publish(
            ("column", id(table), source.z_name), table.column(source.z_name)
        )
        x_ref = self.store.publish(
            ("column", id(table), source.x_name), table.column(source.x_name)
        )
        filter_ref = None
        if source.row_filter is not None:
            filter_ref = self.store.publish(
                ("filter", id(source.row_filter)), source.row_filter
            )
        codes_ref = None
        if source.codes is not None:
            codes_ref = self.store.publish(
                ("codes", id(source.codes)), source.codes
            )
        return z_ref, x_ref, filter_ref, codes_ref

    # --------------------------------------------------------------- counting

    def count_blocks(
        self, source: CountSource, blocks: np.ndarray
    ) -> tuple[np.ndarray, float]:
        cost = source.io.read_cost(blocks)
        layout = source.shuffled.layout
        total_rows = int(layout.rows_per_block(blocks).sum())
        if total_rows < max(1, self.n_workers * self.min_shard_rows):
            # Inline fallback: same kernel, same rows, no pool round-trip
            # (and no shard planning — the plan would be discarded).
            with self._dispatch_lock:
                self.inline_windows += 1
            if self.tracer.enabled:
                self.tracer.event(
                    "backend.inline", backend=self.name, rows=total_rows
                )
            profiler = source.profiler
            started = time.perf_counter_ns() if profiler.enabled else 0
            counts, moved = count_window(
                source.shuffled.table.column(source.z_name),
                source.shuffled.table.column(source.x_name),
                blocks,
                layout,
                source.num_candidates,
                source.num_groups,
                row_filter=source.row_filter,
                codes=source.codes,
                kernel=source.kernel,
            )
            if profiler.enabled:
                profiler.record_kernel(
                    "sharded.inline",
                    float(time.perf_counter_ns() - started),
                    rows=int(counts.sum()),
                    blocks=int(blocks.size),
                    nbytes=moved,
                    bincounts=1,
                )
            return counts, cost
        shards = self.planner.plan(blocks, layout)
        pool = self.pool
        with self._dispatch_lock:
            z_ref, x_ref, filter_ref, codes_ref = self._refs(source)
            # Task ids are globally unique across the backend's lifetime
            # (allocated under the dispatch lock), so neither an earlier
            # failed window's stragglers nor a concurrently-running window
            # of another tenant can be mistaken for this window's shards.
            base_id = self.shard_tasks
            gc_epoch, live_segments = self.store.gc_state()
            tasks = [
                ShardTask(
                    task_id=base_id + shard.index,
                    blocks=shard.blocks,
                    z_ref=z_ref,
                    x_ref=x_ref,
                    filter_ref=filter_ref,
                    block_size=layout.block_size,
                    num_rows=layout.num_rows,
                    num_candidates=source.num_candidates,
                    num_groups=source.num_groups,
                    gc_epoch=gc_epoch,
                    live_segments=live_segments,
                    codes_ref=codes_ref,
                    kernel=source.kernel,
                )
                for shard in shards
            ]
            # Count dispatched (not completed) tasks, and do so before
            # running: ids must advance even if the window fails, or a retry
            # could collide with the failed window's stale results.
            self.shard_tasks += len(tasks)
        if self.tracer.enabled:
            wall0 = float(time.monotonic_ns())
            results = pool.run(tasks)
            shard_ns = [r.elapsed_ns for r in results]
            self.tracer.span_at(
                "backend.window",
                wall0,
                float(time.monotonic_ns()),
                clock="monotonic",
                backend=self.name,
                shards=len(tasks),
                rows=total_rows,
                shard_ns_max=max(shard_ns, default=0.0),
                shard_ns_mean=(sum(shard_ns) / len(shard_ns)) if shard_ns else 0.0,
            )
        else:
            results = pool.run(tasks)
        profiler = source.profiler
        if profiler.enabled:
            # Worker-side kernel nanoseconds (ShardResult.elapsed_ns), not
            # the coordinator's wait — IPC/queueing shows up in the trace
            # span instead, so the two views stay distinguishable.
            profiler.record_kernel(
                "sharded.window",
                float(sum(result.elapsed_ns for result in results)),
                rows=sum(result.rows for result in results),
                blocks=int(blocks.size),
                nbytes=sum(result.moved_bytes for result in results),
                bincounts=len(tasks),
            )
        merger = ShardMerger(source.num_candidates, source.num_groups)
        return merger.merge(results), cost

    # -------------------------------------------------------------- table level

    def count_table(
        self,
        table,
        z_name: str,
        x_name: str,
        num_candidates: int,
        num_groups: int,
        row_filter: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact whole-table counts, sharded across the worker pool.

        The rows are partitioned under a synthetic block layout and every
        shard is counted by the same kernel the sampling path uses; exact
        integer sums over the disjoint partition make the merged matrix
        byte-identical to the serial pass.  Columns are published to shared
        memory under the same per-table keys as :meth:`count_blocks`, so a
        session's sampling and exact passes share one set of segments.  The
        row filter ships as per-shard slices instead of a segment: exact
        passes are one-shot, and a throwaway full-table mask in shared
        memory would stay pinned by worker attachment caches.
        """
        num_rows = table.num_rows
        if num_rows < max(1, self.n_workers * self.min_shard_rows):
            return super().count_table(
                table, z_name, x_name, num_candidates, num_groups, row_filter
            )
        layout = BlockLayout(num_rows, EXACT_PASS_BLOCK_ROWS)
        shards = self.planner.plan(
            np.arange(layout.num_blocks, dtype=np.int64), layout
        )
        pool = self.pool
        with self._dispatch_lock:
            self._pinned_tables[id(table)] = table
            z_ref = self.store.publish(
                ("column", id(table), z_name), table.column(z_name)
            )
            x_ref = self.store.publish(
                ("column", id(table), x_name), table.column(x_name)
            )
            base_id = self.shard_tasks
            gc_epoch, live_segments = self.store.gc_state()
            tasks = [
                ShardTask(
                    task_id=base_id + shard.index,
                    blocks=shard.blocks,
                    z_ref=z_ref,
                    x_ref=x_ref,
                    filter_ref=None,
                    block_size=layout.block_size,
                    num_rows=num_rows,
                    num_candidates=num_candidates,
                    num_groups=num_groups,
                    filter_values=(
                        row_filter[layout.rows_of_blocks(shard.blocks)]
                        if row_filter is not None
                        else None
                    ),
                    gc_epoch=gc_epoch,
                    live_segments=live_segments,
                )
                for shard in shards
            ]
            self.shard_tasks += len(tasks)
        if self.tracer.enabled:
            wall0 = float(time.monotonic_ns())
            results = pool.run(tasks)
            shard_ns = [r.elapsed_ns for r in results]
            self.tracer.span_at(
                "backend.table",
                wall0,
                float(time.monotonic_ns()),
                clock="monotonic",
                backend=self.name,
                shards=len(tasks),
                rows=num_rows,
                shard_ns_max=max(shard_ns, default=0.0),
                shard_ns_mean=(sum(shard_ns) / len(shard_ns)) if shard_ns else 0.0,
            )
        else:
            results = pool.run(tasks)
        if self.profiler.enabled:
            self.profiler.record_kernel(
                "sharded.table",
                float(sum(result.elapsed_ns for result in results)),
                rows=sum(result.rows for result in results),
                blocks=int(layout.num_blocks),
                nbytes=sum(result.moved_bytes for result in results),
                bincounts=len(tasks),
            )
        merger = ShardMerger(num_candidates, num_groups)
        return merger.merge(results)

    # --------------------------------------------------------------- lifecycle

    def unpublish(self, *artifacts) -> None:
        """Unlink the shared-memory segments belonging to evicted artifacts.

        Artifacts are matched by identity against the store's publish keys
        (``("column", id(table), name)`` / ``("filter", id(mask))`` /
        ``("codes", id(codes))``), so a table drops all of its column
        segments and a filter mask or pair-code column drops its segment;
        pinned tables are released so their ids can be recycled.
        """
        ids = {id(artifact) for artifact in artifacts if artifact is not None}
        with self._dispatch_lock:
            if not ids or self.closed:
                return
            for key in self.store.keys():
                if isinstance(key, tuple) and len(key) >= 2 and key[1] in ids:
                    self.store.unpublish(key)
            for identity in ids:
                self._pinned_tables.pop(identity, None)

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "workers": self.n_workers,
            "min_shard_rows": self.min_shard_rows,
            "shard_tasks": self.shard_tasks,
            "cpu_affinity": self.cpu_affinity or "none",
        }

    def close(self) -> None:
        """Shut the pool down and unlink every shared-memory segment."""
        with self._dispatch_lock:
            if self.closed:
                return
            self.closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
        self.store.close()
        self._pinned_tables.clear()
