"""Merging per-shard results back into the serial path's exact state.

Per-shard counts cover disjoint row sets, so integer summation reconstructs
*exactly* the count matrix the serial path would have produced for the same
blocks — the property (selective-downsampling style partition-and-merge)
that lets the sharded backend be byte-identical to serial execution.  The
merger validates shapes and dtypes before summing: a silently broadcast or
float-upcast partial result would corrupt every downstream P-value.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .worker import ShardResult

__all__ = ["ShardMerger"]


class ShardMerger:
    """Sums per-shard ``(candidate, group)`` count matrices exactly."""

    def __init__(self, num_candidates: int, num_groups: int) -> None:
        if num_candidates < 1 or num_groups < 1:
            raise ValueError(
                f"need positive dimensions, got {num_candidates}x{num_groups}"
            )
        self.num_candidates = num_candidates
        self.num_groups = num_groups

    def merge(self, results: Iterable[ShardResult]) -> np.ndarray:
        """Sum shard counts into one int64 matrix; validates every shard."""
        merged = np.zeros((self.num_candidates, self.num_groups), dtype=np.int64)
        for result in results:
            counts = np.asarray(result.counts)
            if counts.shape != merged.shape:
                raise ValueError(
                    f"shard {result.task_id} counts have shape {counts.shape}, "
                    f"expected {merged.shape}"
                )
            if not np.issubdtype(counts.dtype, np.integer):
                raise ValueError(
                    f"shard {result.task_id} counts must be integer, "
                    f"got {counts.dtype}"
                )
            if int(counts.sum()) != result.rows:
                raise ValueError(
                    f"shard {result.task_id} rows tally {result.rows} does not "
                    f"match its counts ({int(counts.sum())})"
                )
            merged += counts
        return merged
