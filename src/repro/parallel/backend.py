"""The execution-backend seam all sampling routes through.

:class:`ExecutionBackend` has two levels of hooks:

- **algorithm level** — :meth:`run_uniform` / :meth:`run_sampling` wrap the
  :class:`~repro.core.sampler.TupleSampler` calls HistSim makes (stage-1
  uniform pass, stage-2 round budgets, stage-3 reconstruction).  The default
  implementations delegate straight to the sampler; a future distributed
  backend can intercept whole sampling requests here.
- **engine level** — :meth:`count_blocks` performs the delivery of one
  window's blocks (gather + filter + count + I/O cost accounting) for the
  block sampling engine.  This is where :class:`ShardedBackend
  <repro.parallel.sharded.ShardedBackend>` fans work out to its pool.
- **table level** — :meth:`count_table` computes the exact
  ``(candidate, group)`` counts of a *whole* table in one pass.  The exact
  Scan baseline and the ground-truth computation both reduce to this, and
  both are embarrassingly shardable: the sharded backend partitions the
  rows, counts per shard, and merges by exact integer addition, so the
  result is byte-identical to the serial pass.

Backends also expose :meth:`unpublish`, the cache-eviction hook: when a
serving session evicts prepared artifacts, the backend releases whatever
per-artifact resources it holds (the sharded backend unlinks the artifacts'
shared-memory segments).

:class:`SerialBackend` implements both levels with exactly the code the
engine ran before the seam existed, so it *is* today's behaviour.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..obs.profiler import NULL_PROFILER
from ..obs.tracer import NULL_TRACER
from ..storage.io_manager import IOManager
from ..storage.shuffle import ShuffledTable
from .kernels import _count_pairs_moved, count_pairs, count_window

__all__ = ["CountSource", "ExecutionBackend", "SerialBackend", "count_pairs"]


@dataclass(frozen=True)
class CountSource:
    """What a backend needs to know about one engine's substrate.

    Built once per :class:`~repro.sampling.engine.BlockSamplingEngine`; the
    backend uses it to locate columns, apply the query's row filter, and
    charge simulated I/O through the engine's :class:`IOManager`.
    """

    shuffled: ShuffledTable
    z_name: str
    x_name: str
    num_candidates: int
    num_groups: int
    row_filter: np.ndarray | None
    io: IOManager
    #: Per-job profiler the backend records its counting kernels into —
    #: the engine threads its own profiler here, so kernel effort is
    #: attributed to the job even on a backend shared across tenants.
    #: Defaults to the shared no-op (one branch on the hot path).
    profiler: object = NULL_PROFILER
    #: Prepared pair-code column (:func:`~repro.parallel.kernels.build_pair_codes`)
    #: enabling the fused kernel; ``None`` when not prepared.
    codes: np.ndarray | None = None
    #: Kernel spec forwarded to :func:`~repro.parallel.kernels.count_window`.
    kernel: str = "auto"


class ExecutionBackend(ABC):
    """Strategy object deciding *how* sampling work is executed."""

    name: str = "abstract"

    #: Observability hook: fan-out windows, pool waits, and shared-memory
    #: lifecycle report here.  The class-level default is the shared no-op,
    #: so backends constructed anywhere stay untraced until a session or
    #: registry calls :meth:`set_tracer`.  Tracing never touches counting:
    #: spans are emitted around the work, not inside the kernels.
    tracer = NULL_TRACER

    def set_tracer(self, tracer) -> None:
        """Attach a :class:`~repro.obs.Tracer` (or ``None`` to detach)."""
        self.tracer = tracer if tracer is not None else NULL_TRACER

    #: Deterministic hot-path counters for work without a per-job
    #: :class:`CountSource` (exact table passes); window counting records
    #: into ``source.profiler`` instead.  Same zero-overhead default and
    #: discipline as tracing: profiling observes around the kernels, never
    #: inside the arithmetic.
    profiler = NULL_PROFILER

    def set_profiler(self, profiler) -> None:
        """Attach a :class:`~repro.obs.Profiler` (or ``None`` to detach)."""
        self.profiler = profiler if profiler is not None else NULL_PROFILER

    # ---------------------------------------------------------- algorithm level

    def run_uniform(self, sampler, m: int) -> np.ndarray:
        """Execute a stage-1 uniform sampling request."""
        return sampler.sample_uniform(m)

    def run_sampling(
        self, sampler, needed: np.ndarray, max_rows: float | None = None
    ) -> np.ndarray:
        """Execute a budgeted (stage-2/3) sampling request."""
        return sampler.sample_until(needed, max_rows=max_rows)

    # ------------------------------------------------------------- engine level

    @abstractmethod
    def count_blocks(
        self, source: CountSource, blocks: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Deliver one window's (sorted, unique, non-empty) blocks.

        Returns the fresh ``(candidate, group)`` count matrix and the
        simulated I/O cost in nanoseconds.  Implementations must account
        I/O through ``source.io`` so engine-level counters agree across
        backends.
        """

    # -------------------------------------------------------------- table level

    def count_table(
        self,
        table,
        z_name: str,
        x_name: str,
        num_candidates: int,
        num_groups: int,
        row_filter: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact ``(candidate, group)`` counts over every row of ``table``.

        ``row_filter`` (a boolean row mask) drops rows before counting;
        ``None`` means no predicate.  The default implementation is the
        serial single-pass bincount; sharded backends partition the rows and
        merge, with byte-identical results (exact integer sums over a
        disjoint row partition).
        """
        profiler = self.profiler
        started = time.perf_counter_ns() if profiler.enabled else 0
        z = table.column(z_name)
        x = table.column(x_name)
        moved = 0
        if row_filter is not None:
            z = z[row_filter]
            x = x[row_filter]
            moved += int(z.nbytes + x.nbytes)
        counts, code_bytes = _count_pairs_moved(z, x, num_candidates, num_groups)
        if profiler.enabled:
            profiler.record_kernel(
                "serial.count_table",
                float(time.perf_counter_ns() - started),
                rows=int(counts.sum()),
                nbytes=moved + code_bytes,
                bincounts=1,
            )
        return counts

    # --------------------------------------------------------------- lifecycle

    def unpublish(self, *artifacts) -> None:
        """Release per-artifact resources (cache-eviction hook).

        Called by the session layer when prepared artifacts (tables, row
        filters) are evicted from its caches.  The default is a no-op; the
        sharded backend unlinks the artifacts' shared-memory segments.
        Idempotent, and unknown artifacts are ignored.
        """

    def describe(self) -> dict:
        """Report-facing description (recorded in benchmark JSON)."""
        return {"backend": self.name}

    def close(self) -> None:
        """Release any pooled resources.  Idempotent; default is a no-op."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Single-process execution — the exact pre-backend behaviour."""

    name = "serial"

    def count_blocks(
        self, source: CountSource, blocks: np.ndarray
    ) -> tuple[np.ndarray, float]:
        profiler = source.profiler
        started = time.perf_counter_ns() if profiler.enabled else 0
        cost = source.io.read_cost(blocks)
        counts, moved = count_window(
            source.shuffled.table.column(source.z_name),
            source.shuffled.table.column(source.x_name),
            blocks,
            source.shuffled.layout,
            source.num_candidates,
            source.num_groups,
            row_filter=source.row_filter,
            codes=source.codes,
            kernel=source.kernel,
        )
        if profiler.enabled:
            profiler.record_kernel(
                "serial.count",
                float(time.perf_counter_ns() - started),
                rows=int(counts.sum()),
                blocks=int(blocks.size),
                nbytes=moved,
                bincounts=1,
            )
        return counts, cost
