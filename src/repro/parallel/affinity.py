"""CPU-affinity policies for worker placement.

Counting workers are bandwidth-bound: each shard's gather + bincount streams
column bytes through one core's cache hierarchy.  Letting the scheduler
migrate workers between cores mid-run throws that warm cache away; pinning each
worker to one CPU keeps its working set resident.  Two strategies:

- ``"spread"`` — place workers evenly across the allowed CPU list, maximizing
  the distance between neighbours (on multi-socket hosts this lands workers
  on different sockets/L3 domains first, giving each the widest share of
  memory bandwidth);
- ``"compact"`` — fill CPUs in order, packing workers onto the lowest-numbered
  cores first (keeps a small pool on one socket, sharing L3).

Pinning uses :func:`os.sched_setaffinity`, which exists on Linux only; on
other platforms (or when the call is refused) :func:`apply_affinity` reports
failure and execution proceeds unpinned — placement is always best-effort
and never affects results, only locality.
"""

from __future__ import annotations

import os

__all__ = [
    "AFFINITY_POLICIES",
    "available_cpus",
    "plan_affinity",
    "apply_affinity",
]

#: Accepted ``cpu_affinity`` policy names; ``"none"`` (or ``None``) disables
#: pinning entirely.
AFFINITY_POLICIES = ("none", "spread", "compact")


def available_cpus() -> tuple[int, ...]:
    """CPUs this process may schedule on, in sorted order.

    Respects cgroup/taskset restrictions via :func:`os.sched_getaffinity`
    where available; falls back to ``range(os.cpu_count())`` elsewhere.
    """
    getter = getattr(os, "sched_getaffinity", None)
    if getter is not None:
        try:
            return tuple(sorted(getter(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return tuple(range(os.cpu_count() or 1))


def plan_affinity(
    policy: str | None,
    n_workers: int,
    cpus: tuple[int, ...] | None = None,
) -> list[set[int]] | None:
    """CPU set for each of ``n_workers`` workers, or ``None`` for no pinning.

    Each worker gets a single CPU (a one-element set, the shape
    :func:`os.sched_setaffinity` takes).  With more workers than CPUs the
    assignment wraps, so oversubscribed pools still pin deterministically.
    """
    if policy is None or policy == "none":
        return None
    if policy not in AFFINITY_POLICIES:
        raise ValueError(
            f"cpu_affinity must be one of {AFFINITY_POLICIES}, got {policy!r}"
        )
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    cpus = available_cpus() if cpus is None else tuple(cpus)
    if not cpus:
        return None
    if policy == "spread" and n_workers <= len(cpus):
        # Even spacing over the CPU list: worker i sits at the start of the
        # i-th of n_workers equal strides, so 2 workers on 8 CPUs land on
        # CPUs 0 and 4.  Oversubscribed pools fall through to wrapping.
        return [{cpus[(i * len(cpus)) // n_workers]} for i in range(n_workers)]
    return [{cpus[i % len(cpus)]} for i in range(n_workers)]


def apply_affinity(pid: int, cpuset: set[int]) -> bool:
    """Pin ``pid`` (0 = the calling thread) to ``cpuset``; ``True`` on success.

    Best-effort: returns ``False`` where unsupported (non-Linux) or refused
    (permissions, dead pid) instead of raising — placement must never turn
    a working pool into a crash.
    """
    setter = getattr(os, "sched_setaffinity", None)
    if setter is None:
        return False
    try:
        setter(pid, cpuset)
        return True
    except (OSError, ValueError):
        return False
