"""Shared-memory column store: zero-copy dataset access for workers.

The coordinator publishes each column it wants workers to read exactly once
per dataset (``publish`` is memoized by caller-supplied key); workers attach
to the named segment and wrap it in a NumPy view without copying.  The store
is the single owner of every segment it created: :meth:`close` unlinks them
all, so a clean shutdown leaves nothing behind in ``/dev/shm``.

Attachment uses :func:`attach_segment`, which works around CPython's
resource-tracker over-registration (on Python <= 3.12 merely *attaching* to
a segment registers it for cleanup, so an exiting worker could unlink a
segment the coordinator still owns).
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Hashable

import numpy as np

__all__ = ["SegmentRef", "SharedMemoryStore", "attach_segment"]


@dataclass(frozen=True)
class SegmentRef:
    """Everything a worker needs to reconstruct a published array."""

    name: str
    dtype: str
    shape: tuple[int, ...]


def attach_segment(
    ref: SegmentRef, shared_tracker: bool = False
) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach to a published segment; returns the handle and a read view.

    The caller must keep the handle alive while using the view and
    ``close()`` (not unlink) it when done — the publishing store owns the
    segment's lifetime.

    ``shared_tracker`` says whether this process shares its resource
    tracker with the segment's creator (true in ``fork`` children).  On
    Python <= 3.12 attaching registers the segment with the tracker; with a
    *private* tracker that registration must be undone (or the attaching
    process's exit would unlink a segment it does not own), while with a
    *shared* tracker it must be kept (undoing it would strip the creator's
    own registration).
    """
    try:
        # Python >= 3.13: opt out of tracking explicitly.
        shm = shared_memory.SharedMemory(name=ref.name, track=False)
    except TypeError:
        shm = shared_memory.SharedMemory(name=ref.name)
        if not shared_tracker:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
    array = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)
    return shm, array


class SharedMemoryStore:
    """Publishes NumPy arrays into named shared-memory segments.

    ``publish`` is idempotent per key, so callers can route every window
    through it without re-copying columns.  The store keeps a strong
    reference to each source array: keys may be identity-based (``id(...)``),
    and holding the source pins that identity for the store's lifetime.
    """

    def __init__(self, prefix: str = "repro") -> None:
        # PID + random suffix keeps concurrent sessions' segments apart.
        self._prefix = f"{prefix}-{os.getpid()}-{secrets.token_hex(4)}"
        self._segments: dict[Hashable, tuple[shared_memory.SharedMemory, SegmentRef, np.ndarray]] = {}
        self._serial = 0
        #: Bumped on every unpublish; workers drop cached attachments to
        #: segments absent from :meth:`gc_state` once they see a newer epoch.
        self.epoch = 0
        self.closed = False
        #: Observability hook: ``(name, **attrs) -> None`` (a
        #: :meth:`Tracer.callback` adapter, wired by the sharded backend's
        #: ``set_tracer``).  ``None`` means segment lifecycle is untraced.
        self.on_event = None

    def _notify(self, name: str, **attrs) -> None:
        if self.on_event is not None:
            self.on_event(name, **attrs)

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def total_bytes(self) -> int:
        """Payload bytes across all live segments (health/`repro top`)."""
        return sum(int(array.nbytes) for _, _, array in self._segments.values())

    def segment_names(self) -> list[str]:
        """Names of all live segments (for leak checks in tests)."""
        return [ref.name for _, ref, _ in self._segments.values()]

    def keys(self) -> list[Hashable]:
        """Keys of all live segments (eviction hooks iterate these)."""
        return list(self._segments)

    def unpublish(self, key: Hashable) -> None:
        """Close and unlink one published segment (cache-eviction hook).

        Idempotent: unknown keys are ignored.  Unlinking removes the name
        from ``/dev/shm`` immediately; the pages themselves are freed once
        every attached worker closes its handle.  Workers cache attachments,
        so the unpublish bumps the store's GC ``epoch`` — tasks carry the
        current :meth:`gc_state`, and a worker that sees a newer epoch drops
        (closes) every cached attachment whose segment is no longer live,
        releasing the evicted pages without restarting the pool.  Segment
        names are serial-unique, so a stale attachment can never alias a
        later publication.
        """
        entry = self._segments.pop(key, None)
        if entry is None:
            return
        self.epoch += 1
        shm, ref, _ = entry
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        self._notify("shm.unpublish", segment=ref.name, epoch=self.epoch)

    def gc_state(self) -> tuple[int, tuple[str, ...]]:
        """The attachment-GC watermark shipped with every worker task:
        the current eviction epoch plus the names of all live segments.

        A worker whose cached epoch is older closes every attachment not in
        the live set and adopts the new epoch.  Shipping the full live set
        (a handful of column names) rather than a retirement diff keeps the
        protocol stateless: a worker that never saw the intermediate epochs
        — tasks are pulled from a shared queue — still converges.
        """
        return self.epoch, tuple(ref.name for _, ref, _ in self._segments.values())

    def publish(self, key: Hashable, array: np.ndarray) -> SegmentRef:
        """Copy ``array`` into a shared segment (once per key); returns its ref.

        The creating handle is *closed* immediately after the copy: a tmpfs
        segment lives until unlink regardless of open mappings, the
        coordinator never reads it back (workers attach by name), and — the
        real point — a worker forked later must not inherit the
        coordinator's mapping, or the pages of an evicted segment would
        stay pinned by that invisible inherited mapping even after the
        worker drops its own attachment (epoch GC).
        """
        if self.closed:
            raise RuntimeError("SharedMemoryStore is closed")
        if key in self._segments:
            return self._segments[key][1]
        source = np.ascontiguousarray(array)
        name = f"{self._prefix}-{self._serial}"
        self._serial += 1
        shm = shared_memory.SharedMemory(create=True, size=max(source.nbytes, 1), name=name)
        view = np.ndarray(source.shape, dtype=source.dtype, buffer=shm.buf)
        view[...] = source
        del view  # release the buffer export so the mapping can close
        shm.close()
        ref = SegmentRef(name=name, dtype=source.dtype.str, shape=tuple(source.shape))
        self._segments[key] = (shm, ref, array)
        self._notify("shm.publish", segment=name, nbytes=int(source.nbytes))
        return ref

    def ref(self, key: Hashable) -> SegmentRef:
        if key not in self._segments:
            raise KeyError(f"no segment published under key {key!r}")
        return self._segments[key][1]

    def close(self) -> None:
        """Close and unlink every segment.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        released = len(self._segments)
        for shm, _, _ in self._segments.values():
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()
        self._notify("shm.close", segments=released)

    def __enter__(self) -> "SharedMemoryStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
