"""Persistent worker pool: spawn once per session, reuse across queries.

Workers are plain ``multiprocessing`` processes running
:func:`~repro.parallel.worker.worker_loop` over a shared task queue, so a
window's shards are pulled by whichever workers are free.  The pool is
deliberately persistent — process startup (interpreter + NumPy import under
the ``spawn`` method) costs orders of magnitude more than one window's
counting, so a :class:`~repro.system.session.MatchSession` pays it once and
amortizes it over every query it serves.

The pool is also safe under **concurrent** :meth:`WorkerPool.run` calls:
when a front door executes steps of different tenants concurrently, their
windows interleave on the shared queues.  Task ids are globally unique
(allocated by the backend), and the gather side routes every result to the
``run`` call that owns its id — one caller at a time drains the result
queue and *deposits* results belonging to other callers, who claim them
under the shared condition.  A result can therefore never cross-settle
into another tenant's merge, and a failed call's stragglers are remembered
and dropped instead of poisoning later calls.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import threading
import time
from typing import Sequence

from ..obs.tracer import NULL_TRACER
from .affinity import apply_affinity, plan_affinity
from .worker import ShardResult, ShardTask, worker_loop

__all__ = ["WorkerPool", "default_start_method"]


def default_start_method() -> str:
    """``fork`` where available (cheap, Linux), else ``spawn`` (macOS/Windows)."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class WorkerPool:
    """A fixed set of shard-counting worker processes over shared queues.

    Parameters
    ----------
    n_workers:
        Pool size.  One task queue feeds all workers, so up to ``n_workers``
        shards of one window count concurrently.
    start_method:
        ``multiprocessing`` start method; default per
        :func:`default_start_method`.
    result_timeout_s:
        How long one result may take before the pool checks worker liveness
        (a dead worker otherwise means waiting forever).
    cpu_affinity:
        Optional worker-placement policy (``"spread"`` / ``"compact"``, see
        :mod:`~repro.parallel.affinity`): each worker process is pinned to
        one CPU right after spawn.  Best-effort — unsupported platforms
        leave workers unpinned; :attr:`affinity_applied` reports how many
        pins actually took.
    """

    #: Observability hook (set by the owning backend's ``set_tracer``):
    #: each :meth:`run` emits a ``pool.run`` span with its deposit-wait
    #: time when the tracer is enabled.  Never touches gather correctness.
    tracer = NULL_TRACER

    def __init__(
        self,
        n_workers: int,
        start_method: str | None = None,
        result_timeout_s: float = 60.0,
        cpu_affinity: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if result_timeout_s <= 0:
            raise ValueError(f"result_timeout_s must be positive, got {result_timeout_s}")
        self.n_workers = n_workers
        self.start_method = start_method or default_start_method()
        self.result_timeout_s = result_timeout_s
        self.cpu_affinity = cpu_affinity
        self.affinity_applied = 0
        self.tasks_dispatched = 0
        self.closed = False
        # Concurrent-run gather state (see run()): one caller drains the
        # result queue at a time; results for other callers are deposited
        # here keyed by task id, abandoned ids are stragglers of failed
        # runs that must never be claimed.
        self._gather = threading.Condition()
        self._draining = False
        self._deposited: dict[int, tuple[ShardResult | None, str | None]] = {}
        self._abandoned: set[int] = set()
        self._last_result_monotonic = time.monotonic()
        ctx = mp.get_context(self.start_method)
        self._task_queue = ctx.Queue()
        self._result_queue = ctx.Queue()
        # fork children share the parent's resource tracker; attach-time
        # registration bookkeeping differs accordingly (see attach_segment).
        shared_tracker = self.start_method == "fork"
        self._workers = [
            ctx.Process(
                target=worker_loop,
                args=(self._task_queue, self._result_queue, shared_tracker),
                name=f"repro-shard-worker-{i}",
                daemon=True,
            )
            for i in range(n_workers)
        ]
        for worker in self._workers:
            worker.start()
        cpusets = plan_affinity(cpu_affinity, n_workers)
        if cpusets:
            for worker, cpuset in zip(self._workers, cpusets):
                if worker.pid is not None and apply_affinity(worker.pid, cpuset):
                    self.affinity_applied += 1

    @property
    def alive_workers(self) -> int:
        return sum(1 for worker in self._workers if worker.is_alive())

    def run(self, tasks: Sequence[ShardTask]) -> list[ShardResult]:
        """Dispatch shard tasks and gather all results, ordered by task id.

        Raises if any task failed or any worker died — partial counts must
        never be merged, or the exactness guarantee silently breaks.  A
        worker death closes the pool: results for the dead worker's tasks
        can never arrive, and surviving workers' late results must not leak
        into a later ``run`` call.

        Safe under concurrent callers (task ids are globally unique across
        the backend's lifetime): one caller at a time drains the shared
        result queue, depositing results owned by other in-flight calls for
        them to claim, so interleaved windows can never cross-settle.
        """
        if self.closed:
            raise RuntimeError("WorkerPool is closed")
        traced = self.tracer.enabled
        wall0 = float(time.monotonic_ns()) if traced else 0.0
        deposit_wait_ns = 0.0
        expected = {task.task_id for task in tasks}
        if len(expected) != len(tasks):
            raise ValueError("task ids must be unique within one run")
        with self._gather:
            for task in tasks:
                self._task_queue.put(task)
            self.tasks_dispatched += len(tasks)
        results: dict[int, ShardResult] = {}
        errors: list[str] = []

        def absorb(task_id: int, result, error) -> None:
            if error is not None:
                errors.append(f"task {task_id}: {error}")
            else:
                results[task_id] = result

        try:
            while len(results) + len(errors) < len(tasks):
                with self._gather:
                    # Claim results another caller's drain deposited for us.
                    for task_id in expected.difference(results):
                        entry = self._deposited.pop(task_id, None)
                        if entry is not None:
                            absorb(task_id, *entry)
                    if len(results) + len(errors) >= len(tasks):
                        break
                    if self.closed:
                        raise RuntimeError(
                            "worker pool closed with shard task(s) outstanding"
                        )
                    if self._draining:
                        # Someone else is on the queue; wait for a deposit.
                        if traced:
                            wait0 = time.monotonic_ns()
                            self._gather.wait(timeout=0.1)
                            deposit_wait_ns += time.monotonic_ns() - wait0
                        else:
                            self._gather.wait(timeout=0.1)
                        continue
                    self._draining = True
                # Sole drainer: pull one item off the shared result queue.
                got = None
                try:
                    got = self._result_queue.get(
                        timeout=min(0.1, self.result_timeout_s)
                    )
                except queue_module.Empty:
                    stale = (
                        time.monotonic() - self._last_result_monotonic
                        >= self.result_timeout_s
                    )
                    if self.alive_workers < self.n_workers and (
                        stale or self._result_queue.empty()
                    ):
                        self.close()
                        raise RuntimeError(
                            f"worker died with {len(tasks) - len(results)} shard "
                            "task(s) outstanding; pool closed"
                        ) from None
                finally:
                    with self._gather:
                        self._draining = False
                        if got is not None:
                            task_id, result, error = got
                            self._last_result_monotonic = time.monotonic()
                            if task_id in expected:
                                absorb(task_id, result, error)
                            elif task_id in self._abandoned:
                                # A straggler from a failed run; never merge.
                                self._abandoned.discard(task_id)
                            else:
                                # A concurrent caller's result: deposit it.
                                self._deposited[task_id] = (result, error)
                        self._gather.notify_all()
        except BaseException:
            # Whatever this run will never claim must not be mistaken for
            # a later run's results when the worker eventually reports.
            with self._gather:
                self._abandoned.update(expected.difference(results))
                for task_id in expected:
                    self._deposited.pop(task_id, None)
                self._gather.notify_all()
            raise
        if errors:
            with self._gather:
                self._abandoned.update(expected.difference(results))
                self._gather.notify_all()
            raise RuntimeError("shard task(s) failed: " + "; ".join(errors))
        if traced:
            self.tracer.span_at(
                "pool.run",
                wall0,
                float(time.monotonic_ns()),
                clock="monotonic",
                tasks=len(tasks),
                workers=self.n_workers,
                deposit_wait_ns=float(deposit_wait_ns),
            )
        return [results[task.task_id] for task in tasks]

    def close(self) -> None:
        """Stop all workers and release the queues.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        for _ in self._workers:
            self._task_queue.put(None)
        for worker in self._workers:
            worker.join(timeout=10.0)
        for worker in self._workers:
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
                worker.join(timeout=5.0)
        for q in (self._task_queue, self._result_queue):
            q.close()
            q.join_thread()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
