"""Shard planning: partition a window's blocks into per-worker shards.

A shard is a contiguous run of the (sorted) block list, sized so every
shard covers roughly the same number of *rows* — the quantity that drives
counting cost — rather than the same number of blocks (the final block of a
layout may be short).

Randomization guarantees
------------------------
Sharding happens *after* the engine has fixed which blocks a window
delivers, and the shards partition exactly that block set.  The blocks live
in the shuffled layout (Challenge 1), so the union of rows across shards is
the same uniform without-replacement sample the serial path would count,
and each shard on its own is a fixed subset of a random permutation — also
uniform without replacement.  Planning never looks at data values, only at
row geometry, so it cannot bias the sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..storage.blocks import BlockLayout

__all__ = ["Shard", "ShardPlanner"]


@dataclass(frozen=True)
class Shard:
    """One worker's slice of a window: a contiguous run of block indexes."""

    index: int
    blocks: np.ndarray
    rows: int

    def __post_init__(self) -> None:
        if self.blocks.size == 0:
            raise ValueError("a shard must cover at least one block")
        if self.rows < 1:
            raise ValueError(f"a shard must cover at least one row, got {self.rows}")


class ShardPlanner:
    """Partition sorted block lists into at most ``n_shards`` balanced shards.

    Fewer shards are produced when there are fewer blocks than shards (every
    shard is non-empty) or when row counts make a boundary collapse.
    """

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards

    def plan(self, blocks: np.ndarray, layout: BlockLayout) -> list[Shard]:
        """Split ``blocks`` (sorted, unique) into contiguous row-balanced shards."""
        blocks = np.asarray(blocks, dtype=np.int64)
        if blocks.size == 0:
            return []
        if np.any(np.diff(blocks) <= 0):
            raise ValueError("blocks must be sorted and unique")
        if blocks[0] < 0 or blocks[-1] >= layout.num_blocks:
            raise ValueError("block index out of range for the layout")
        cumulative = np.cumsum(layout.rows_per_block(blocks))
        total_rows = int(cumulative[-1])
        n = min(self.n_shards, int(blocks.size))
        # Ideal row boundaries at total/n multiples; each shard ends at the
        # first block whose cumulative row count reaches its boundary.
        targets = total_rows * np.arange(1, n + 1, dtype=np.float64) / n
        ends = np.searchsorted(cumulative, targets, side="left") + 1
        ends[-1] = blocks.size
        shards: list[Shard] = []
        start = 0
        for end in ends:
            end = int(min(end, blocks.size))
            if end <= start:
                continue
            rows = int(cumulative[end - 1] - (cumulative[start - 1] if start else 0))
            shards.append(Shard(index=len(shards), blocks=blocks[start:end], rows=rows))
            start = end
        return shards
