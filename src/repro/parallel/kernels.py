"""Counting kernels: the one place window counting arithmetic lives.

Every backend routes the gather + filter + bincount of a window's blocks
through :func:`count_window`, which dispatches to one of three registered
kernels — all byte-identical in output to the legacy serial path, differing
only in how many bytes they materialize on the way:

- ``"classic"`` — the legacy arithmetic, verbatim: an int64 row-index
  gather (:meth:`~repro.storage.blocks.BlockLayout.rows_of_blocks`), fancy
  indexing into fresh stored-dtype arrays, an int64 upcast of both columns,
  then ``z * G + x`` in int64 and one bincount.  Kept as the reference
  kernel the identity tests pin the others against.
- ``"narrow"`` — walks the window's contiguous block runs as slices
  (:meth:`~repro.storage.blocks.BlockLayout.run_bounds`) instead of
  materializing a row-index array, and computes the pair codes directly in
  :func:`pair_code_dtype` — the narrowest dtype that holds
  ``num_candidates * num_groups`` codes — skipping the per-window int64
  upcasts entirely.  Selected automatically whenever the code space fits
  ``uint32``.
- ``"fused"`` — counts a *prepared pair-code column* (``z * G + x``
  materialized once per ``(z, x)`` pair by :func:`build_pair_codes` and
  cached in the session's prepared-artifact layer), so per-window work
  degenerates to slice-take + bincount.  A single-run unfiltered window
  bincounts a zero-copy view: zero bytes moved.

Codes are exact in any of these dtypes (values are validated in
``[0, cardinality)`` by :class:`~repro.storage.table.ColumnTable`, and the
narrow dtype is chosen to hold ``C*G - 1``), and ``np.bincount`` output is
int64 regardless of input dtype, so kernel choice can never change counts —
only bytes moved and nanoseconds spent.

Each kernel returns ``(counts, moved_bytes)`` where ``moved_bytes`` counts
bytes *materialized into fresh arrays* by the kernel (gathers, upcasts,
code arrays, filter outputs); zero-copy views contribute nothing.  That is
the quantity the profiler's ``bytes_moved`` counter reports and the kernel
benchmark gates on.
"""

from __future__ import annotations

import numpy as np

from ..storage.blocks import BlockLayout

__all__ = [
    "KERNELS",
    "KERNEL_SPECS",
    "build_pair_codes",
    "count_pairs",
    "count_window",
    "pair_code_dtype",
    "resolve_kernel",
]

#: Concrete kernel names, in the order auto-selection prefers them.
KERNELS = ("fused", "narrow", "classic")

#: What sessions/CLI accept: ``"auto"`` picks per :func:`resolve_kernel`.
KERNEL_SPECS = ("auto", "classic", "narrow", "fused")


def pair_code_dtype(num_candidates: int, num_groups: int) -> np.dtype:
    """Narrowest dtype holding every pair code in ``[0, C*G)``.

    ``uint8``/``uint16``/``uint32`` when the code space fits (``bincount``
    accepts them), otherwise ``int64`` — never ``uint64``, which
    ``bincount`` rejects.
    """
    span = max(int(num_candidates) * int(num_groups) - 1, 0)
    for dtype in (np.uint8, np.uint16, np.uint32):
        if span <= np.iinfo(dtype).max:
            return np.dtype(dtype)
    return np.dtype(np.int64)


def _pair_codes(
    z: np.ndarray, x: np.ndarray, num_groups: int, dtype: np.dtype
) -> np.ndarray:
    """``z * num_groups + x`` computed directly in ``dtype``.

    ``casting="unsafe"`` is required for the cross-kind cast (stored
    columns may be unsigned, the target may differ) and is exact here:
    values are validated non-negative and the dtype holds the full code
    span.
    """
    codes = np.multiply(z, num_groups, dtype=dtype, casting="unsafe")
    np.add(codes, x, out=codes, casting="unsafe")
    return codes


def build_pair_codes(
    z: np.ndarray, x: np.ndarray, num_candidates: int, num_groups: int
) -> np.ndarray:
    """The prepared pair-code column the ``"fused"`` kernel counts.

    Materialized once per ``(z, x)`` column pair (memory cost: one item of
    :func:`pair_code_dtype` per row) and cached/published like any other
    prepared artifact; read-only so every consumer can share it.
    """
    codes = _pair_codes(z, x, num_groups, pair_code_dtype(num_candidates, num_groups))
    codes.setflags(write=False)
    return codes


def count_pairs(
    z: np.ndarray, x: np.ndarray, num_candidates: int, num_groups: int
) -> np.ndarray:
    """Bincount already-gathered ``(z, x)`` codes into a count matrix."""
    return _count_pairs_moved(z, x, num_candidates, num_groups)[0]


def _count_pairs_moved(
    z: np.ndarray, x: np.ndarray, num_candidates: int, num_groups: int
) -> tuple[np.ndarray, int]:
    """:func:`count_pairs` plus the bytes it materialized (the code array)."""
    codes = _pair_codes(z, x, num_groups, pair_code_dtype(num_candidates, num_groups))
    flat = np.bincount(codes, minlength=num_candidates * num_groups)
    counts = flat.reshape(num_candidates, num_groups).astype(np.int64, copy=False)
    return counts, int(codes.nbytes)


def resolve_kernel(
    kernel: str,
    num_candidates: int,
    num_groups: int,
    codes: np.ndarray | None = None,
) -> str:
    """Auto-selection: the concrete kernel a spec resolves to.

    A prepared code column always wins (the expensive part is already
    paid).  Otherwise ``"narrow"`` whenever the code space fits below
    int64 — including for ``kernel="fused"`` without codes, which degrades
    gracefully rather than failing — and ``"classic"`` as the fallback.
    """
    if kernel not in KERNEL_SPECS:
        raise ValueError(f"kernel must be one of {KERNEL_SPECS}, got {kernel!r}")
    if kernel == "classic":
        return "classic"
    if codes is not None:
        return "fused"
    if pair_code_dtype(num_candidates, num_groups) != np.dtype(np.int64):
        return "narrow"
    return "classic"


def _gather_runs(
    column: np.ndarray, starts: np.ndarray, stops: np.ndarray
) -> tuple[np.ndarray, int]:
    """Rows of the given spans, in span order; zero-copy for a single run."""
    if starts.size == 1:
        return column[starts[0] : stops[0]], 0
    out = np.concatenate([column[a:b] for a, b in zip(starts, stops)])
    return out, int(out.nbytes)


def _classic_kernel(
    z, x, blocks, layout, num_candidates, num_groups, row_filter, filter_slice, codes
) -> tuple[np.ndarray, int]:
    """The legacy serial path, with its materializations accounted."""
    rows = layout.rows_of_blocks(blocks)
    moved = int(rows.nbytes)
    gathered_z = z[rows]
    gathered_x = x[rows]
    moved += int(gathered_z.nbytes + gathered_x.nbytes)
    zz = gathered_z.astype(np.int64, copy=False)
    xx = gathered_x.astype(np.int64, copy=False)
    if zz is not gathered_z:
        moved += int(zz.nbytes)
    if xx is not gathered_x:
        moved += int(xx.nbytes)
    keep = row_filter[rows] if row_filter is not None else filter_slice
    if keep is not None:
        if row_filter is not None:
            moved += int(keep.nbytes)
        zz = zz[keep]
        xx = xx[keep]
        moved += int(zz.nbytes + xx.nbytes)
    flat_codes = zz * np.int64(num_groups) + xx
    moved += int(flat_codes.nbytes)
    flat = np.bincount(flat_codes, minlength=num_candidates * num_groups)
    counts = flat.reshape(num_candidates, num_groups).astype(np.int64, copy=False)
    return counts, moved


def _narrow_kernel(
    z, x, blocks, layout, num_candidates, num_groups, row_filter, filter_slice, codes
) -> tuple[np.ndarray, int]:
    """Slice-run gather + narrow-dtype codes (no row index, no upcast)."""
    starts, stops = layout.run_bounds(blocks)
    zz, z_moved = _gather_runs(z, starts, stops)
    xx, x_moved = _gather_runs(x, starts, stops)
    moved = z_moved + x_moved
    if row_filter is not None:
        keep, keep_moved = _gather_runs(row_filter, starts, stops)
        moved += keep_moved
    else:
        keep = filter_slice
    if keep is not None:
        zz = zz[keep]
        xx = xx[keep]
        moved += int(zz.nbytes + xx.nbytes)
    flat_codes = _pair_codes(
        zz, xx, num_groups, pair_code_dtype(num_candidates, num_groups)
    )
    moved += int(flat_codes.nbytes)
    flat = np.bincount(flat_codes, minlength=num_candidates * num_groups)
    counts = flat.reshape(num_candidates, num_groups).astype(np.int64, copy=False)
    return counts, moved


def _fused_kernel(
    z, x, blocks, layout, num_candidates, num_groups, row_filter, filter_slice, codes
) -> tuple[np.ndarray, int]:
    """Take + bincount over the prepared pair-code column."""
    starts, stops = layout.run_bounds(blocks)
    flat_codes, moved = _gather_runs(codes, starts, stops)
    if row_filter is not None:
        keep, keep_moved = _gather_runs(row_filter, starts, stops)
        moved += keep_moved
    else:
        keep = filter_slice
    if keep is not None:
        flat_codes = flat_codes[keep]
        moved += int(flat_codes.nbytes)
    flat = np.bincount(flat_codes, minlength=num_candidates * num_groups)
    counts = flat.reshape(num_candidates, num_groups).astype(np.int64, copy=False)
    return counts, moved


#: The kernel registry :func:`count_window` dispatches through.
KERNEL_REGISTRY = {
    "classic": _classic_kernel,
    "narrow": _narrow_kernel,
    "fused": _fused_kernel,
}


def count_window(
    z: np.ndarray,
    x: np.ndarray,
    blocks: np.ndarray,
    layout: BlockLayout,
    num_candidates: int,
    num_groups: int,
    *,
    row_filter: np.ndarray | None = None,
    filter_slice: np.ndarray | None = None,
    codes: np.ndarray | None = None,
    kernel: str = "auto",
) -> tuple[np.ndarray, int]:
    """Count ``(z, x)`` pairs of the rows covered by ``blocks``.

    The shared entry point of every backend's window counting: resolves
    ``kernel`` (see :func:`resolve_kernel`), dispatches to the registry,
    and returns the int64 ``(num_candidates, num_groups)`` count matrix
    plus the bytes the kernel materialized.

    The filter comes either as ``row_filter`` (a full-table boolean mask)
    or ``filter_slice`` (a mask already aligned to the blocks' rows in
    block order) — mutually exclusive, same arithmetic.  ``codes`` is the
    prepared pair-code column (:func:`build_pair_codes`) enabling the
    fused kernel.
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    if blocks.size == 0:
        return np.zeros((num_candidates, num_groups), dtype=np.int64), 0
    kind = resolve_kernel(kernel, num_candidates, num_groups, codes=codes)
    return KERNEL_REGISTRY[kind](
        z, x, blocks, layout, num_candidates, num_groups,
        row_filter, filter_slice, codes,
    )
