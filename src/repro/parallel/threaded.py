"""The thread-pool execution backend: GIL-releasing kernels, no fork, no shm.

:class:`ThreadPoolBackend` implements the full
:class:`~repro.parallel.backend.ExecutionBackend` surface over a
:class:`concurrent.futures.ThreadPoolExecutor`.  The counting hot path —
gather the shard's rows, filter, ``np.bincount`` the pair codes
(:func:`~repro.parallel.worker.count_shard`) — spends its time inside NumPy
C loops that release the GIL on non-trivial inputs, so threads counting
different shards genuinely overlap on a multi-core machine.

Compared to the process-based :class:`~repro.parallel.sharded.ShardedBackend`:

- **no fork, no /dev/shm** — workers are threads in the coordinator's own
  address space, so the backend works on fork-unfriendly platforms
  (macOS/Windows spawn, embedded interpreters) and needs no shared-memory
  publication, pinning, or epoch GC;
- **zero serialization** — shards see the coordinator's columns directly;
  there is no task pickling and no per-dataset publish step, so the
  backend has no warm-up cliff;
- **natural fit for concurrent steps** — when a front door runs steps of
  different sessions concurrently (``max_concurrent_steps > 1``), each
  step's windows fan out into one shared executor; thread workers compose
  with that, where a per-session process pool would multiply.

The trade-off is the GIL itself: the Python glue around each kernel call
still serializes, so pure-Python-heavy workloads scale worse than the
process pool.  The arithmetic is the same :func:`count_shard` kernel over
the same row partition with the same exact integer merge
(:class:`~repro.parallel.merge.ShardMerger`), so results are byte-identical
to serial execution.

Every public method is safe to call from multiple threads at once — the
backend is shared by all sessions of a registry, and concurrent steps hit
it concurrently.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..obs.profiler import NULL_PROFILER
from ..storage.blocks import BlockLayout
from .affinity import AFFINITY_POLICIES, apply_affinity, plan_affinity
from .backend import CountSource, ExecutionBackend
from .kernels import count_window
from .merge import ShardMerger
from .shard import ShardPlanner
from .sharded import DEFAULT_MIN_SHARD_ROWS, EXACT_PASS_BLOCK_ROWS
from .worker import ShardResult

__all__ = ["ThreadPoolBackend"]


class ThreadPoolBackend(ExecutionBackend):
    """In-process multi-threaded counting behind the backend seam.

    Parameters
    ----------
    n_workers:
        Thread count (default: the machine's CPU count).  The executor is
        created lazily on the first window large enough to shard.
    min_shard_rows:
        Minimum average rows per shard worth a hop to the executor;
        windows below ``n_workers * min_shard_rows`` rows are counted
        inline with the identical kernel.  Set to 0 to force every window
        through the executor (equivalence tests, ``--tiny`` benchmarks).
    cpu_affinity:
        Optional worker-placement policy (``"spread"`` / ``"compact"``, see
        :mod:`~repro.parallel.affinity`): each executor thread pins itself
        to one CPU at startup.  Best-effort — a no-op on platforms without
        :func:`os.sched_setaffinity`.
    """

    name = "threads"

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        min_shard_rows: int = DEFAULT_MIN_SHARD_ROWS,
        cpu_affinity: str | None = None,
    ) -> None:
        resolved = n_workers if n_workers is not None else (os.cpu_count() or 1)
        if resolved < 1:
            raise ValueError(f"n_workers must be >= 1, got {resolved}")
        if min_shard_rows < 0:
            raise ValueError(f"min_shard_rows must be >= 0, got {min_shard_rows}")
        if cpu_affinity is not None and cpu_affinity not in AFFINITY_POLICIES:
            raise ValueError(
                f"cpu_affinity must be one of {AFFINITY_POLICIES}, got {cpu_affinity!r}"
            )
        self.n_workers = resolved
        self.min_shard_rows = min_shard_rows
        self.cpu_affinity = cpu_affinity
        self.affinity_applied = 0
        self.planner = ShardPlanner(resolved)
        self.shard_tasks = 0
        self.inline_windows = 0
        self.closed = False
        self._lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        self._affinity_next = 0

    # -------------------------------------------------------------- executor

    def _pin_worker_thread(self, cpusets: list[set[int]]) -> None:
        """Executor-thread initializer: pin the calling thread to its CPU."""
        with self._lock:
            index = self._affinity_next
            self._affinity_next += 1
        if apply_affinity(0, cpusets[index % len(cpusets)]):
            with self._lock:
                self.affinity_applied += 1

    @property
    def executor(self) -> ThreadPoolExecutor:
        """The shared counting executor, created on first use."""
        with self._lock:
            if self.closed:
                raise RuntimeError("ThreadPoolBackend is closed")
            if self._executor is None:
                cpusets = plan_affinity(self.cpu_affinity, self.n_workers)
                kwargs = {}
                if cpusets:
                    kwargs["initializer"] = self._pin_worker_thread
                    kwargs["initargs"] = (cpusets,)
                self._executor = ThreadPoolExecutor(
                    max_workers=self.n_workers,
                    thread_name_prefix="repro-count",
                    **kwargs,
                )
            return self._executor

    # --------------------------------------------------------------- counting

    def _count_sharded(
        self,
        z: np.ndarray,
        x: np.ndarray,
        blocks: np.ndarray,
        layout: BlockLayout,
        num_candidates: int,
        num_groups: int,
        row_filter: np.ndarray | None,
        span_name: str = "backend.window",
        profiler=NULL_PROFILER,
        codes: np.ndarray | None = None,
        kernel: str = "auto",
    ) -> np.ndarray:
        """Plan shards, count each on the executor, merge exactly.

        Threads read the coordinator's arrays directly — no refs, no
        copies.  Shard ids are allocated under the lock so concurrent
        callers (steps of different sessions) never collide.
        """
        traced = self.tracer.enabled
        wall0 = float(time.monotonic_ns()) if traced else 0.0
        started = time.perf_counter_ns() if profiler.enabled else 0
        shards = self.planner.plan(blocks, layout)
        with self._lock:
            base_id = self.shard_tasks
            self.shard_tasks += len(shards)
        executor = self.executor
        futures = [
            executor.submit(
                count_window,
                z,
                x,
                shard.blocks,
                layout,
                num_candidates,
                num_groups,
                row_filter=row_filter,
                codes=codes,
                kernel=kernel,
            )
            for shard in shards
        ]
        results = []
        for i, future in enumerate(futures):
            counts, moved = future.result()
            results.append(
                ShardResult(
                    task_id=base_id + i,
                    counts=counts,
                    rows=int(counts.sum()),
                    moved_bytes=moved,
                )
            )
        merger = ShardMerger(num_candidates, num_groups)
        merged = merger.merge(results)
        if profiler.enabled:
            counted = sum(result.rows for result in results)
            profiler.record_kernel(
                "threads.shards",
                float(time.perf_counter_ns() - started),
                rows=counted,
                blocks=int(blocks.size),
                nbytes=sum(result.moved_bytes for result in results),
                bincounts=len(shards),
            )
        if traced:
            self.tracer.span_at(
                span_name,
                wall0,
                float(time.monotonic_ns()),
                clock="monotonic",
                backend=self.name,
                shards=len(shards),
                rows=sum(result.rows for result in results),
            )
        return merged

    def count_blocks(
        self, source: CountSource, blocks: np.ndarray
    ) -> tuple[np.ndarray, float]:
        cost = source.io.read_cost(blocks)
        layout = source.shuffled.layout
        total_rows = int(layout.rows_per_block(blocks).sum())
        z = source.shuffled.table.column(source.z_name)
        x = source.shuffled.table.column(source.x_name)
        profiler = source.profiler
        if total_rows < max(1, self.n_workers * self.min_shard_rows):
            # Inline fallback: same kernel, same rows, no executor hop.
            with self._lock:
                self.inline_windows += 1
            started = time.perf_counter_ns() if profiler.enabled else 0
            counts, moved = count_window(
                z,
                x,
                blocks,
                layout,
                source.num_candidates,
                source.num_groups,
                row_filter=source.row_filter,
                codes=source.codes,
                kernel=source.kernel,
            )
            if profiler.enabled:
                profiler.record_kernel(
                    "threads.inline",
                    float(time.perf_counter_ns() - started),
                    rows=int(counts.sum()),
                    blocks=int(blocks.size),
                    nbytes=moved,
                    bincounts=1,
                )
            return counts, cost
        counts = self._count_sharded(
            z,
            x,
            blocks,
            layout,
            source.num_candidates,
            source.num_groups,
            source.row_filter,
            profiler=profiler,
            codes=source.codes,
            kernel=source.kernel,
        )
        return counts, cost

    # ------------------------------------------------------------ table level

    def count_table(
        self,
        table,
        z_name: str,
        x_name: str,
        num_candidates: int,
        num_groups: int,
        row_filter: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact whole-table counts, sharded across the executor.

        Rows are partitioned under a synthetic block layout and counted by
        the same kernel as the sampling path; exact integer sums over the
        disjoint partition keep the merged matrix byte-identical to the
        serial pass.
        """
        num_rows = table.num_rows
        if num_rows < max(1, self.n_workers * self.min_shard_rows):
            return super().count_table(
                table, z_name, x_name, num_candidates, num_groups, row_filter
            )
        layout = BlockLayout(num_rows, EXACT_PASS_BLOCK_ROWS)
        return self._count_sharded(
            table.column(z_name),
            table.column(x_name),
            np.arange(layout.num_blocks, dtype=np.int64),
            layout,
            num_candidates,
            num_groups,
            row_filter,
            span_name="backend.table",
            profiler=self.profiler,
        )

    # --------------------------------------------------------------- lifecycle

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "workers": self.n_workers,
            "min_shard_rows": self.min_shard_rows,
            "shard_tasks": self.shard_tasks,
            "cpu_affinity": self.cpu_affinity or "none",
            "affinity_applied": self.affinity_applied,
        }

    def close(self) -> None:
        """Shut the executor down.  Idempotent."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
