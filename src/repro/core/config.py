"""Configuration for HistSim / FastMatch runs (paper Table 1 parameters).

Defaults mirror Section 5.2: ``δ = 0.01``, ``ε = 0.04``, ``σ = 0.0008``,
``m = 5·10⁵`` stage-1 samples, ``lookahead = 1024`` blocks.  The stage-1
sample count is additionally capped at a fraction of the dataset so that the
same configuration behaves sensibly on laptop-scale synthetic data (the
paper's footnote: m must be neither too small nor "a nontrivial fraction of
the data").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["HistSimConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class HistSimConfig:
    """User-supplied parameters of Problem 1 plus system knobs.

    Attributes
    ----------
    k:
        Number of matching histograms to retrieve.
    epsilon:
        Approximation error upper bound ε shared by Guarantees 1 and 2.
        (Use :mod:`repro.extensions.dual_epsilon` for distinct ε1/ε2.)
    delta:
        Total error-probability budget δ; each stage spends δ/3.
    sigma:
        Selectivity threshold below which candidates may be pruned.
    stage1_samples:
        Stage-1 uniform sample count ``m`` (paper default 5·10⁵).
    stage1_max_fraction:
        Cap on ``m`` as a fraction of the dataset, so the prune stage never
        degenerates into a near-complete scan on small (simulated) datasets.
    lookahead:
        Number of blocks marked per batch by the asynchronous block-selection
        thread (Section 4.2, Challenge 4).
    round_budget_factor:
        Oversampling multiplier on Eq. 1's per-round budgets.  Eq. 1 sizes
        ``n'_i`` so that an observed margin exactly equal to the estimated
        margin lands the P-value exactly at δ_upper — a knife's edge where
        each candidate clears only with probability ~1/2 and the joint test
        of Lemma 4 essentially never rejects.  A factor of 4 lets the
        observed margin shrink to half its estimate before the candidate's
        test fails; the paper's C++ system gets equivalent slack implicitly
        by sampling at block granularity (its rounds overshoot Eq. 1 too,
        terminating "within 4 or 5 iterations in practice", Section 3.5).
    round_budget_cap:
        Cap on any single candidate's round budget, expressed as a multiple
        of the stage-3 reconstruction target and *doubling every round*
        (iterative deepening).  Eq. 1 budgets assume the margin estimates
        are exact; right after stage 1 a candidate may have only dozens of
        samples, and a noisy margin can demand a full-scan-sized budget in
        one round.  The paper's setting hides this (a misbudget costs a few
        percent of a 600M-row scan); at laptop scale it forces full passes.
        Capping keeps early rounds cheap, and genuinely hard boundaries
        still get exponentially growing budgets — with total work within 2×
        of the uncapped final round.  Correctness is unaffected: the paper
        proves HistSim correct for *any* per-round sample counts.
        Set to ``math.inf`` to disable.
    min_round_samples:
        Floor on the per-round fresh-sample budget, preventing degenerate
        rounds when every margin ε'_i is huge.
    max_rounds:
        Safety valve on stage-2 rounds; the paper observes 4–5 rounds in
        practice.  Hitting the cap falls back to an exhaustive scan, which is
        always correct.
    """

    k: int = 10
    epsilon: float = 0.04
    delta: float = 0.01
    sigma: float = 0.0008
    stage1_samples: int = 500_000
    stage1_max_fraction: float = 0.1
    lookahead: int = 1024
    round_budget_factor: float = 4.0
    round_budget_cap: float = 1.0
    min_round_samples: int = 256
    max_rounds: int = 64

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if not 0.0 < self.epsilon < 2.0:
            raise ValueError(f"epsilon must be in (0, 2), got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")
        if not 0.0 <= self.sigma <= 1.0:
            raise ValueError(f"sigma must be in [0, 1], got {self.sigma}")
        if self.stage1_samples < 1:
            raise ValueError(f"stage1_samples must be >= 1, got {self.stage1_samples}")
        if not 0.0 < self.stage1_max_fraction <= 1.0:
            raise ValueError(
                f"stage1_max_fraction must be in (0, 1], got {self.stage1_max_fraction}"
            )
        if self.lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {self.lookahead}")
        if self.round_budget_factor < 1.0:
            raise ValueError(
                f"round_budget_factor must be >= 1, got {self.round_budget_factor}"
            )
        if self.round_budget_cap <= 0:
            raise ValueError(
                f"round_budget_cap must be positive, got {self.round_budget_cap}"
            )
        if self.min_round_samples < 1:
            raise ValueError(
                f"min_round_samples must be >= 1, got {self.min_round_samples}"
            )
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")

    @property
    def stage_delta(self) -> float:
        """Per-stage error budget δ/3 (Algorithm 1 lines 5, 12, 26)."""
        return self.delta / 3.0

    def effective_stage1_samples(self, total_rows: int) -> int:
        """Stage-1 sample count after applying the dataset-fraction cap."""
        cap = max(1, int(self.stage1_max_fraction * total_rows))
        return max(1, min(self.stage1_samples, cap, total_rows))

    def with_(self, **changes) -> "HistSimConfig":
        """Functional update, e.g. ``config.with_(epsilon=0.08)``."""
        return replace(self, **changes)


#: Paper Section 5.2 defaults.
DEFAULT_CONFIG = HistSimConfig()
