"""Stage-1 under-representation test (paper Section 3.3).

After drawing ``m`` tuples uniformly without replacement from a table of
``N`` tuples, the count ``n_i`` of tuples belonging to candidate ``i`` follows
``HypGeo(N, N_i, m)``.  The null hypothesis "candidate ``i`` is *not* rare"
(``N_i ≥ ⌈σN⌉``) is rejected when the left tail

    P( HypGeo(N, ⌈σN⌉, m) ≤ n_i )

is small: observing so few tuples would be surprising if the candidate truly
had selectivity at least σ.  The tail is stochastically smallest at
``N_i = ⌈σN⌉`` over the null region, so this P-value is valid for the whole
composite null.

The paper notes that stage 1 shares computation across candidates by sorting
them by ``n_i`` and evaluating at most ``max_i n_i`` pdf terms;
:func:`underrepresentation_pvalues` does exactly that with one vectorized CDF
evaluation over the distinct observed counts.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import hypergeom

__all__ = [
    "rare_threshold",
    "underrepresentation_pvalue",
    "underrepresentation_pvalues",
]


def rare_threshold(total_rows: int, sigma: float) -> int:
    """``⌈σN⌉`` — the smallest candidate size that does *not* count as rare."""
    if total_rows < 0:
        raise ValueError(f"total_rows must be non-negative, got {total_rows}")
    if not 0.0 <= sigma <= 1.0:
        raise ValueError(f"sigma must be in [0, 1], got {sigma}")
    return int(np.ceil(sigma * total_rows))


def underrepresentation_pvalue(
    observed: int, total_rows: int, sigma: float, sample_size: int
) -> float:
    """P-value of the under-representation test for a single candidate."""
    return float(
        underrepresentation_pvalues(
            np.asarray([observed]), total_rows, sigma, sample_size
        )[0]
    )


def underrepresentation_pvalues(
    observed: np.ndarray, total_rows: int, sigma: float, sample_size: int
) -> np.ndarray:
    """Vectorized stage-1 P-values ``Σ_{j≤n_i} f(j; N, ⌈σN⌉, m)`` for all candidates.

    Shares computation across candidates: the hypergeometric CDF is evaluated
    once per *distinct* observed count, then broadcast back, mirroring the
    paper's shared-computation optimization (Section 3.5, "Computational
    Complexity").
    """
    counts = np.asarray(observed)
    if counts.ndim != 1:
        raise ValueError("observed must be a 1-D array of per-candidate counts")
    if np.any(counts < 0):
        raise ValueError("observed counts must be non-negative")
    if sample_size < 0:
        raise ValueError(f"sample_size must be non-negative, got {sample_size}")
    if sample_size > total_rows:
        raise ValueError(
            f"cannot draw {sample_size} samples without replacement from {total_rows} rows"
        )

    threshold = rare_threshold(total_rows, sigma)
    if threshold == 0:
        # sigma == 0: nothing is rare; the null (N_i >= 0) always holds and
        # the left tail at any count is 1.
        return np.ones_like(counts, dtype=np.float64)

    unique_counts, inverse = np.unique(counts, return_inverse=True)
    tail = hypergeom.cdf(unique_counts, total_rows, threshold, sample_size)
    # Numerical guard: scipy can return tiny negatives near zero.
    tail = np.clip(tail, 0.0, 1.0)
    return tail[inverse]
