"""Auditing a run against the paper's guarantees (Section 2.2 and 5.3).

These helpers are evaluation-side: they compare a :class:`MatchResult`
against exact ground truth (from :mod:`repro.query.executor`) to decide
whether Guarantee 1 (separation) and Guarantee 2 (reconstruction) held, and
compute the Δd metric of Section 5.3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distance import candidate_distances, l1_distance
from .result import MatchResult

__all__ = ["GuaranteeAudit", "audit_result", "true_top_k", "delta_d"]


def true_top_k(
    exact_counts: np.ndarray,
    target: np.ndarray,
    k: int,
    sigma: float = 0.0,
) -> np.ndarray:
    """Exact top-k candidate indices among those meeting the selectivity threshold.

    This is ``M*`` as computed by the Scan baseline: candidates with
    ``N_i/N < σ`` are excluded exactly, the rest ranked by true distance.
    """
    exact_counts = np.asarray(exact_counts, dtype=np.float64)
    rows = exact_counts.sum(axis=1)
    total = rows.sum()
    if total <= 0:
        raise ValueError("exact counts are empty")
    eligible = rows / total >= sigma if sigma > 0 else np.ones(rows.size, dtype=bool)
    eligible &= rows > 0
    distances = candidate_distances(exact_counts, target)
    distances = np.where(eligible, distances, np.inf)
    order = np.argsort(distances, kind="stable")
    count = min(k, int(eligible.sum()))
    return order[:count]


def delta_d(
    returned: np.ndarray,
    exact_counts: np.ndarray,
    target: np.ndarray,
    k: int,
    sigma: float = 0.0,
) -> float:
    """Total relative error in visual distance, Δd (Section 5.3).

    ``Δd = (Σ_{i∈M} d(r*_i, q) − Σ_{j∈M*} d(r*_j, q)) / Σ_{j∈M*} d(r*_j, q)``
    where ``M*`` is the exact top-k among candidates meeting the selectivity
    threshold.  We evaluate the returned candidates at their *true* distances
    so Δd measures selection quality, not estimation noise; it can be
    negative when the approximate approach returns a low-selectivity
    candidate that is genuinely closer (the paper notes exactly this).
    """
    truth = true_top_k(exact_counts, target, k, sigma)
    distances = candidate_distances(exact_counts, target)
    truth_sum = float(distances[truth].sum())
    returned_sum = float(distances[np.asarray(returned, dtype=np.intp)].sum())
    if truth_sum == 0:
        return 0.0 if returned_sum == 0 else float("inf")
    return (returned_sum - truth_sum) / truth_sum


@dataclass(frozen=True)
class GuaranteeAudit:
    """Outcome of checking one run against both guarantees."""

    separation_ok: bool
    reconstruction_ok: bool
    delta_d: float
    worst_output_distance: float
    worst_reconstruction_error: float

    @property
    def ok(self) -> bool:
        return self.separation_ok and self.reconstruction_ok


def audit_result(
    result: MatchResult,
    exact_counts: np.ndarray,
    target: np.ndarray,
    epsilon: float,
    sigma: float,
) -> GuaranteeAudit:
    """Check Guarantees 1 and 2 for a finished run against exact ground truth.

    Guarantee 1 (separation): for every candidate ``i`` not in the output
    with selectivity ``N_i/N ≥ σ``,
    ``max_{l ∈ output} d(r*_l, q) − d(r*_i, q) < ε``.

    Guarantee 2 (reconstruction): every output histogram satisfies
    ``d(r_i, r*_i) < ε``.
    """
    exact_counts = np.asarray(exact_counts, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    returned = np.asarray(result.matching, dtype=np.intp)

    true_distances = candidate_distances(exact_counts, target)
    rows = exact_counts.sum(axis=1)
    total = rows.sum()

    if returned.size == 0:
        # Empty output is separation-correct only if every candidate is
        # below the selectivity threshold.
        eligible = rows / total >= sigma
        return GuaranteeAudit(
            separation_ok=not bool(np.any(eligible)),
            reconstruction_ok=True,
            delta_d=0.0,
            worst_output_distance=float("nan"),
            worst_reconstruction_error=0.0,
        )

    worst_output = float(true_distances[returned].max())
    outside = np.setdiff1d(np.arange(rows.size), returned, assume_unique=False)
    eligible_outside = outside[rows[outside] / total >= sigma] if sigma > 0 else outside
    if eligible_outside.size:
        separation_ok = bool(
            worst_output - float(true_distances[eligible_outside].min()) < epsilon
        )
    else:
        separation_ok = True

    worst_reconstruction = 0.0
    for position, candidate in enumerate(returned):
        err = l1_distance(result.histograms[position], exact_counts[candidate])
        worst_reconstruction = max(worst_reconstruction, err)
    reconstruction_ok = worst_reconstruction < epsilon

    return GuaranteeAudit(
        separation_ok=separation_ok,
        reconstruction_ok=reconstruction_ok,
        delta_d=delta_d(returned, exact_counts, target, result.k, sigma),
        worst_output_distance=worst_output,
        worst_reconstruction_error=worst_reconstruction,
    )
