"""Family-wise error control (paper Section 3.2 and Lemma 4).

Two testers are used by HistSim:

- :func:`holm_bonferroni` — stage 1 rejects a *subset* of "candidate i is not
  rare" nulls while controlling family-wise type-1 error.  Holm's step-down
  procedure is uniformly more powerful than plain Bonferroni and valid under
  arbitrary dependence.
- :func:`simultaneous_rejection` — stage 2's all-or-nothing
  union-intersection tester (Lemma 4): reject *every* null iff
  ``max_i p_i ≤ δ_upper``; this rejects at least one true null with
  probability at most ``δ_upper``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "holm_bonferroni",
    "bonferroni",
    "simultaneous_rejection",
    "simultaneous_rejection_log",
]


def _validate_pvalues(pvalues: np.ndarray) -> np.ndarray:
    p = np.asarray(pvalues, dtype=np.float64)
    if p.ndim != 1:
        raise ValueError("p-values must form a 1-D array")
    if p.size and (np.any(p < 0) or np.any(p > 1) or np.any(np.isnan(p))):
        raise ValueError("p-values must lie in [0, 1]")
    return p


def _validate_level(alpha: float) -> None:
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"significance level must be in (0, 1), got {alpha}")


def holm_bonferroni(pvalues: np.ndarray, alpha: float) -> np.ndarray:
    """Holm's step-down procedure at family-wise level ``alpha``.

    Returns a boolean mask of rejected hypotheses.  Sort the P-values
    ascending; walking up, the j-th smallest (1-based) rejects while
    ``p_(j) ≤ alpha / (n − j + 1)``; the first failure stops all further
    rejections (paper Section 3.2).
    """
    p = _validate_pvalues(pvalues)
    _validate_level(alpha)
    n = p.size
    rejected = np.zeros(n, dtype=bool)
    if n == 0:
        return rejected
    order = np.argsort(p, kind="stable")
    thresholds = alpha / (n - np.arange(n))
    passes = p[order] <= thresholds
    # np.argmin on an all-True array returns 0; cumprod handles the step-down.
    still_rejecting = np.cumprod(passes).astype(bool)
    rejected[order[still_rejecting]] = True
    return rejected


def bonferroni(pvalues: np.ndarray, alpha: float) -> np.ndarray:
    """Plain Bonferroni at level ``alpha`` (reference baseline for tests)."""
    p = _validate_pvalues(pvalues)
    _validate_level(alpha)
    if p.size == 0:
        return np.zeros(0, dtype=bool)
    return p <= alpha / p.size


def simultaneous_rejection(pvalues: np.ndarray, delta_upper: float) -> bool:
    """Lemma 4's all-or-nothing tester: reject all nulls iff ``max p_i ≤ δ_upper``."""
    p = _validate_pvalues(pvalues)
    _validate_level(delta_upper)
    if p.size == 0:
        return True
    return bool(np.max(p) <= delta_upper)


def simultaneous_rejection_log(log_pvalues: np.ndarray, delta_upper: float) -> bool:
    """Log-space variant of :func:`simultaneous_rejection`.

    Stage-2 P-values of the form ``2^|V_X|·exp(−ε²n/2)`` are computed in log
    space to avoid overflow at large ``|V_X|``; the comparison happens there
    too.  An empty family rejects vacuously.
    """
    _validate_level(delta_upper)
    log_p = np.asarray(log_pvalues, dtype=np.float64)
    if log_p.ndim != 1:
        raise ValueError("log p-values must form a 1-D array")
    if log_p.size == 0:
        return True
    if np.any(np.isnan(log_p)) or np.any(log_p > 0.0 + 1e-12):
        raise ValueError("log p-values must be <= 0 and not NaN")
    return bool(np.max(log_p) <= np.log(delta_upper))
