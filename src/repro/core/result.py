"""Result containers for HistSim runs: outputs plus per-stage diagnostics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RoundTrace", "StageStats", "MatchResult"]


@dataclass(frozen=True)
class RoundTrace:
    """Diagnostics for one stage-2 round (Algorithm 1 lines 13–24)."""

    round_index: int
    delta_upper: float
    split_point: float
    matching: tuple[int, ...]
    budget_total: int
    fresh_samples: int
    max_log_pvalue: float
    rejected: bool


@dataclass(frozen=True)
class StageStats:
    """Sampling effort per stage, for the cost model and the benchmarks."""

    stage1_samples: int = 0
    stage2_samples: int = 0
    stage3_samples: int = 0
    pruned_candidates: int = 0
    surviving_candidates: int = 0
    rounds: int = 0

    @property
    def total_samples(self) -> int:
        return self.stage1_samples + self.stage2_samples + self.stage3_samples


@dataclass(frozen=True)
class MatchResult:
    """Output of a HistSim / FastMatch run.

    Attributes
    ----------
    matching:
        Candidate indices of the estimated top-k, ordered by estimated
        distance (closest first).
    histograms:
        Estimated count vectors ``r_i`` for each matching candidate, aligned
        with ``matching`` (these are the approximate visualizations shown to
        the analyst).
    distances:
        Estimated distances ``τ_i = d(r_i, q)`` aligned with ``matching``.
    pruned:
        Candidate indices removed by stage 1 as likely rare.
    exact:
        True when the run degenerated into a full scan (finite data
        exhausted), in which case the output is exactly correct.
    stats:
        Per-stage sampling effort.
    rounds:
        Stage-2 round traces.
    """

    matching: tuple[int, ...]
    histograms: np.ndarray
    distances: np.ndarray
    pruned: tuple[int, ...]
    exact: bool
    stats: StageStats
    rounds: tuple[RoundTrace, ...] = field(default_factory=tuple)

    @property
    def k(self) -> int:
        return len(self.matching)

    def histogram_for(self, candidate: int) -> np.ndarray:
        """The estimated histogram of a matching candidate, by candidate index."""
        try:
            position = self.matching.index(candidate)
        except ValueError:
            raise KeyError(f"candidate {candidate} is not in the matching set") from None
        return self.histograms[position]
