"""The HistSim algorithm (paper Algorithm 1, Section 3).

Three stages, each spending an error budget of δ/3:

1. **Prune rare candidates** — ``m`` uniform samples; hypergeometric
   under-representation P-values; Holm–Bonferroni rejection removes
   candidates that are rare (``N_i/N < σ``) with family-wise confidence.
2. **Identify the top-k** — rounds of fresh samples.  Each round picks the
   empirical matching set ``M`` and a split point ``s``, budgets fresh
   samples per candidate (Eq. 1), then runs the union-intersection test of
   Lemma 4 with P-values from Theorem 1's concentration bound.  ``δ_upper``
   halves each round so the union over rounds stays below δ/3.
3. **Reconstruct the top-k** — sample until every matching candidate has
   ``n_i ≥ (2/ε²)(|V_X| ln 2 + ln(3k/δ))`` cumulative samples.

Finite-data handling (DESIGN.md §5): a candidate whose rows are exhausted has
an exact histogram; the split-point construction makes its round null
provably false, so its P-value is 0.  If the sampler exhausts the whole
dataset the run short-circuits to exact results.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .config import HistSimConfig
from .deviation import (
    deviation_log_pvalue,
    stage2_sample_budget,
    stage3_sample_target,
)
from .hypergeometric import underrepresentation_pvalues
from .multiple_testing import holm_bonferroni, simultaneous_rejection_log
from .result import MatchResult, RoundTrace, StageStats
from .sampler import TupleSampler
from .state import CandidateState

__all__ = ["HistSim", "run_histsim", "select_matching", "split_point"]

#: Optional hook invoked with (stage_name, num_scalar_ops) so the simulated
#: clock can charge statistics-engine time (Section 4.3).
StatsCostHook = Callable[[str, int], None]


def select_matching(distances: np.ndarray, alive: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest distance estimates among alive candidates.

    Ties break by candidate index (stable), matching Definition 3.  Returns
    fewer than ``k`` indices when fewer candidates are alive.
    """
    alive_idx = np.flatnonzero(alive)
    if alive_idx.size <= k:
        order = np.argsort(distances[alive_idx], kind="stable")
        return alive_idx[order]
    order = np.argsort(distances[alive_idx], kind="stable")[:k]
    return alive_idx[order]


def split_point(distances: np.ndarray, matching: np.ndarray, others: np.ndarray) -> float:
    """Algorithm 1 line 18: midpoint between the farthest of ``M`` and nearest of ``A\\M``."""
    if matching.size == 0 or others.size == 0:
        raise ValueError("split point requires both M and A\\M to be non-empty")
    return 0.5 * (float(distances[matching].max()) + float(distances[others].min()))


class HistSim:
    """Run Algorithm 1 against any :class:`~repro.core.sampler.TupleSampler`.

    Parameters
    ----------
    sampler:
        Source of uniform without-replacement tuples.
    target:
        The visual target ``q`` (raw counts or a distribution; it is
        normalized internally).
    config:
        ``k``, ``ε``, ``δ``, ``σ`` and system knobs.
    stats_cost:
        Optional hook charging statistics-engine work to a simulated clock.
    """

    def __init__(
        self,
        sampler: TupleSampler,
        target: np.ndarray,
        config: HistSimConfig,
        stats_cost: StatsCostHook | None = None,
    ) -> None:
        target = np.asarray(target, dtype=np.float64)
        if target.ndim != 1 or target.shape[0] != sampler.num_groups:
            raise ValueError(
                f"target must have {sampler.num_groups} entries, got shape {target.shape}"
            )
        if target.sum() <= 0 or np.any(target < 0):
            raise ValueError("target must be non-negative with positive mass")
        self.sampler = sampler
        self.target = target
        self.config = config
        self._stats_cost = stats_cost or (lambda stage, ops: None)
        self.state = CandidateState(
            sampler.num_candidates, sampler.num_groups, sampler.candidate_rows()
        )
        self.alive = np.ones(sampler.num_candidates, dtype=bool)
        self.rounds: list[RoundTrace] = []

    # ------------------------------------------------------------------ stage 1

    def run_stage1(self) -> np.ndarray:
        """Prune likely-rare candidates; returns the pruned mask."""
        cfg = self.config
        n_total = self.sampler.total_rows
        m = cfg.effective_stage1_samples(n_total)
        counts = self.sampler.sample_uniform(m)
        observed = counts.sum(axis=1)
        self.state.counts += counts
        self.state.samples += observed

        delivered = int(observed.sum())
        pvalues = underrepresentation_pvalues(observed, n_total, cfg.sigma, delivered)
        pruned = holm_bonferroni(pvalues, cfg.stage_delta)
        self._stats_cost(
            "stage1", int(observed.max(initial=0)) + self.alive.size
        )
        self.alive &= ~pruned
        return pruned

    # ------------------------------------------------------------------ stage 2

    def _round_budgets(
        self,
        tau: np.ndarray,
        matching: np.ndarray,
        others: np.ndarray,
        s: float,
        delta_upper: float,
        round_index: int,
    ) -> np.ndarray:
        """Eq. 1 fresh-sample budgets ``n'_i`` for one round (heuristic, §4.2).

        Budgets are capped by an iterative-deepening ceiling (a multiple of
        the stage-3 target, doubling per round) so that margin estimates
        that are still noisy right after stage 1 cannot demand a full-scan-
        sized budget in one round; see HistSimConfig.round_budget_cap.
        """
        cfg = self.config
        margins = np.zeros(self.alive.size, dtype=np.float64)
        margins[matching] = s + cfg.epsilon / 2.0 - tau[matching]
        margins[others] = tau[others] - (s - cfg.epsilon / 2.0)
        budgets = np.zeros(self.alive.size, dtype=np.float64)
        idx = np.concatenate([matching, others])
        budgets[idx] = cfg.round_budget_factor * stage2_sample_budget(
            margins[idx], delta_upper, self.sampler.num_groups
        )
        if np.isfinite(cfg.round_budget_cap):
            ceiling = (
                cfg.round_budget_cap
                * stage3_sample_target(
                    cfg.epsilon, cfg.delta, cfg.k, self.sampler.num_groups
                )
                * 2.0 ** (round_index - 1)
            )
            budgets[idx] = np.minimum(budgets[idx], ceiling)
        budgets[idx] = np.maximum(budgets[idx], cfg.min_round_samples)
        # Exhausted candidates cannot yield fresh rows; their test is settled
        # by exactness instead.
        budgets[self.state.exhausted()] = 0.0
        return budgets

    def _round_log_pvalues(
        self, matching: np.ndarray, others: np.ndarray, s: float
    ) -> np.ndarray:
        """P-values (log) of the round's null hypotheses (Lemmas 2–3, Theorem 1)."""
        cfg = self.config
        tau_round = self.state.round_distances(self.target)
        eps_test = np.full(self.alive.size, -np.inf, dtype=np.float64)
        eps_test[matching] = s + cfg.epsilon / 2.0 - tau_round[matching]
        if s - cfg.epsilon / 2.0 >= 0.0:
            eps_test[others] = tau_round[others] - (s - cfg.epsilon / 2.0)
        else:
            # Null ``τ* ≤ s − ε/2 < 0`` is vacuously false (Algorithm 1, line 22).
            eps_test[others] = np.inf
        log_p = deviation_log_pvalue(
            eps_test, self.state.round_samples, self.sampler.num_groups
        )
        # Exhausted candidates have exact τ; the split-point construction
        # places their true distance on the correct side of s, so the null is
        # certainly false (DESIGN.md §5).
        log_p = np.asarray(log_p, dtype=np.float64)
        log_p[self.state.exhausted()] = -np.inf
        return log_p

    def run_stage2(self) -> np.ndarray:
        """Identify the matching set ``M``; returns matching candidate indices."""
        cfg = self.config
        alive_count = int(self.alive.sum())
        if alive_count <= cfg.k:
            # A \ M is empty: separation holds vacuously (Lemma 2 degenerate).
            tau = self.state.distances(self.target)
            return select_matching(tau, self.alive, alive_count)

        delta_upper = cfg.stage_delta
        for round_index in range(1, cfg.max_rounds + 1):
            delta_upper /= 2.0
            self.state.fold_round_into_cumulative()
            tau = self.state.distances(self.target)
            matching = select_matching(tau, self.alive, cfg.k)
            others = np.setdiff1d(np.flatnonzero(self.alive), matching, assume_unique=True)
            s = split_point(tau, matching, others)

            budgets = self._round_budgets(
                tau, matching, others, s, delta_upper, round_index
            )
            fresh = self.sampler.sample_until(budgets)
            self.state.record_round_counts(fresh)

            log_p = self._round_log_pvalues(matching, others, s)
            alive_idx = np.flatnonzero(self.alive)
            rejected = simultaneous_rejection_log(log_p[alive_idx], delta_upper)
            self._stats_cost(
                "stage2",
                int(self.alive.sum()) * self.sampler.num_groups
                + int(self.alive.sum() * np.log2(max(self.alive.sum(), 2))),
            )
            self.rounds.append(
                RoundTrace(
                    round_index=round_index,
                    delta_upper=delta_upper,
                    split_point=s,
                    matching=tuple(int(i) for i in matching),
                    budget_total=int(np.where(np.isfinite(budgets), budgets, 0).sum()),
                    fresh_samples=int(fresh.sum()),
                    max_log_pvalue=float(np.max(log_p[alive_idx])),
                    rejected=rejected,
                )
            )
            if rejected:
                self.state.fold_round_into_cumulative()
                return matching
            if self.sampler.fully_scanned:
                # Exact knowledge: fold and return the exact top-k.
                self.state.fold_round_into_cumulative()
                tau = self.state.distances(self.target)
                return select_matching(tau, self.alive, cfg.k)

        # Safety valve: exhaust the data, which is always correct.
        self.state.fold_round_into_cumulative()
        self.sampler.sample_until(np.full(self.alive.size, np.inf))
        self.state.fold_round_into_cumulative()
        tau = self.state.distances(self.target)
        return select_matching(tau, self.alive, cfg.k)

    # ------------------------------------------------------------------ stage 3

    def run_stage3(self, matching: np.ndarray) -> None:
        """Reconstruct every matching candidate to ε accuracy (line 26)."""
        cfg = self.config
        target_n = stage3_sample_target(
            cfg.epsilon, cfg.delta, cfg.k, self.sampler.num_groups
        )
        needed = np.zeros(self.alive.size, dtype=np.float64)
        needed[matching] = np.maximum(0, target_n - self.state.samples[matching])
        if np.any(needed > 0):
            fresh = self.sampler.sample_until(needed)
            self.state.record_round_counts(fresh)
            self.state.fold_round_into_cumulative()
        self._stats_cost("stage3", int(matching.size) * self.sampler.num_groups)

    # -------------------------------------------------------------------- run

    def run(self) -> MatchResult:
        """Execute all three stages and assemble the result."""
        before_stage1 = int(self.state.samples.sum())
        pruned_mask = self.run_stage1()
        after_stage1 = int(self.state.samples.sum())

        matching = self.run_stage2()
        after_stage2 = int(self.state.samples.sum()) + int(self.state.round_samples.sum())

        self.run_stage3(matching)
        after_stage3 = int(self.state.samples.sum())

        tau = self.state.distances(self.target)
        order = np.argsort(tau[matching], kind="stable")
        matching = matching[order]
        stats = StageStats(
            stage1_samples=after_stage1 - before_stage1,
            stage2_samples=after_stage2 - after_stage1,
            stage3_samples=after_stage3 - after_stage2,
            pruned_candidates=int(pruned_mask.sum()),
            surviving_candidates=int(self.alive.sum()),
            rounds=len(self.rounds),
        )
        return MatchResult(
            matching=tuple(int(i) for i in matching),
            histograms=self.state.counts[matching].copy(),
            distances=tau[matching].copy(),
            pruned=tuple(int(i) for i in np.flatnonzero(pruned_mask)),
            exact=self.sampler.fully_scanned,
            stats=stats,
            rounds=tuple(self.rounds),
        )


def run_histsim(
    sampler: TupleSampler,
    target: np.ndarray | Sequence[float],
    config: HistSimConfig | None = None,
    stats_cost: StatsCostHook | None = None,
) -> MatchResult:
    """Convenience wrapper: build and run a :class:`HistSim` instance."""
    return HistSim(
        sampler, np.asarray(target, dtype=np.float64), config or HistSimConfig(), stats_cost
    ).run()
