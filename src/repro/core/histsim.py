"""The HistSim algorithm (paper Algorithm 1, Section 3).

Three stages, each spending an error budget of δ/3:

1. **Prune rare candidates** — ``m`` uniform samples; hypergeometric
   under-representation P-values; Holm–Bonferroni rejection removes
   candidates that are rare (``N_i/N < σ``) with family-wise confidence.
2. **Identify the top-k** — rounds of fresh samples.  Each round picks the
   empirical matching set ``M`` and a split point ``s``, budgets fresh
   samples per candidate (Eq. 1), then runs the union-intersection test of
   Lemma 4 with P-values from Theorem 1's concentration bound.  ``δ_upper``
   halves each round so the union over rounds stays below δ/3.
3. **Reconstruct the top-k** — sample until every matching candidate has
   ``n_i ≥ (2/ε²)(|V_X| ln 2 + ln(3k/δ))`` cumulative samples.

Finite-data handling (DESIGN.md §5): a candidate whose rows are exhausted has
an exact histogram; the split-point construction makes its round null
provably false, so its P-value is 0.  If the sampler exhausts the whole
dataset the run short-circuits to exact results.

Execution model
---------------
The algorithm is a **resumable state machine**: :class:`HistSimStepper`
advances through explicit :class:`Stage1` → :class:`Stage2Round` →
:class:`Stage3` → :class:`Done` states, each :meth:`HistSimStepper.step`
performing one bounded unit of sampling + testing (the prune pass, one
stage-2 round, one stage-3 reconstruction batch).  :meth:`HistSim.run` is a
thin driver that steps the machine to completion, so one-shot callers are
unaffected while services (:mod:`repro.system.session`) can interleave many
queries' steps on a shared clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Union

import numpy as np

from ..parallel.backend import ExecutionBackend, SerialBackend
from .config import HistSimConfig
from .deviation import (
    deviation_log_pvalue,
    epsilon_given_samples,
    stage2_sample_budget,
    stage3_sample_target,
)
from .distance import candidate_distances
from .hypergeometric import underrepresentation_pvalues
from .multiple_testing import holm_bonferroni, simultaneous_rejection_log
from .result import MatchResult, RoundTrace, StageStats
from .sampler import TupleSampler
from .state import CandidateState

__all__ = [
    "HistSim",
    "HistSimStepper",
    "StepReport",
    "RoundPlan",
    "Stage1",
    "Stage2Round",
    "Stage3",
    "Done",
    "run_histsim",
    "select_matching",
    "split_point",
]

#: Optional hook invoked with (stage_name, num_scalar_ops) so the simulated
#: clock can charge statistics-engine time (Section 4.3).
StatsCostHook = Callable[[str, int], None]


def select_matching(distances: np.ndarray, alive: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest distance estimates among alive candidates.

    Ties break by candidate index (stable), matching Definition 3.  Returns
    fewer than ``k`` indices when fewer candidates are alive.
    """
    alive_idx = np.flatnonzero(alive)
    if alive_idx.size <= k:
        order = np.argsort(distances[alive_idx], kind="stable")
        return alive_idx[order]
    order = np.argsort(distances[alive_idx], kind="stable")[:k]
    return alive_idx[order]


def split_point(distances: np.ndarray, matching: np.ndarray, others: np.ndarray) -> float:
    """Algorithm 1 line 18: midpoint between the farthest of ``M`` and nearest of ``A\\M``."""
    if matching.size == 0 or others.size == 0:
        raise ValueError("split point requires both M and A\\M to be non-empty")
    return 0.5 * (float(distances[matching].max()) + float(distances[others].min()))


@dataclass
class RoundPlan:
    """Everything a stage-2 round decides before sampling (lines 14–19).

    Produced by :meth:`HistSim.begin_round`; consumed by
    :meth:`HistSim.finish_round` once the round's fresh-sample budgets have
    been delivered (possibly across several stepper steps).
    """

    round_index: int
    delta_upper: float
    matching: np.ndarray
    others: np.ndarray
    split: float
    exhausted: np.ndarray
    budgets: np.ndarray


class HistSim:
    """Run Algorithm 1 against any :class:`~repro.core.sampler.TupleSampler`.

    Parameters
    ----------
    sampler:
        Source of uniform without-replacement tuples.
    target:
        The visual target ``q`` (raw counts or a distribution; it is
        normalized internally).
    config:
        ``k``, ``ε``, ``δ``, ``σ`` and system knobs.
    stats_cost:
        Optional hook charging statistics-engine work to a simulated clock.
    backend:
        The :class:`~repro.parallel.ExecutionBackend` every sampling request
        routes through (default: serial pass-through).  The algorithm's
        decisions are backend-independent by construction — backends only
        change *how* the same counts are produced.
    """

    def __init__(
        self,
        sampler: TupleSampler,
        target: np.ndarray,
        config: HistSimConfig,
        stats_cost: StatsCostHook | None = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        target = np.asarray(target, dtype=np.float64)
        if target.ndim != 1 or target.shape[0] != sampler.num_groups:
            raise ValueError(
                f"target must have {sampler.num_groups} entries, got shape {target.shape}"
            )
        if target.sum() <= 0 or np.any(target < 0):
            raise ValueError("target must be non-negative with positive mass")
        self.sampler = sampler
        self.target = target
        self.config = config
        self.backend = backend or SerialBackend()
        self._stats_cost = stats_cost or (lambda stage, ops: None)
        self.state = CandidateState(
            sampler.num_candidates, sampler.num_groups, sampler.candidate_rows()
        )
        self.alive = np.ones(sampler.num_candidates, dtype=bool)
        self.rounds: list[RoundTrace] = []
        self._stage3_target_cache: tuple[tuple, int] | None = None

    @property
    def stage3_target(self) -> int:
        """Stage-3 reconstruction sample target (line 26).

        Loop-invariant within a configuration, so it is computed once and
        cached instead of re-derived every stage-2 round; the cache keys on
        the config parameters because extensions (range-k) swap ``config``
        mid-run.  Subclasses with a different reconstruction tolerance
        (dual-ε) override this property.
        """
        cfg = self.config
        key = (cfg.epsilon, cfg.delta, cfg.k, self.sampler.num_groups)
        if self._stage3_target_cache is None or self._stage3_target_cache[0] != key:
            self._stage3_target_cache = (key, stage3_sample_target(*key))
        return self._stage3_target_cache[1]

    # ------------------------------------------------------------------ stage 1

    def run_stage1(self) -> np.ndarray:
        """Prune likely-rare candidates; returns the pruned mask."""
        cfg = self.config
        n_total = self.sampler.total_rows
        m = cfg.effective_stage1_samples(n_total)
        counts = self.backend.run_uniform(self.sampler, m)
        observed = counts.sum(axis=1)
        self.state.counts += counts
        self.state.samples += observed

        delivered = int(observed.sum())
        pvalues = underrepresentation_pvalues(observed, n_total, cfg.sigma, delivered)
        pruned = holm_bonferroni(pvalues, cfg.stage_delta)
        self._stats_cost(
            "stage1", int(observed.max(initial=0)) + self.alive.size
        )
        self.alive &= ~pruned
        return pruned

    # ------------------------------------------------------------------ stage 2

    def _round_budgets(
        self,
        tau: np.ndarray,
        matching: np.ndarray,
        others: np.ndarray,
        s: float,
        delta_upper: float,
        round_index: int,
        exhausted: np.ndarray,
    ) -> np.ndarray:
        """Eq. 1 fresh-sample budgets ``n'_i`` for one round (heuristic, §4.2).

        Budgets are capped by an iterative-deepening ceiling (a multiple of
        the stage-3 target, doubling per round) so that margin estimates
        that are still noisy right after stage 1 cannot demand a full-scan-
        sized budget in one round; see HistSimConfig.round_budget_cap.
        """
        cfg = self.config
        margins = np.zeros(self.alive.size, dtype=np.float64)
        margins[matching] = s + cfg.epsilon / 2.0 - tau[matching]
        margins[others] = tau[others] - (s - cfg.epsilon / 2.0)
        budgets = np.zeros(self.alive.size, dtype=np.float64)
        idx = np.concatenate([matching, others])
        budgets[idx] = cfg.round_budget_factor * stage2_sample_budget(
            margins[idx], delta_upper, self.sampler.num_groups
        )
        if np.isfinite(cfg.round_budget_cap):
            ceiling = (
                cfg.round_budget_cap * self.stage3_target * 2.0 ** (round_index - 1)
            )
            budgets[idx] = np.minimum(budgets[idx], ceiling)
        budgets[idx] = np.maximum(budgets[idx], cfg.min_round_samples)
        # Exhausted candidates cannot yield fresh rows; their test is settled
        # by exactness instead.
        budgets[exhausted] = 0.0
        return budgets

    def _round_log_pvalues(
        self,
        matching: np.ndarray,
        others: np.ndarray,
        s: float,
        exhausted: np.ndarray,
    ) -> np.ndarray:
        """P-values (log) of the round's null hypotheses (Lemmas 2–3, Theorem 1)."""
        cfg = self.config
        tau_round = self.state.round_distances(self.target)
        eps_test = np.full(self.alive.size, -np.inf, dtype=np.float64)
        eps_test[matching] = s + cfg.epsilon / 2.0 - tau_round[matching]
        if s - cfg.epsilon / 2.0 >= 0.0:
            eps_test[others] = tau_round[others] - (s - cfg.epsilon / 2.0)
        else:
            # Null ``τ* ≤ s − ε/2 < 0`` is vacuously false (Algorithm 1, line 22).
            eps_test[others] = np.inf
        log_p = deviation_log_pvalue(
            eps_test, self.state.round_samples, self.sampler.num_groups
        )
        # Exhausted candidates have exact τ; the split-point construction
        # places their true distance on the correct side of s, so the null is
        # certainly false (DESIGN.md §5).
        log_p = np.asarray(log_p, dtype=np.float64)
        log_p[exhausted] = -np.inf
        return log_p

    def stage2_shortcut(self) -> np.ndarray | None:
        """Degenerate stage 2: with ``|A| ≤ k``, A \\ M is empty and separation
        holds vacuously (Lemma 2 degenerate) — return M without any rounds."""
        alive_count = int(self.alive.sum())
        if alive_count > self.config.k:
            return None
        tau = self.state.distances(self.target)
        return select_matching(tau, self.alive, alive_count)

    def begin_round(self, round_index: int, delta_upper: float) -> RoundPlan:
        """Start one stage-2 round: fold, pick M and s, budget fresh samples
        (Algorithm 1 lines 14–19).  Sampling happens between this call and
        :meth:`finish_round`."""
        cfg = self.config
        self.state.fold_round_into_cumulative()
        tau = self.state.distances(self.target)
        matching = select_matching(tau, self.alive, cfg.k)
        # Complement of M within the alive set via a boolean mask (cheaper
        # than a per-round set difference).
        others_mask = self.alive.copy()
        others_mask[matching] = False
        others = np.flatnonzero(others_mask)
        s = split_point(tau, matching, others)
        # samples[] only changes on fold, so the exhausted mask is identical
        # at budgeting and testing time — compute it once per round.
        exhausted = self.state.exhausted()
        budgets = self._round_budgets(
            tau, matching, others, s, delta_upper, round_index, exhausted
        )
        return RoundPlan(
            round_index=round_index,
            delta_upper=delta_upper,
            matching=matching,
            others=others,
            split=s,
            exhausted=exhausted,
            budgets=budgets,
        )

    def finish_round(self, plan: RoundPlan, fresh_rows: int) -> np.ndarray | None:
        """Run the round's union-intersection test (lines 20–24) after its
        fresh samples were recorded.  Returns the matching set if the round
        settled M (rejection, or exact knowledge from a full scan), else None.
        """
        log_p = self._round_log_pvalues(
            plan.matching, plan.others, plan.split, plan.exhausted
        )
        alive_idx = np.flatnonzero(self.alive)
        rejected = simultaneous_rejection_log(log_p[alive_idx], plan.delta_upper)
        self._stats_cost(
            "stage2",
            int(self.alive.sum()) * self.sampler.num_groups
            + int(self.alive.sum() * np.log2(max(self.alive.sum(), 2))),
        )
        self.rounds.append(
            RoundTrace(
                round_index=plan.round_index,
                delta_upper=plan.delta_upper,
                split_point=plan.split,
                matching=tuple(int(i) for i in plan.matching),
                budget_total=int(
                    np.where(np.isfinite(plan.budgets), plan.budgets, 0).sum()
                ),
                fresh_samples=fresh_rows,
                max_log_pvalue=float(np.max(log_p[alive_idx])),
                rejected=rejected,
            )
        )
        if rejected:
            self.state.fold_round_into_cumulative()
            return plan.matching
        if self.sampler.fully_scanned:
            # Exact knowledge: fold and return the exact top-k.
            self.state.fold_round_into_cumulative()
            tau = self.state.distances(self.target)
            return select_matching(tau, self.alive, self.config.k)
        return None

    def exhaust_stage2(self) -> np.ndarray:
        """Safety valve after ``max_rounds``: exhaust the data, which is
        always correct, and return the exact top-k."""
        self.state.fold_round_into_cumulative()
        self.backend.run_sampling(self.sampler, np.full(self.alive.size, np.inf))
        self.state.fold_round_into_cumulative()
        tau = self.state.distances(self.target)
        return select_matching(tau, self.alive, self.config.k)

    def run_stage2(self) -> np.ndarray:
        """Identify the matching set ``M``; returns matching candidate indices."""
        shortcut = self.stage2_shortcut()
        if shortcut is not None:
            return shortcut
        delta_upper = self.config.stage_delta
        for round_index in range(1, self.config.max_rounds + 1):
            delta_upper /= 2.0
            plan = self.begin_round(round_index, delta_upper)
            fresh = self.backend.run_sampling(self.sampler, plan.budgets)
            self.state.record_round_counts(fresh)
            matching = self.finish_round(plan, int(fresh.sum()))
            if matching is not None:
                return matching
        return self.exhaust_stage2()

    # ------------------------------------------------------------------ stage 3

    def stage3_needed(self, matching: np.ndarray) -> np.ndarray:
        """Per-candidate fresh rows still required to hit the stage-3 target."""
        needed = np.zeros(self.alive.size, dtype=np.float64)
        needed[matching] = np.maximum(
            0, self.stage3_target - self.state.samples[matching]
        )
        return needed

    def run_stage3(self, matching: np.ndarray) -> None:
        """Reconstruct every matching candidate to ε accuracy (line 26)."""
        needed = self.stage3_needed(matching)
        if np.any(needed > 0):
            fresh = self.backend.run_sampling(self.sampler, needed)
            self.state.record_round_counts(fresh)
            self.state.fold_round_into_cumulative()
        self._stats_cost("stage3", int(matching.size) * self.sampler.num_groups)

    # -------------------------------------------------------------------- run

    def _assemble_result(
        self,
        pruned_mask: np.ndarray,
        matching: np.ndarray,
        stage1_samples: int,
        stage2_samples: int,
        stage3_samples: int,
    ) -> MatchResult:
        """Sort the matching set by final distance and package the output."""
        tau = self.state.distances(self.target)
        order = np.argsort(tau[matching], kind="stable")
        matching = matching[order]
        stats = StageStats(
            stage1_samples=stage1_samples,
            stage2_samples=stage2_samples,
            stage3_samples=stage3_samples,
            pruned_candidates=int(pruned_mask.sum()),
            surviving_candidates=int(self.alive.sum()),
            rounds=len(self.rounds),
        )
        return MatchResult(
            matching=tuple(int(i) for i in matching),
            histograms=self.state.counts[matching].copy(),
            distances=tau[matching].copy(),
            pruned=tuple(int(i) for i in np.flatnonzero(pruned_mask)),
            exact=self.sampler.fully_scanned,
            stats=stats,
            rounds=tuple(self.rounds),
        )

    def run(self) -> MatchResult:
        """Execute all three stages and assemble the result.

        Thin driver over :class:`HistSimStepper`: steps the state machine to
        completion, so run-to-completion and step-driven execution share one
        code path (and produce identical results by construction).
        """
        return HistSimStepper(algorithm=self).run_to_completion()


# ---------------------------------------------------------------------------
# Resumable stepper
# ---------------------------------------------------------------------------


@dataclass
class Stage1:
    """Initial state: the prune pass has not run yet."""


@dataclass
class Stage2Round:
    """One stage-2 round in progress.

    ``plan`` is None until the round's budgets have been computed; it stays
    set while the round's sampling is split across steps
    (``max_step_rows``).  ``exhaust`` marks the post-``max_rounds`` safety
    valve, whose full scan is performed as its own step.
    """

    round_index: int
    delta_upper: float
    plan: RoundPlan | None = None
    fresh_rows: int = 0
    exhaust: bool = False


@dataclass
class Stage3:
    """Reconstruction of the settled matching set in progress."""

    matching: np.ndarray
    needed: np.ndarray | None = None
    fresh_rows: int = 0


@dataclass
class Done:
    """Terminal state: the assembled result is available."""

    result: MatchResult


StepperStage = Union[Stage1, Stage2Round, Stage3, Done]


@dataclass(frozen=True)
class StepReport:
    """What one :meth:`HistSimStepper.step` call did."""

    stage: str
    round_index: int | None = None
    fresh_rows: int = 0
    done: bool = False


class HistSimStepper:
    """Resumable, step-driven execution of Algorithm 1.

    Each :meth:`step` performs one bounded unit of work — the stage-1 prune
    pass, one stage-2 round (or one ``max_step_rows``-bounded slice of its
    sampling), one stage-3 reconstruction batch — then yields control.  A
    scheduler can therefore interleave many concurrent queries' steps
    (:mod:`repro.system.scheduler`) while each query's results stay
    *identical* to a run-to-completion execution: the stepper calls exactly
    the same stage methods in the same order on the same sampler.

    Parameters
    ----------
    sampler, target, config, stats_cost, backend:
        Forwarded to :class:`HistSim` when no ``algorithm`` is given.
    algorithm:
        An existing :class:`HistSim` to drive (mutually exclusive with the
        constructor arguments above).
    max_step_rows:
        Optional bound on rows sampled per step.  When set, a stage-2
        round's (or stage 3's) sampling is split across multiple steps by
        passing ``max_rows`` to the sampler; the delivered rows and the
        final result are identical to the unbounded execution because
        samplers consume a fixed scan order.  ``None`` (default) keeps one
        sampling call per round.
    """

    def __init__(
        self,
        sampler: TupleSampler | None = None,
        target: np.ndarray | Sequence[float] | None = None,
        config: HistSimConfig | None = None,
        stats_cost: StatsCostHook | None = None,
        *,
        algorithm: HistSim | None = None,
        max_step_rows: int | None = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        if algorithm is None:
            if sampler is None or target is None:
                raise ValueError("provide a sampler and target, or an algorithm")
            algorithm = HistSim(
                sampler,
                np.asarray(target, dtype=np.float64),
                config or HistSimConfig(),
                stats_cost,
                backend,
            )
        elif (
            sampler is not None
            or target is not None
            or config is not None
            or stats_cost is not None
            or backend is not None
        ):
            raise ValueError(
                "pass either an existing algorithm or constructor arguments, not both"
            )
        if max_step_rows is not None and max_step_rows < 1:
            raise ValueError(f"max_step_rows must be >= 1, got {max_step_rows}")
        self.algorithm = algorithm
        self.max_step_rows = max_step_rows
        self.stage: StepperStage = Stage1()
        self.steps_taken = 0
        #: The most recent :meth:`step`'s report — the observability seam
        #: drivers read after each slice (stage, round, fresh rows) without
        #: threading the return value through their dispatch plumbing.
        self.last_report: StepReport | None = None
        self._pruned_mask: np.ndarray | None = None
        self._before_stage1 = int(algorithm.state.samples.sum())
        self._after_stage1 = 0
        self._after_stage2 = 0

    # ------------------------------------------------------------- properties

    @property
    def done(self) -> bool:
        return isinstance(self.stage, Done)

    @property
    def stage_name(self) -> str:
        if isinstance(self.stage, Stage1):
            return "stage1"
        if isinstance(self.stage, Stage2Round):
            return "stage2"
        if isinstance(self.stage, Stage3):
            return "stage3"
        return "done"

    @property
    def result(self) -> MatchResult:
        if not isinstance(self.stage, Done):
            raise RuntimeError(f"stepper is still in {self.stage_name}; no result yet")
        return self.stage.result

    # ------------------------------------------------------------------ steps

    def step(self) -> StepReport:
        """Advance the state machine by one bounded unit of work."""
        if isinstance(self.stage, Done):
            raise RuntimeError("HistSimStepper is already done")
        self.steps_taken += 1
        if isinstance(self.stage, Stage1):
            report = self._step_stage1()
        elif isinstance(self.stage, Stage2Round):
            report = self._step_stage2(self.stage)
        else:
            report = self._step_stage3(self.stage)
        self.last_report = report
        return report

    def run_to_completion(self) -> MatchResult:
        """Drive :meth:`step` until :class:`Done`; returns the result."""
        while not self.done:
            self.step()
        return self.result

    # ------------------------------------------------------------ serving hooks

    def _current_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Cumulative plus in-flight round counts/samples, without mutating
        state (a mid-round fold would change later round tests)."""
        state = self.algorithm.state
        return state.counts + state.round_counts, state.samples + state.round_samples

    def partial_result(self) -> MatchResult:
        """Best-effort result from the work done so far (deadline path).

        Non-mutating and callable in any stage: the current top-k by the
        combined cumulative + in-flight round estimates, with whatever
        histograms those samples bought.  Unlike a completed run, the
        returned set carries **no** separation guarantee and its
        reconstruction radius is :meth:`achieved_epsilon`, not the
        configured ε — the caller (the serving front door) must report it as
        a degraded answer.  Before any sampling the matching set is empty.
        """
        if isinstance(self.stage, Done):
            return self.stage.result
        algo = self.algorithm
        counts, samples = self._current_counts()
        run_samples = int(samples.sum()) - self._before_stage1
        if run_samples <= 0:
            matching = np.empty(0, dtype=np.int64)
            tau = np.full(algo.alive.size, np.inf)
        else:
            tau = candidate_distances(counts, algo.target)
            if isinstance(self.stage, Stage3):
                matching = np.asarray(self.stage.matching, dtype=np.int64)
                order = np.argsort(tau[matching], kind="stable")
                matching = matching[order]
            else:
                matching = select_matching(tau, algo.alive, algo.config.k)
        if isinstance(self.stage, Stage1):
            stage1 = run_samples
            stage2 = stage3 = 0
        elif isinstance(self.stage, Stage2Round):
            stage1 = self._after_stage1 - self._before_stage1
            stage2 = run_samples - stage1
            stage3 = 0
        else:
            stage1 = self._after_stage1 - self._before_stage1
            stage2 = self._after_stage2 - self._after_stage1
            stage3 = run_samples - stage1 - stage2
        pruned_mask = (
            self._pruned_mask
            if self._pruned_mask is not None
            else np.zeros(algo.alive.size, dtype=bool)
        )
        stats = StageStats(
            stage1_samples=stage1,
            stage2_samples=stage2,
            stage3_samples=stage3,
            pruned_candidates=int(pruned_mask.sum()),
            surviving_candidates=int(algo.alive.sum()),
            rounds=len(algo.rounds),
        )
        return MatchResult(
            matching=tuple(int(i) for i in matching),
            histograms=counts[matching].copy(),
            distances=tau[matching].copy(),
            pruned=tuple(int(i) for i in np.flatnonzero(pruned_mask)),
            exact=algo.sampler.fully_scanned,
            stats=stats,
            rounds=tuple(algo.rounds),
        )

    def achieved_epsilon(self, matching: Sequence[int] | np.ndarray | None = None) -> float:
        """Reconstruction radius the delivered samples actually bought.

        Theorem 1 inverted at stage 3's per-candidate confidence δ/(3k):
        the smallest ε' such that every returned histogram satisfies
        ``d(r_i, r*_i) < ε'`` with probability ``> 1 − δ/(3k)`` given its
        current sample count.  A completed run reports a value ≤ the
        configured ε by construction; a deadline-cut run reports the looser
        radius its partial samples support (``inf`` when a returned
        candidate has no samples at all, ``0`` when the data was exhausted —
        exact histograms).  ``matching`` defaults to the current
        :meth:`partial_result` set.
        """
        algo = self.algorithm
        if matching is None:
            matching = np.asarray(self.partial_result().matching, dtype=np.int64)
        matching = np.asarray(matching, dtype=np.int64)
        if matching.size == 0:
            return float("inf")
        if algo.sampler.fully_scanned:
            return 0.0
        _, samples = self._current_counts()
        cfg = algo.config
        eps = np.asarray(
            epsilon_given_samples(
                samples[matching], cfg.delta / (3.0 * cfg.k), algo.sampler.num_groups
            ),
            dtype=np.float64,
        )
        if algo.state.candidate_rows is not None:
            exact = samples[matching] >= algo.state.candidate_rows[matching]
            eps = np.where(exact, 0.0, eps)
        return float(np.max(eps))

    def estimated_remaining_rows(self) -> float:
        """Lookahead estimate of the rows this run still needs — the paper's
        per-stage budgeting machinery (Eq. 1 round budgets, the line-26
        stage-3 target) reused as a scheduling cost hint.

        A heuristic, not a bound: stage-2 may run more rounds than the one
        currently planned, and budgets assume current margin estimates.
        Shortest-expected-remaining-cost scheduling only needs relative
        ordering, which this tracks well (it shrinks monotonically within a
        stage as samples arrive).
        """
        algo = self.algorithm
        cfg = algo.config
        if isinstance(self.stage, Done):
            return 0.0
        counts, samples = self._current_counts()
        tau = candidate_distances(counts, algo.target)
        matching = select_matching(tau, algo.alive, cfg.k)
        stage3_residual = float(
            np.maximum(0, algo.stage3_target - samples[matching]).sum()
        )
        if isinstance(self.stage, Stage1):
            m = cfg.effective_stage1_samples(algo.sampler.total_rows)
            estimate = float(m) + stage3_residual
        elif isinstance(self.stage, Stage2Round):
            st = self.stage
            if st.exhaust:
                estimate = float(max(0, algo.sampler.total_rows - int(samples.sum())))
            else:
                if st.plan is not None:
                    rem = np.maximum(st.plan.budgets - algo.state.round_samples, 0.0)
                    round_rem = float(np.where(np.isfinite(rem), rem, 0.0).sum())
                else:
                    round_rem = float(
                        cfg.min_round_samples * max(int(algo.alive.sum()), 1)
                    )
                estimate = round_rem + stage3_residual
        else:
            st = self.stage
            needed = st.needed if st.needed is not None else algo.stage3_needed(st.matching)
            estimate = float(np.where(np.isfinite(needed), needed, 0.0).sum())
        return min(estimate, float(algo.sampler.total_rows))

    def _sample(self, needed: np.ndarray) -> np.ndarray:
        """One sampling request through the algorithm's execution backend,
        bounded by ``max_step_rows`` when configured."""
        algo = self.algorithm
        if self.max_step_rows is None:
            return algo.backend.run_sampling(algo.sampler, needed)
        return algo.backend.run_sampling(
            algo.sampler, needed, max_rows=self.max_step_rows
        )

    def _slice_complete(self, fresh_rows: int) -> bool:
        """A bounded call that delivered fewer rows than its bound stopped
        because the remaining budgets were satisfied (or the data ran out)."""
        return self.max_step_rows is None or fresh_rows < self.max_step_rows

    def _step_stage1(self) -> StepReport:
        algo = self.algorithm
        before = int(algo.state.samples.sum())
        self._pruned_mask = algo.run_stage1()
        self._after_stage1 = int(algo.state.samples.sum())
        shortcut = algo.stage2_shortcut()
        if shortcut is not None:
            self._enter_stage3(shortcut)
        else:
            self.stage = Stage2Round(
                round_index=1, delta_upper=algo.config.stage_delta / 2.0
            )
        return StepReport(stage="stage1", fresh_rows=self._after_stage1 - before)

    def _step_stage2(self, st: Stage2Round) -> StepReport:
        algo = self.algorithm
        if st.exhaust:
            before = int(algo.state.samples.sum() + algo.state.round_samples.sum())
            matching = algo.exhaust_stage2()
            fresh = int(algo.state.samples.sum()) - before
            self._enter_stage3(matching)
            return StepReport(
                stage="stage2", round_index=st.round_index, fresh_rows=fresh
            )
        if st.plan is None:
            st.plan = algo.begin_round(st.round_index, st.delta_upper)
        remaining = np.maximum(st.plan.budgets - algo.state.round_samples, 0.0)
        fresh = self._sample(remaining)
        algo.state.record_round_counts(fresh)
        fresh_rows = int(fresh.sum())
        st.fresh_rows += fresh_rows
        if self._slice_complete(fresh_rows):
            matching = algo.finish_round(st.plan, st.fresh_rows)
            if matching is not None:
                self._enter_stage3(matching)
            elif st.round_index >= algo.config.max_rounds:
                self.stage = Stage2Round(
                    round_index=st.round_index + 1,
                    delta_upper=st.delta_upper,
                    exhaust=True,
                )
            else:
                self.stage = Stage2Round(
                    round_index=st.round_index + 1,
                    delta_upper=st.delta_upper / 2.0,
                )
        return StepReport(
            stage="stage2", round_index=st.round_index, fresh_rows=fresh_rows
        )

    def _enter_stage3(self, matching: np.ndarray) -> None:
        algo = self.algorithm
        self._after_stage2 = int(
            algo.state.samples.sum() + algo.state.round_samples.sum()
        )
        self.stage = Stage3(matching=np.asarray(matching, dtype=np.int64))

    def _step_stage3(self, st: Stage3) -> StepReport:
        algo = self.algorithm
        if st.needed is None:
            st.needed = algo.stage3_needed(st.matching)
        fresh = self._sample(st.needed)
        algo.state.record_round_counts(fresh)
        fresh_rows = int(fresh.sum())
        st.fresh_rows += fresh_rows
        st.needed = np.maximum(st.needed - fresh.sum(axis=1), 0.0)
        if not self._slice_complete(fresh_rows):
            return StepReport(stage="stage3", fresh_rows=fresh_rows)
        algo.state.fold_round_into_cumulative()
        algo._stats_cost("stage3", int(st.matching.size) * algo.sampler.num_groups)
        after_stage3 = int(algo.state.samples.sum())
        assert self._pruned_mask is not None
        result = algo._assemble_result(
            self._pruned_mask,
            st.matching,
            stage1_samples=self._after_stage1 - self._before_stage1,
            stage2_samples=self._after_stage2 - self._after_stage1,
            stage3_samples=after_stage3 - self._after_stage2,
        )
        self.stage = Done(result)
        return StepReport(stage="stage3", fresh_rows=fresh_rows, done=True)


def run_histsim(
    sampler: TupleSampler,
    target: np.ndarray | Sequence[float],
    config: HistSimConfig | None = None,
    stats_cost: StatsCostHook | None = None,
) -> MatchResult:
    """Convenience wrapper: build and run a :class:`HistSim` instance."""
    return HistSim(
        sampler, np.asarray(target, dtype=np.float64), config or HistSimConfig(), stats_cost
    ).run()
