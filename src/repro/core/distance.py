"""Distance functions between histograms (paper Definition 2 and Section 2.1).

The paper compares *normalized* histograms: each vector of group counts is
scaled to sum to one so that only the distribution's shape matters.  The
primary metric is the L1 distance between normalized vectors, which equals
twice the total variation distance between the corresponding discrete
distributions.  L2, total-variation and KL variants are provided for the
metric comparisons of Section 2.1 and Table 5.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalize",
    "l1_distance",
    "l2_distance",
    "total_variation",
    "kl_divergence",
    "candidate_distances",
    "DISTANCE_FUNCTIONS",
]


def normalize(counts: np.ndarray) -> np.ndarray:
    """Scale a non-negative count vector so its entries sum to one.

    An all-zero vector (a candidate with no observed tuples) is returned as a
    zero vector rather than raising; its distance to any distribution is then
    the L1 mass of the other vector, mirroring "no information" gracefully.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim == 0:
        raise ValueError("histogram must be a vector, got a scalar")
    if np.any(counts < 0):
        raise ValueError("histogram counts must be non-negative")
    total = counts.sum(axis=-1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        normalized = np.where(total > 0, counts / np.where(total > 0, total, 1.0), 0.0)
    return normalized


def l1_distance(r: np.ndarray, q: np.ndarray) -> float:
    """Normalized L1 distance ``d(r, q) = || r/1ᵀr − q/1ᵀq ||₁`` (Definition 2)."""
    r_bar = normalize(r)
    q_bar = normalize(q)
    if r_bar.shape[-1] != q_bar.shape[-1]:
        raise ValueError(
            f"histograms must share support: {r_bar.shape[-1]} vs {q_bar.shape[-1]} groups"
        )
    return float(np.abs(r_bar - q_bar).sum())


def l2_distance(r: np.ndarray, q: np.ndarray) -> float:
    """Normalized L2 distance, the metric of SeeDB / Sample+Seek (Section 2.1)."""
    r_bar = normalize(r)
    q_bar = normalize(q)
    if r_bar.shape[-1] != q_bar.shape[-1]:
        raise ValueError(
            f"histograms must share support: {r_bar.shape[-1]} vs {q_bar.shape[-1]} groups"
        )
    return float(np.sqrt(np.square(r_bar - q_bar).sum()))


def total_variation(r: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance; exactly half the normalized L1 distance."""
    return 0.5 * l1_distance(r, q)


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """KL(p‖q) between normalized histograms.

    Infinite whenever ``q`` places zero mass where ``p`` places positive mass —
    the drawback Section 2.1 cites for rejecting KL as the matching metric.
    """
    p_bar = normalize(p)
    q_bar = normalize(q)
    if p_bar.shape[-1] != q_bar.shape[-1]:
        raise ValueError(
            f"histograms must share support: {p_bar.shape[-1]} vs {q_bar.shape[-1]} groups"
        )
    support = p_bar > 0
    if np.any(q_bar[support] == 0):
        return float("inf")
    return float(np.sum(p_bar[support] * np.log(p_bar[support] / q_bar[support])))


def candidate_distances(counts: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Vectorized normalized-L1 distance of each row of ``counts`` to ``target``.

    ``counts`` has shape ``(num_candidates, num_groups)``.  Rows with zero
    total are assigned the distance of an empty histogram (the L1 mass of the
    normalized target, i.e. 1.0 for a proper distribution), consistent with
    :func:`l1_distance` on a zero vector.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 2:
        raise ValueError("counts must have shape (num_candidates, num_groups)")
    q_bar = normalize(target)
    if counts.shape[1] != q_bar.shape[-1]:
        raise ValueError(
            f"candidates have {counts.shape[1]} groups but target has {q_bar.shape[-1]}"
        )
    r_bar = normalize(counts)
    return np.abs(r_bar - q_bar[None, :]).sum(axis=1)


#: Registry used by the metric-comparison benchmarks (Table 5) and the
#: Appendix A.2.2 extension.
DISTANCE_FUNCTIONS = {
    "l1": l1_distance,
    "l2": l2_distance,
    "tv": total_variation,
    "kl": kl_divergence,
}
