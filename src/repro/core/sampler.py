"""Sampling abstraction HistSim runs against (paper: "HistSim is agnostic to
the sampling approach").

:class:`TupleSampler` is the protocol; :class:`ArraySampler` is the
reference in-memory implementation used by the pure-algorithm API, unit
tests, and the statistical benchmarks.  The block-based engine in
:mod:`repro.sampling.engine` implements the same protocol on top of the
storage and bitmap substrates.

Uniformity contract: every sampler must deliver tuples that are uniform
without replacement *per candidate* — satisfied here by drawing from a
random permutation of the rows (Challenge 1, Section 4.2).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["TupleSampler", "ArraySampler"]


@runtime_checkable
class TupleSampler(Protocol):
    """What HistSim needs from a sampling substrate."""

    @property
    def num_candidates(self) -> int: ...

    @property
    def num_groups(self) -> int: ...

    @property
    def total_rows(self) -> int: ...

    @property
    def fully_scanned(self) -> bool:
        """True once every row has been delivered (estimates are exact)."""
        ...

    def delivered_rows(self) -> np.ndarray:
        """Per-candidate number of rows delivered so far."""
        ...

    def candidate_rows(self) -> np.ndarray | None:
        """Per-candidate total row counts ``N_i`` if known, else None.

        Real deployments know this from index-build statistics; samplers may
        return None, in which case HistSim cannot cap budgets early and simply
        stops when the data runs out.
        """
        ...

    def sample_uniform(self, m: int) -> np.ndarray:
        """Deliver ``m`` fresh uniform tuples; returns a (candidates × groups) count matrix."""
        ...

    def sample_until(self, needed: np.ndarray, max_rows: float | None = None) -> np.ndarray:
        """Deliver fresh tuples until every candidate ``i`` has received
        ``min(needed[i], rows remaining for i)`` of them.

        ``needed`` is a per-candidate float array; ``np.inf`` entries are
        satisfied only by exhausting that candidate.  Returns the fresh
        (candidates × groups) count matrix.

        ``max_rows`` bounds the rows delivered by this call: once at least
        ``max_rows`` rows have been delivered the call returns early, and the
        caller resumes by calling again with the not-yet-satisfied residual
        budgets.  Because samplers consume a fixed scan order, a budget split
        across such incremental requests delivers exactly the same tuples as
        a single unbounded call — the property the resumable stepper
        (:class:`~repro.core.histsim.HistSimStepper`) relies on.
        """
        ...


class ArraySampler:
    """In-memory sampler over encoded ``(z, x)`` columns.

    Parameters
    ----------
    z, x:
        Integer-encoded candidate and group columns, equal length.
    num_candidates, num_groups:
        Domain sizes ``|V_Z|`` and ``|V_X|``.
    rng:
        Source of randomness for the row permutation.
    batch_size:
        Rows delivered per internal step of :meth:`sample_until`; models the
        granularity at which a scan checks its stopping condition.
    """

    def __init__(
        self,
        z: np.ndarray,
        x: np.ndarray,
        num_candidates: int,
        num_groups: int,
        rng: np.random.Generator,
        batch_size: int = 8192,
    ) -> None:
        z = np.asarray(z)
        x = np.asarray(x)
        if z.shape != x.shape or z.ndim != 1:
            raise ValueError("z and x must be 1-D arrays of equal length")
        if z.size and (z.min() < 0 or z.max() >= num_candidates):
            raise ValueError("z codes out of range")
        if x.size and (x.min() < 0 or x.max() >= num_groups):
            raise ValueError("x codes out of range")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._num_candidates = int(num_candidates)
        self._num_groups = int(num_groups)
        order = rng.permutation(z.size)
        self._z = z[order]
        self._x = x[order]
        self._cursor = 0
        self._batch_size = batch_size
        self._delivered = np.zeros(num_candidates, dtype=np.int64)
        self._totals = np.bincount(z, minlength=num_candidates).astype(np.int64)

    @property
    def num_candidates(self) -> int:
        return self._num_candidates

    @property
    def num_groups(self) -> int:
        return self._num_groups

    @property
    def total_rows(self) -> int:
        return self._z.size

    @property
    def fully_scanned(self) -> bool:
        return self._cursor >= self._z.size

    def delivered_rows(self) -> np.ndarray:
        return self._delivered.copy()

    def candidate_rows(self) -> np.ndarray | None:
        return self._totals.copy()

    def _deliver(self, start: int, stop: int) -> np.ndarray:
        """Count the (z, x) pairs in the permuted slice [start, stop)."""
        z = self._z[start:stop]
        x = self._x[start:stop]
        flat = np.bincount(
            z.astype(np.int64) * self._num_groups + x,
            minlength=self._num_candidates * self._num_groups,
        )
        counts = flat.reshape(self._num_candidates, self._num_groups)
        self._delivered += counts.sum(axis=1)
        return counts

    def sample_uniform(self, m: int) -> np.ndarray:
        if m < 0:
            raise ValueError(f"m must be non-negative, got {m}")
        stop = min(self._cursor + m, self._z.size)
        counts = self._deliver(self._cursor, stop)
        self._cursor = stop
        return counts

    def sample_until(self, needed: np.ndarray, max_rows: float | None = None) -> np.ndarray:
        needed = np.asarray(needed, dtype=np.float64)
        if needed.shape != (self._num_candidates,):
            raise ValueError(
                f"needed must have shape ({self._num_candidates},), got {needed.shape}"
            )
        remaining = (self._totals - self._delivered).astype(np.float64)
        goal = np.minimum(np.maximum(needed, 0.0), remaining)
        fresh = np.zeros((self._num_candidates, self._num_groups), dtype=np.int64)
        fresh_rows = np.zeros(self._num_candidates, dtype=np.float64)
        delivered_call = 0
        while np.any(fresh_rows < goal) and not self.fully_scanned:
            if max_rows is not None and delivered_call >= max_rows:
                break
            stop = min(self._cursor + self._batch_size, self._z.size)
            batch = self._deliver(self._cursor, stop)
            self._cursor = stop
            fresh += batch
            fresh_rows += batch.sum(axis=1)
            delivered_call += int(batch.sum())
        return fresh
