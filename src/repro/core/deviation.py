"""Concentration bounds for empirical histograms (paper Theorem 1 and Eq. 1).

Theorem 1 (the "folklore" L1 learning bound, proved via McDiarmid): after
``n`` samples the empirical normalized histogram over ``v`` groups satisfies
``||r̄ − r̄*||₁ < ε`` with probability ``> 1 − δ`` where

    ε(n, δ) = sqrt( (2/n) · (v·ln 2 + ln(1/δ)) )

Equivalently ``δ(n, ε) = 2^v · exp(−ε²n/2)`` and
``n(ε, δ) = (2/ε²) · (v·ln 2 + ln(1/δ))``.

All computations are done in log space: ``2^v`` overflows ``float64`` for
``v ≳ 1024`` and FLIGHTS-q4 already uses ``v = 351``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "epsilon_given_samples",
    "samples_for_deviation",
    "deviation_log_pvalue",
    "deviation_pvalue",
    "stage2_sample_budget",
    "stage3_sample_target",
]

_LN2 = float(np.log(2.0))


def _validate_support(num_groups: int) -> None:
    if num_groups < 1:
        raise ValueError(f"histogram support must have at least one group, got {num_groups}")


def epsilon_given_samples(n: np.ndarray | int, delta: float, num_groups: int) -> np.ndarray:
    """Deviation radius ε such that ``d(r, r*) < ε`` w.p. ``> 1−delta`` after ``n`` samples.

    Vectorized over ``n``.  ``n = 0`` yields ``inf`` (no information).
    """
    _validate_support(num_groups)
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    n_arr = np.asarray(n, dtype=np.float64)
    if np.any(n_arr < 0):
        raise ValueError("sample counts must be non-negative")
    with np.errstate(divide="ignore"):
        eps = np.sqrt(2.0 / n_arr * (num_groups * _LN2 + np.log(1.0 / delta)))
    eps = np.where(n_arr > 0, eps, np.inf)
    if np.ndim(n) == 0:
        return float(eps)
    return eps


def samples_for_deviation(epsilon: float, delta: float, num_groups: int) -> int:
    """Samples needed so the empirical histogram is within ``epsilon`` w.p. ``> 1−delta``.

    Inverts Theorem 1; matches the paper's optimality remark
    ``n = (|V_X| log 4 + 2 log(1/δ)) / ε²`` up to rounding.
    """
    _validate_support(num_groups)
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return int(np.ceil(2.0 / (epsilon * epsilon) * (num_groups * _LN2 + np.log(1.0 / delta))))


def deviation_log_pvalue(
    epsilon: np.ndarray | float, n: np.ndarray | int, num_groups: int
) -> np.ndarray:
    """``ln P(d(r, r*) ≥ ε)`` upper bound after ``n`` samples: ``v·ln2 − ε²n/2``.

    This is the log of the stage-2 P-value of Section 3.4.3 (with the ``n``
    factor the paper's final display accidentally drops).  Non-positive
    ``epsilon`` yields ``ln 1 = 0`` — observing a deviation of zero or less is
    never surprising, so the test cannot reject.  ``epsilon = inf`` yields
    ``−inf`` (P-value 0): the null is vacuously false (paper line 22).
    """
    _validate_support(num_groups)
    eps_arr = np.asarray(epsilon, dtype=np.float64)
    n_arr = np.asarray(n, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        log_p = num_groups * _LN2 - 0.5 * np.square(eps_arr) * n_arr
    # inf * 0 -> nan when n == 0; no samples means no evidence (P-value 1).
    log_p = np.where(np.isnan(log_p), 0.0, log_p)
    log_p = np.where(eps_arr <= 0, 0.0, log_p)
    log_p = np.where(np.isposinf(eps_arr), -np.inf, log_p)
    log_p = np.minimum(log_p, 0.0)
    if np.ndim(epsilon) == 0 and np.ndim(n) == 0:
        return float(log_p)
    return log_p


def deviation_pvalue(
    epsilon: np.ndarray | float, n: np.ndarray | int, num_groups: int
) -> np.ndarray:
    """P-value upper bound ``min(1, 2^v · exp(−ε²n/2))`` (clamped, overflow-safe)."""
    return np.exp(deviation_log_pvalue(epsilon, n, num_groups))


def stage2_sample_budget(
    epsilon_prime: np.ndarray, delta_upper: float, num_groups: int
) -> np.ndarray:
    """Eq. 1: per-candidate fresh-sample budget ``n'_i`` for one stage-2 round.

    ``n'_i = 2(|V_X| ln 2 − ln δ_upper) / ε'²_i`` where ``ε'_i`` is the margin
    the candidate's round estimate must beat for its test to reject.
    Non-positive margins (which the split-point construction rules out, but
    which we guard against) produce an infinite budget.
    """
    _validate_support(num_groups)
    if not 0.0 < delta_upper < 1.0:
        raise ValueError(f"delta_upper must be in (0, 1), got {delta_upper}")
    eps = np.asarray(epsilon_prime, dtype=np.float64)
    numerator = 2.0 * (num_groups * _LN2 - np.log(delta_upper))
    with np.errstate(divide="ignore"):
        budget = numerator / np.square(eps)
    budget = np.where(eps > 0, np.ceil(budget), np.inf)
    return budget


def stage3_sample_target(epsilon: float, delta: float, k: int, num_groups: int) -> int:
    """Stage-3 cumulative target (Algorithm 1, line 26): ``(2/ε²)(v·ln2 + ln(3k/δ))``."""
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    return samples_for_deviation(epsilon, delta / (3.0 * k), num_groups)
