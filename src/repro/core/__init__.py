"""HistSim — the paper's primary contribution (Sections 2 and 3).

Public surface:

- :class:`HistSimConfig` — the (k, ε, δ, σ) parameters of Problem 1.
- :func:`run_histsim` / :class:`HistSim` — Algorithm 1 over any sampler.
- :class:`ArraySampler` — the in-memory reference sampler.
- Distances (:func:`l1_distance`, …), Theorem 1 bounds, the stage-1
  hypergeometric test, Holm–Bonferroni, and guarantee auditing.
"""

from .config import DEFAULT_CONFIG, HistSimConfig
from .deviation import (
    deviation_log_pvalue,
    deviation_pvalue,
    epsilon_given_samples,
    samples_for_deviation,
    stage2_sample_budget,
    stage3_sample_target,
)
from .distance import (
    DISTANCE_FUNCTIONS,
    candidate_distances,
    kl_divergence,
    l1_distance,
    l2_distance,
    normalize,
    total_variation,
)
from .guarantees import GuaranteeAudit, audit_result, delta_d, true_top_k
from .histsim import (
    HistSim,
    HistSimStepper,
    StepReport,
    run_histsim,
    select_matching,
    split_point,
)
from .hypergeometric import (
    rare_threshold,
    underrepresentation_pvalue,
    underrepresentation_pvalues,
)
from .multiple_testing import (
    bonferroni,
    holm_bonferroni,
    simultaneous_rejection,
    simultaneous_rejection_log,
)
from .result import MatchResult, RoundTrace, StageStats
from .sampler import ArraySampler, TupleSampler
from .state import CandidateState
from .target import TargetSpec, resolve_target, uniform_target

__all__ = [
    "DEFAULT_CONFIG",
    "HistSimConfig",
    "HistSim",
    "HistSimStepper",
    "StepReport",
    "run_histsim",
    "select_matching",
    "split_point",
    "ArraySampler",
    "TupleSampler",
    "CandidateState",
    "MatchResult",
    "RoundTrace",
    "StageStats",
    "TargetSpec",
    "resolve_target",
    "uniform_target",
    "GuaranteeAudit",
    "audit_result",
    "delta_d",
    "true_top_k",
    "DISTANCE_FUNCTIONS",
    "candidate_distances",
    "kl_divergence",
    "l1_distance",
    "l2_distance",
    "normalize",
    "total_variation",
    "deviation_log_pvalue",
    "deviation_pvalue",
    "epsilon_given_samples",
    "samples_for_deviation",
    "stage2_sample_budget",
    "stage3_sample_target",
    "rare_threshold",
    "underrepresentation_pvalue",
    "underrepresentation_pvalues",
    "bonferroni",
    "holm_bonferroni",
    "simultaneous_rejection",
    "simultaneous_rejection_log",
]
