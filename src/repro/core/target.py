"""Visual-target specification (paper Section 2.1, "Visual Target Specification").

A visual target is an ``|V_X|``-tuple ``q`` of non-negative reals.  Analysts
specify it three ways in the paper's experiments (Table 3):

- an explicit vector (FLIGHTS-q3's ``[0.25, 0.125, …]``),
- another candidate's histogram (FLIGHTS-q1's Chicago ORD, the Greece
  example), resolved against exact data, and
- the candidate closest to uniform (most other queries), also resolved
  against exact data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distance import candidate_distances

__all__ = ["TargetSpec", "uniform_target", "resolve_target"]


def uniform_target(num_groups: int) -> np.ndarray:
    """The uniform distribution over ``num_groups`` histogram buckets."""
    if num_groups < 1:
        raise ValueError(f"num_groups must be >= 1, got {num_groups}")
    return np.full(num_groups, 1.0 / num_groups)


@dataclass(frozen=True)
class TargetSpec:
    """Declarative description of how to obtain the target vector ``q``.

    Exactly one of the three modes is used, selected by ``kind``:

    - ``"explicit"``: ``vector`` is the target.
    - ``"candidate"``: the exact histogram of candidate index ``candidate``.
    - ``"closest_to_uniform"``: the exact candidate histogram with the
      smallest normalized-L1 distance to uniform (Table 3's default).
    """

    kind: str = "closest_to_uniform"
    vector: tuple[float, ...] | None = None
    candidate: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("explicit", "candidate", "closest_to_uniform"):
            raise ValueError(f"unknown target kind: {self.kind!r}")
        if self.kind == "explicit" and self.vector is None:
            raise ValueError("explicit targets require a vector")
        if self.kind == "candidate" and self.candidate is None:
            raise ValueError("candidate targets require a candidate index")


def resolve_target(spec: TargetSpec, exact_counts: np.ndarray) -> np.ndarray:
    """Materialize ``q`` from a spec and the exact per-candidate count matrix.

    ``exact_counts`` has shape ``(num_candidates, num_groups)`` and comes from
    the exact executor (or, in a deployment, from a previously rendered
    visualization the analyst pointed at).
    """
    exact_counts = np.asarray(exact_counts, dtype=np.float64)
    if exact_counts.ndim != 2:
        raise ValueError("exact_counts must have shape (num_candidates, num_groups)")
    num_candidates, num_groups = exact_counts.shape

    if spec.kind == "explicit":
        q = np.asarray(spec.vector, dtype=np.float64)
        if q.shape != (num_groups,):
            raise ValueError(
                f"explicit target has {q.shape[0] if q.ndim else 0} entries, "
                f"query produces {num_groups} groups"
            )
        if np.any(q < 0) or q.sum() <= 0:
            raise ValueError("explicit target must be non-negative with positive mass")
        return q

    if spec.kind == "candidate":
        if not 0 <= spec.candidate < num_candidates:
            raise ValueError(
                f"candidate index {spec.candidate} out of range [0, {num_candidates})"
            )
        q = exact_counts[spec.candidate]
        if q.sum() <= 0:
            raise ValueError(f"candidate {spec.candidate} has no tuples; cannot be a target")
        return q.copy()

    # closest_to_uniform: ignore empty candidates, pick the min-distance one.
    uniform = uniform_target(num_groups)
    distances = candidate_distances(exact_counts, uniform)
    nonempty = exact_counts.sum(axis=1) > 0
    if not np.any(nonempty):
        raise ValueError("no candidate has any tuples; cannot resolve a target")
    distances = np.where(nonempty, distances, np.inf)
    return exact_counts[int(np.argmin(distances))].copy()
