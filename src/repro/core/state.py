"""Mutable per-candidate state carried through a HistSim run (paper Table 1).

Cumulative quantities (``n_i``, ``r_i``, ``τ_i``) accumulate across every
sample ever taken for a candidate; round quantities (``n∂_i``, ``r∂_i``,
``τ∂_i``) cover only the *fresh* samples of the current stage-2 round so that
the round's statistical test is independent of earlier data (Section 3.4).
"""

from __future__ import annotations

import numpy as np

from .distance import candidate_distances

__all__ = ["CandidateState"]


class CandidateState:
    """Vectors of per-candidate sampling state.

    Parameters
    ----------
    num_candidates:
        ``|V_Z|`` — the number of candidate attribute values.
    num_groups:
        ``|V_X|`` — the size of each histogram's support.
    candidate_rows:
        Optional per-candidate true row counts ``N_i``.  When provided, the
        state can report which candidates have been fully observed (their
        empirical histogram is exact), which matters on finite data.
    """

    def __init__(
        self,
        num_candidates: int,
        num_groups: int,
        candidate_rows: np.ndarray | None = None,
    ) -> None:
        if num_candidates < 1:
            raise ValueError(f"need at least one candidate, got {num_candidates}")
        if num_groups < 1:
            raise ValueError(f"need at least one group, got {num_groups}")
        self.num_candidates = num_candidates
        self.num_groups = num_groups
        # Cumulative across the whole run.
        self.samples = np.zeros(num_candidates, dtype=np.int64)
        self.counts = np.zeros((num_candidates, num_groups), dtype=np.int64)
        # Fresh samples for the current stage-2 round only.
        self.round_samples = np.zeros(num_candidates, dtype=np.int64)
        self.round_counts = np.zeros((num_candidates, num_groups), dtype=np.int64)
        if candidate_rows is not None:
            rows = np.asarray(candidate_rows, dtype=np.int64)
            if rows.shape != (num_candidates,):
                raise ValueError(
                    f"candidate_rows must have shape ({num_candidates},), got {rows.shape}"
                )
            if np.any(rows < 0):
                raise ValueError("candidate_rows must be non-negative")
            self.candidate_rows = rows
        else:
            self.candidate_rows = None

    def record_round_counts(self, fresh_counts: np.ndarray) -> None:
        """Add a batch of fresh per-(candidate, group) counts to the round state."""
        fresh = np.asarray(fresh_counts)
        if fresh.shape != self.round_counts.shape:
            raise ValueError(
                f"expected counts of shape {self.round_counts.shape}, got {fresh.shape}"
            )
        if np.any(fresh < 0):
            raise ValueError("fresh counts must be non-negative")
        self.round_counts += fresh
        self.round_samples += fresh.sum(axis=1)

    def fold_round_into_cumulative(self) -> None:
        """Algorithm 1 lines 15–16: ``n_i += n∂_i``, ``r_i += r∂_i``, reset round."""
        self.counts += self.round_counts
        self.samples += self.round_samples
        self.reset_round()

    def reset_round(self) -> None:
        """Clear the fresh-sample accumulators (start of a stage-2 round)."""
        self.round_samples[:] = 0
        self.round_counts[:] = 0

    def distances(self, target: np.ndarray) -> np.ndarray:
        """Cumulative distance estimates ``τ_i = d(r_i, q)``."""
        return candidate_distances(self.counts, target)

    def round_distances(self, target: np.ndarray) -> np.ndarray:
        """Round distance estimates ``τ∂_i = d(r∂_i, q)``."""
        return candidate_distances(self.round_counts, target)

    def exhausted(self) -> np.ndarray:
        """Mask of candidates whose every row has been observed (exact histograms).

        Only meaningful when true row counts were supplied; otherwise no
        candidate is ever considered exhausted.
        """
        if self.candidate_rows is None:
            return np.zeros(self.num_candidates, dtype=bool)
        return self.samples >= self.candidate_rows

    def round_exhausted(self) -> np.ndarray:
        """Mask of candidates with no fresh rows left for the current round."""
        if self.candidate_rows is None:
            return np.zeros(self.num_candidates, dtype=bool)
        return (self.samples + self.round_samples) >= self.candidate_rows
