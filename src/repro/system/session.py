"""Multi-query serving sessions: shared artifacts + interleaved execution.

A :class:`MatchSession` owns one dataset and turns the one-shot pipeline
into the skeleton of a serving system:

- **Artifact cache** — the expensive, approach-independent preparation
  (shuffle layout, bit-per-block bitmap index, exact ground truth, row
  filters) is cached by ``(query, block_size, seed)`` *and* by the
  sub-artifact keys each piece actually depends on, so two queries over the
  same candidate attribute share one shuffle and one index even when their
  targets, tolerances, or grouping attributes differ.  This is the shared-
  computation idea that makes multi-query serving O(preparation) once, not
  per query.
- **Interleaved execution** — each submitted query runs as a resumable
  :class:`~repro.core.histsim.HistSimStepper` over its own sampling engine,
  and a :class:`~repro.system.scheduler.RoundRobinScheduler` interleaves
  their steps on the session's shared simulated clock, reporting per-query
  latency and aggregate throughput.

Results are identical to standalone :func:`~repro.system.fastmatch.run_approach`
runs with the same prepared query, config, and seed: interleaving reorders
only *when* each query's work happens on the clock, never *what* it samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bitmap.builder import build_bitmap_index
from ..core.config import HistSimConfig
from ..core.histsim import HistSim, HistSimStepper
from ..core.target import resolve_target
from ..parallel import ExecutionBackend, make_backend
from ..query.executor import exact_candidate_counts
from ..query.predicate import TruePredicate
from ..query.spec import HistogramQuery
from ..storage.cost_model import DEFAULT_COST_MODEL, CostModel
from ..storage.shuffle import shuffle_table
from ..storage.table import ColumnTable
from .clock import SimulatedClock
from .fastmatch import (
    APPROACHES,
    DEFAULT_BLOCK_SIZE,
    PreparedQuery,
    assemble_report,
    engine_counters,
    make_engine,
    scan_counters,
)
from .report import RunReport
from .scan import run_scan
from .scheduler import JobOutcome, RoundRobinScheduler, ScheduleResult
from .stats_engine import StatsEngine

__all__ = ["CacheStats", "MatchSession"]


@dataclass
class CacheStats:
    """Hit/miss counters for the session's prepared-artifact cache layers."""

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)

    def record(self, layer: str, hit: bool) -> None:
        counter = self.hits if hit else self.misses
        counter[layer] = counter.get(layer, 0) + 1

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def summary(self) -> str:
        layers = sorted(set(self.hits) | set(self.misses))
        parts = [
            f"{layer}={self.hits.get(layer, 0)}h/{self.misses.get(layer, 0)}m"
            for layer in layers
        ]
        return " ".join(parts) if parts else "empty"


class _StepperJob:
    """One query's resumable execution unit inside a session."""

    def __init__(
        self,
        name: str,
        prepared: PreparedQuery,
        approach: str,
        config: HistSimConfig,
        cost_model: CostModel,
        clock: SimulatedClock,
        seed: int,
        audit: bool,
        max_step_rows: int | None,
        backend: ExecutionBackend,
    ) -> None:
        self.name = name
        self.approach = approach
        self.prepared = prepared
        self.config = config
        self._audit = audit
        rng = np.random.default_rng(seed)
        self.engine = make_engine(
            prepared, approach, config, cost_model, clock, rng, backend
        )
        stats_engine = StatsEngine(cost_model, clock)
        algorithm = HistSim(
            self.engine, prepared.target, config, stats_cost=stats_engine,
            backend=backend,
        )
        self.stepper = HistSimStepper(algorithm=algorithm, max_step_rows=max_step_rows)

    @property
    def done(self) -> bool:
        return self.stepper.done

    def step(self) -> None:
        self.stepper.step()

    def finish(self, service_ns: float) -> RunReport:
        return assemble_report(
            self.prepared,
            self.approach,
            self.stepper.result,
            self.config,
            service_ns,
            engine_counters(self.engine),
            audit=self._audit,
            query_name=self.name,
            backend=self.engine.backend.name,
        )


class _ScanJob:
    """The exact-scan baseline as a single atomic scheduler step."""

    def __init__(
        self,
        name: str,
        prepared: PreparedQuery,
        config: HistSimConfig,
        cost_model: CostModel,
        clock: SimulatedClock,
        audit: bool,
    ) -> None:
        self.name = name
        self.approach = "scan"
        self.prepared = prepared
        self.config = config
        self.cost_model = cost_model
        self.clock = clock
        self._audit = audit
        self._result = None

    @property
    def done(self) -> bool:
        return self._result is not None

    def step(self) -> None:
        self._result, _ = run_scan(
            self.prepared.shuffled,
            self.prepared.query,
            self.prepared.target,
            self.config.k,
            self.config.sigma,
            self.cost_model,
            self.clock,
        )

    def finish(self, service_ns: float) -> RunReport:
        return assemble_report(
            self.prepared,
            "scan",
            self._result,
            self.config,
            service_ns,
            scan_counters(self.prepared.shuffled),
            audit=self._audit,
            query_name=self.name,
        )


class MatchSession:
    """A long-lived, multi-query histogram-matching session over one table.

    Parameters
    ----------
    table:
        The encoded relation every submitted query runs against.
    block_size:
        Tuples per column block for the shuffled layout.
    cost_model:
        Simulated-hardware constants shared by all queries.
    audit:
        Verify guarantees against the cached exact ground truth per query.
    backend:
        Execution backend for every query's sampling: ``"serial"`` (default),
        ``"sharded"``, or an existing
        :class:`~repro.parallel.ExecutionBackend` instance.  The session
        owns a backend it creates from a string spec — the sharded
        backend's worker pool and shared-memory segments persist across
        queries and are released by :meth:`close` (or the context-manager
        exit).  A passed-in instance stays open after :meth:`close` so it
        can be shared across sessions; its creator closes it.
    workers:
        Worker-process count for ``backend="sharded"`` (default: CPU count).

    Usage
    -----
    >>> session = MatchSession(table)
    >>> session.submit(query_a)
    >>> session.submit(query_b, approach="scanmatch")
    >>> run = session.run()           # interleaves both, shared clock
    >>> run.throughput_qps, run[0].latency_seconds, run[0].report.result
    """

    def __init__(
        self,
        table: ColumnTable,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        audit: bool = True,
        backend: str | ExecutionBackend = "serial",
        workers: int | None = None,
    ) -> None:
        self.table = table
        self.block_size = block_size
        self.cost_model = cost_model
        self.audit = audit
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = make_backend(backend, workers)
        self.clock = SimulatedClock()
        self.scheduler = RoundRobinScheduler(self.clock, backend=self.backend)
        self.cache_stats = CacheStats()
        self._shuffle_cache: dict = {}
        self._index_cache: dict = {}
        self._exact_cache: dict = {}
        self._filter_cache: dict = {}
        self._prepared_cache: dict = {}
        self._submitted = 0

    # -------------------------------------------------------------- artifacts

    def _cached(self, cache: dict, key, layer: str, build):
        hit = key in cache
        self.cache_stats.record(layer, hit)
        if not hit:
            cache[key] = build()
        return cache[key]

    @property
    def cache_hits(self) -> int:
        """Total prepared-artifact cache hits across all layers."""
        return self.cache_stats.total_hits

    def prepared(self, query: HistogramQuery, seed: int = 0) -> PreparedQuery:
        """The cached :class:`PreparedQuery` for ``(query, block_size, seed)``.

        Sub-artifacts are cached at the granularity they actually depend on:
        the shuffle on ``(block_size, seed)``, the bitmap index on the
        candidate attribute, ground truth and row filters on the query
        template — so distinct queries still share whatever they can.
        """
        key = (query, self.block_size, seed)
        if key in self._prepared_cache:
            self.cache_stats.record("prepared", True)
            return self._prepared_cache[key]
        self.cache_stats.record("prepared", False)
        query.validate_against(self.table)
        shuffled = self._cached(
            self._shuffle_cache,
            (self.block_size, seed),
            "shuffle",
            lambda: shuffle_table(
                self.table, self.block_size, np.random.default_rng(seed)
            ),
        )
        index = self._cached(
            self._index_cache,
            (query.candidate_attribute, self.block_size, seed),
            "index",
            lambda: build_bitmap_index(shuffled, query.candidate_attribute),
        )
        # Exact counts are aggregates, invariant to the shuffle permutation —
        # key only on the query template so every seed shares one ground truth.
        exact = self._cached(
            self._exact_cache,
            (
                query.candidate_attribute,
                query.grouping_attribute,
                query.predicate,
            ),
            "ground_truth",
            lambda: exact_candidate_counts(shuffled.table, query),
        )
        target = resolve_target(query.target, exact)
        if isinstance(query.predicate, TruePredicate):
            row_filter = None
        else:
            row_filter = self._cached(
                self._filter_cache,
                (query.predicate, self.block_size, seed),
                "row_filter",
                lambda: query.predicate.mask(shuffled.table),
            )
        prepared = PreparedQuery(
            query=query,
            shuffled=shuffled,
            index=index,
            exact_counts=exact,
            target=target,
            row_filter=row_filter,
        )
        self._prepared_cache[key] = prepared
        return prepared

    def adopt(self, prepared: PreparedQuery, seed: int = 0) -> None:
        """Seed the cache with an externally prepared query (e.g. from
        :func:`repro.data.prepare_workload`), so later submits of the same
        query reuse its artifacts instead of re-preparing.

        The artifacts must plausibly belong to this session's table and
        layout — same row count and block size — otherwise the session
        would silently serve answers for a different dataset."""
        if prepared.shuffled.num_rows != self.table.num_rows:
            raise ValueError(
                f"prepared artifacts cover {prepared.shuffled.num_rows} rows; "
                f"this session's table has {self.table.num_rows}"
            )
        if prepared.shuffled.layout.block_size != self.block_size:
            raise ValueError(
                f"prepared artifacts use block_size="
                f"{prepared.shuffled.layout.block_size}; "
                f"this session uses {self.block_size}"
            )
        self._prepared_cache[(prepared.query, self.block_size, seed)] = prepared

    # -------------------------------------------------------------- execution

    def _make_config(self, query: HistogramQuery, config: HistSimConfig | None) -> HistSimConfig:
        if config is not None:
            return config
        return HistSimConfig(k=query.k, epsilon=0.1, delta=0.01, sigma=0.0)

    def submit(
        self,
        query: HistogramQuery,
        *,
        approach: str = "fastmatch",
        config: HistSimConfig | None = None,
        seed: int = 0,
        max_step_rows: int | None = None,
        name: str | None = None,
        prepared: PreparedQuery | None = None,
    ) -> None:
        """Enqueue one query for the next :meth:`run`.

        The query is prepared immediately (hitting the artifact cache), then
        wrapped in a resumable stepper job; ``max_step_rows`` bounds the rows
        sampled per scheduler step for finer interleaving.  ``prepared``
        bypasses and seeds the cache (see :meth:`adopt`).
        """
        if approach not in APPROACHES:
            raise ValueError(f"approach must be one of {APPROACHES}, got {approach!r}")
        if prepared is None:
            prepared = self.prepared(query, seed=seed)
        else:
            if prepared.query != query:
                raise ValueError(
                    "prepared artifacts belong to a different query "
                    f"({prepared.query.name or prepared.query.candidate_attribute!r} "
                    f"!= {query.name or query.candidate_attribute!r})"
                )
            self.adopt(prepared, seed=seed)
        config = self._make_config(query, config)
        job_name = name or query.name or f"query-{self._submitted}"
        self._submitted += 1
        if approach == "scan":
            job = _ScanJob(
                job_name, prepared, config, self.cost_model, self.clock, self.audit
            )
        else:
            job = _StepperJob(
                job_name,
                prepared,
                approach,
                config,
                self.cost_model,
                self.clock,
                seed,
                self.audit,
                max_step_rows,
                self.backend,
            )
        self.scheduler.add(job)

    def run(self) -> ScheduleResult:
        """Drain all submitted queries round-robin on the shared clock."""
        return self.scheduler.run()

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release backend resources (worker pool, shared-memory segments).

        Idempotent; the serial backend makes this a no-op.  Only a backend
        the session created itself is closed — a passed-in instance belongs
        to its creator (who may be sharing it across sessions).
        """
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "MatchSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ conveniences

    def match(
        self,
        query: HistogramQuery,
        *,
        approach: str = "fastmatch",
        config: HistSimConfig | None = None,
        seed: int = 0,
    ) -> JobOutcome:
        """Submit and run one query by itself (still hits the artifact cache)."""
        self.submit(query, approach=approach, config=config, seed=seed)
        return self.run()[-1]

    def match_many(
        self,
        queries,
        *,
        approach: str = "fastmatch",
        config: HistSimConfig | None = None,
        seed: int = 0,
        max_step_rows: int | None = None,
    ) -> ScheduleResult:
        """Submit a batch of queries and interleave them to completion."""
        for query in queries:
            self.submit(
                query,
                approach=approach,
                config=config,
                seed=seed,
                max_step_rows=max_step_rows,
            )
        return self.run()
