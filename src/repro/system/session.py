"""Multi-query serving sessions: shared artifacts + interleaved execution.

A :class:`MatchSession` owns one dataset and turns the one-shot pipeline
into the skeleton of a serving system:

- **Artifact cache** — the expensive, approach-independent preparation
  (shuffle layout, bit-per-block bitmap index, exact ground truth, row
  filters) is cached by ``(query, block_size, seed)`` *and* by the
  sub-artifact keys each piece actually depends on, so two queries over the
  same candidate attribute share one shuffle and one index even when their
  targets, tolerances, or grouping attributes differ.  This is the shared-
  computation idea that makes multi-query serving O(preparation) once, not
  per query.
- **Interleaved execution** — each submitted query runs as a resumable
  :class:`~repro.core.histsim.HistSimStepper` over its own sampling engine,
  and a :class:`~repro.system.scheduler.BatchScheduler` (policy-pluggable;
  round-robin by default) interleaves their steps on the session's shared
  simulated clock, reporting per-query latency and aggregate throughput.
  For *online* serving — accepting requests while others run, admission
  control, deadlines — put a :class:`repro.serving.FrontDoor` in front
  (:meth:`MatchSession.serve`).
- **Bounded caches** — ``max_cached_queries``/``max_cached_bytes`` turn
  the artifact cache into an LRU for long-lived serving deployments, with
  shared-memory segment unpublish on eviction.

Results are identical to standalone :func:`~repro.system.fastmatch.run_approach`
runs with the same prepared query, config, and seed: interleaving reorders
only *when* each query's work happens on the clock, never *what* it samples.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..bitmap.builder import build_bitmap_index
from ..core.config import HistSimConfig
from ..core.histsim import HistSim, HistSimStepper
from ..core.target import resolve_target
from ..obs.profiler import NULL_PROFILER
from ..obs.tracer import NULL_TRACER
from ..parallel import (
    KERNEL_SPECS,
    ExecutionBackend,
    build_pair_codes,
    make_backend,
)
from ..query.executor import exact_candidate_counts
from ..query.predicate import TruePredicate
from ..query.spec import HistogramQuery
from ..storage.cost_model import DEFAULT_COST_MODEL, CostModel
from ..storage.shuffle import shuffle_table
from ..storage.table import ColumnTable
from .clock import Clock, SimulatedClock
from .fastmatch import (
    APPROACHES,
    DEFAULT_BLOCK_SIZE,
    PreparedQuery,
    assemble_report,
    engine_counters,
    make_engine,
    scan_counters,
)
from .report import RunReport
from .scan import run_scan
from .scheduler import BatchScheduler, JobOutcome, ScheduleResult
from .stats_engine import StatsEngine

__all__ = ["CacheStats", "MatchSession"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for the session's artifact cache layers."""

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)
    evictions: dict[str, int] = field(default_factory=dict)

    def record(self, layer: str, hit: bool) -> None:
        counter = self.hits if hit else self.misses
        counter[layer] = counter.get(layer, 0) + 1

    def record_eviction(self, layer: str) -> None:
        self.evictions[layer] = self.evictions.get(layer, 0) + 1

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    @property
    def total_evictions(self) -> int:
        return sum(self.evictions.values())

    def summary(self) -> str:
        layers = sorted(set(self.hits) | set(self.misses))
        parts = [
            f"{layer}={self.hits.get(layer, 0)}h/{self.misses.get(layer, 0)}m"
            for layer in layers
        ]
        if self.total_evictions:
            parts.append(f"evicted={self.total_evictions}")
        return " ".join(parts) if parts else "empty"


class _StepperJob:
    """One query's resumable execution unit inside a session."""

    def __init__(
        self,
        name: str,
        prepared: PreparedQuery,
        approach: str,
        config: HistSimConfig,
        cost_model: CostModel,
        clock: SimulatedClock,
        seed: int,
        audit: bool,
        max_step_rows: int | None,
        backend: ExecutionBackend,
        tracer=NULL_TRACER,
        tenant: str | None = None,
        profiler=NULL_PROFILER,
        kernel: str = "auto",
    ) -> None:
        self.name = name
        self.approach = approach
        self.prepared = prepared
        self.config = config
        self.clock = clock
        self.tracer = tracer
        self.tenant = tenant
        self.profiler = profiler
        #: Stage the most recent step executed in ("stage1"/"stage2"/
        #: "stage3"); the engine stamps it on its ``engine.step`` spans.
        self.last_stage: str | None = None
        self._cost_model = cost_model
        self._audit = audit
        rng = np.random.default_rng(seed)
        self.engine = make_engine(
            prepared, approach, config, cost_model, clock, rng, backend,
            profiler=profiler, kernel=kernel,
        )
        stats_engine = StatsEngine(cost_model, clock)
        algorithm = HistSim(
            self.engine, prepared.target, config, stats_cost=stats_engine,
            backend=backend,
        )
        self.stepper = HistSimStepper(algorithm=algorithm, max_step_rows=max_step_rows)

    @property
    def done(self) -> bool:
        return self.stepper.done

    def step(self) -> None:
        profiler = self.profiler
        if not self.tracer.enabled and not profiler.enabled:
            self.stepper.step()
            return
        # The calibration signal: the lookahead estimate before and after
        # each slice, against the rows the slice actually delivered.
        # estimated_remaining_rows() is pure (no clock charges, no RNG),
        # so traced runs stay byte-identical to untraced ones.
        stepper = self.stepper
        est_before = stepper.estimated_remaining_rows()
        stage = stepper.stage_name
        started_ns = self.clock.elapsed_ns
        if self.tracer.enabled:
            with self.tracer.span(
                f"stepper.{stage}", clock=self.clock, name=self.name,
                tenant=self.tenant,
            ) as span:
                with profiler.stage(stage):
                    report = stepper.step()
                span.set(
                    round=report.round_index,
                    fresh_rows=report.fresh_rows,
                    done=report.done,
                    est_rows_before=est_before,
                    est_rows_after=stepper.estimated_remaining_rows(),
                    est_ns_before=est_before * self._cost_model.tuple_read_ns,
                    # Eq. 1 sequential-read cost of the *delivered* slice —
                    # what ServingMetrics calibrates against observed time.
                    est_slice_ns=report.fresh_rows * self._cost_model.tuple_read_ns,
                )
        else:
            with profiler.stage(stage):
                report = stepper.step()
        if profiler.enabled:
            # Same clock endpoints as the span above (the clock only moves
            # on charges inside the step), so stage sums match trace sums.
            profiler.record_stage(
                stage, self.clock.elapsed_ns - started_ns, rows=report.fresh_rows
            )
        self.last_stage = report.stage

    def estimated_remaining_rows(self) -> float:
        """Cost hint for shortest-expected-remaining-cost scheduling."""
        return self.stepper.estimated_remaining_rows()

    def estimated_remaining_ns(self) -> float:
        """Optimistic remaining service time: the lookahead row estimate at
        pure sequential-read cost.  A lower bound (probes, stats, and block
        overheads come on top), which is exactly what feasibility shedding
        wants — a deadline even this cannot meet is certainly doomed."""
        return self.estimated_remaining_rows() * self._cost_model.tuple_read_ns

    def _profile_dict(self) -> dict | None:
        if not self.profiler.enabled:
            return None
        return self.profiler.snapshot().to_dict()

    def finish(self, service_ns: float) -> RunReport:
        return assemble_report(
            self.prepared,
            self.approach,
            self.stepper.result,
            self.config,
            service_ns,
            engine_counters(self.engine),
            audit=self._audit,
            query_name=self.name,
            backend=self.engine.backend.name,
            profile=self._profile_dict(),
        )

    def finish_partial(self, service_ns: float) -> RunReport:
        """Deadline-cut answer: the current top-k estimate, stamped with the
        ε the delivered samples actually achieved (Theorem 1 inverted)."""
        result = self.stepper.partial_result()
        return assemble_report(
            self.prepared,
            self.approach,
            result,
            self.config,
            service_ns,
            engine_counters(self.engine),
            audit=False,
            query_name=self.name,
            backend=self.engine.backend.name,
            partial=not self.stepper.done,
            achieved_epsilon=self.stepper.achieved_epsilon(result.matching),
            achieved_delta=self.config.delta,
            profile=self._profile_dict(),
        )


class _ScanJob:
    """The exact-scan baseline as a single atomic scheduler step."""

    def __init__(
        self,
        name: str,
        prepared: PreparedQuery,
        config: HistSimConfig,
        cost_model: CostModel,
        clock: SimulatedClock,
        audit: bool,
        backend: ExecutionBackend | None = None,
        tracer=NULL_TRACER,
        tenant: str | None = None,
        profiler=NULL_PROFILER,
    ) -> None:
        self.name = name
        self.approach = "scan"
        self.prepared = prepared
        self.config = config
        self.cost_model = cost_model
        self.clock = clock
        self.tracer = tracer
        self.tenant = tenant
        self.profiler = profiler
        self.last_stage: str | None = None
        self._audit = audit
        self._backend = backend
        self._result = None

    @property
    def done(self) -> bool:
        return self._result is not None

    def estimated_remaining_rows(self) -> float:
        """Cost hint for serving policies: a scan reads every row, once."""
        return 0.0 if self.done else float(self.prepared.shuffled.num_rows)

    def estimated_remaining_ns(self) -> float:
        """Optimistic remaining service time of the full sequential pass."""
        return self.estimated_remaining_rows() * self.cost_model.tuple_read_ns

    def step(self) -> None:
        profiler = self.profiler
        started_ns = self.clock.elapsed_ns if profiler.enabled else 0.0
        with self.tracer.span(
            "stepper.scan",
            clock=self.clock,
            name=self.name,
            tenant=self.tenant,
            rows=self.prepared.shuffled.num_rows,
        ):
            with profiler.stage("scan"):
                self._result, _ = run_scan(
                    self.prepared.shuffled,
                    self.prepared.query,
                    self.prepared.target,
                    self.config.k,
                    self.config.sigma,
                    self.cost_model,
                    self.clock,
                    backend=self._backend,
                )
        if profiler.enabled:
            profiler.record_stage(
                "scan",
                self.clock.elapsed_ns - started_ns,
                rows=self.prepared.shuffled.num_rows,
            )
        self.last_stage = "scan"

    def finish(self, service_ns: float) -> RunReport:
        return assemble_report(
            self.prepared,
            "scan",
            self._result,
            self.config,
            service_ns,
            scan_counters(self.prepared.shuffled),
            audit=self._audit,
            query_name=self.name,
            backend=self._backend.name if self._backend is not None else "serial",
            profile=(
                self.profiler.snapshot().to_dict()
                if self.profiler.enabled
                else None
            ),
        )


class MatchSession:
    """A long-lived, multi-query histogram-matching session over one table.

    Parameters
    ----------
    table:
        The encoded relation every submitted query runs against.
    block_size:
        Tuples per column block for the shuffled layout.
    cost_model:
        Simulated-hardware constants shared by all queries.
    audit:
        Verify guarantees against the cached exact ground truth per query.
    backend:
        Execution backend for every query's sampling: ``"serial"`` (default),
        ``"sharded"``, ``"threads"``, or an existing
        :class:`~repro.parallel.ExecutionBackend` instance.  The session
        owns a backend it creates from a string spec — the sharded
        backend's worker pool and shared-memory segments (or the thread
        backend's executor) persist across queries and are released by
        :meth:`close` (or the context-manager exit).  A passed-in instance
        stays open after :meth:`close` so it can be shared across sessions;
        its creator closes it.
    workers:
        Worker count for ``backend="sharded"`` (processes; default: CPU
        count) or ``backend="threads"`` (threads).
    kernel:
        Counting-kernel spec for every query's window counting
        (:data:`~repro.parallel.KERNEL_SPECS`; default ``"auto"``).  All
        kernels are byte-identical; ``"fused"`` additionally builds and
        caches a pair-code column per ``(candidate, grouping)`` attribute
        pair in the prepared-artifact layer, so window counting degenerates
        to take + bincount at the memory cost of one narrow column.
    cpu_affinity:
        Optional worker-placement policy (``"spread"`` / ``"compact"``) for
        a worker-carrying backend created from a string spec; see
        :mod:`~repro.parallel.affinity`.
    clock:
        The :class:`~repro.system.clock.Clock` every job of this session
        charges (default: a fresh :class:`SimulatedClock`).  A
        :class:`~repro.system.registry.SessionRegistry` passes one shared
        clock so its sessions' deadlines and latencies live on one
        timeline; a :class:`~repro.system.clock.WallClock` makes the
        session serve in real time.
    policy:
        Scheduling policy for the batch drain
        (:data:`repro.serving.POLICIES`; default round-robin).  Latency
        shaping only — per-query results are policy-independent.
    max_cached_queries, max_cached_bytes:
        Bounds on the prepared-artifact cache for long-lived serving
        sessions: exceeding either evicts least-recently-used prepared
        queries, releasing sub-artifacts (shuffle, index, ground truth,
        row filters) that no cached query references any more — including
        their shared-memory segments via
        :meth:`~repro.parallel.ExecutionBackend.unpublish`.  ``None``
        (default) keeps the PR-2 unbounded behaviour.  The most recent
        entry is never evicted, so a single query larger than
        ``max_cached_bytes`` still runs.
    cache_governor:
        Optional cross-session cache coordinator (duck-typed; a
        :class:`~repro.system.registry.SessionRegistry`).  It is notified
        on every prepared-cache touch/insert/eviction
        (``cache_touched(session, key)`` / ``cache_evicted(session, key)``)
        and asked to enforce its *global* budget after inserts
        (``enforce_budget()``), on top of this session's own bounds.

    Usage
    -----
    >>> session = MatchSession(table)
    >>> session.submit(query_a)
    >>> session.submit(query_b, approach="scanmatch")
    >>> run = session.run()           # interleaves both, shared clock
    >>> run.throughput_qps, run[0].latency_seconds, run[0].report.result
    """

    def __init__(
        self,
        table: ColumnTable,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        audit: bool = True,
        backend: str | ExecutionBackend = "serial",
        workers: int | None = None,
        kernel: str = "auto",
        cpu_affinity: str | None = None,
        clock: Clock | None = None,
        policy: str = "rr",
        max_cached_queries: int | None = None,
        max_cached_bytes: int | None = None,
        cache_governor=None,
        tracer=None,
        profiler=None,
    ) -> None:
        if max_cached_queries is not None and max_cached_queries < 1:
            raise ValueError(
                f"max_cached_queries must be >= 1, got {max_cached_queries}"
            )
        if max_cached_bytes is not None and max_cached_bytes < 1:
            raise ValueError(f"max_cached_bytes must be >= 1, got {max_cached_bytes}")
        if kernel not in KERNEL_SPECS:
            raise ValueError(f"kernel must be one of {KERNEL_SPECS}, got {kernel!r}")
        self.table = table
        self.block_size = block_size
        self.cost_model = cost_model
        self.audit = audit
        self.kernel = kernel
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = make_backend(backend, workers, cpu_affinity)
        self.clock = clock if clock is not None else SimulatedClock()
        #: Observability: spans for this session's jobs, cache events, and
        #: (when the session owns its backend) backend fan-out windows.
        #: Front doors constructed over this session pick it up.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Hot-path profiler: per-job children fork from it (per-report
        #: profiles) while it keeps the session-wide aggregate.  ``None``
        #: (default) keeps every hook on the zero-overhead no-op.
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        #: Tenant key for per-tenant metrics; a SessionRegistry stamps the
        #: dataset key here, standalone sessions stay anonymous.
        self.tenant: str | None = None
        if self.tracer.enabled and self._owns_backend:
            self.backend.set_tracer(self.tracer)
        if self.profiler.enabled and self._owns_backend:
            self.backend.set_profiler(self.profiler)
        self.scheduler = BatchScheduler(self.clock, backend=self.backend, policy=policy)
        self.cache_stats = CacheStats()
        self.max_cached_queries = max_cached_queries
        self.max_cached_bytes = max_cached_bytes
        self._governor = cache_governor
        self._shuffle_cache: dict = {}
        self._index_cache: dict = {}
        self._exact_cache: dict = {}
        self._filter_cache: dict = {}
        self._codes_cache: dict = {}
        self._prepared_cache: OrderedDict = OrderedDict()
        self._submitted = 0
        self.closed = False

    # -------------------------------------------------------------- artifacts

    def _record_cache(self, layer: str, hit: bool) -> None:
        self.cache_stats.record(layer, hit)
        if self.tracer.enabled:
            self.tracer.event(
                "cache.hit" if hit else "cache.miss",
                clock=self.clock,
                layer=layer,
                tenant=self.tenant,
            )

    def _record_eviction(self, layer: str) -> None:
        self.cache_stats.record_eviction(layer)
        if self.tracer.enabled:
            self.tracer.event(
                "cache.evict", clock=self.clock, layer=layer, tenant=self.tenant
            )

    def _cached(self, cache: dict, key, layer: str, build):
        hit = key in cache
        self._record_cache(layer, hit)
        if not hit:
            cache[key] = build()
        return cache[key]

    @property
    def cache_hits(self) -> int:
        """Total prepared-artifact cache hits across all layers."""
        return self.cache_stats.total_hits

    @property
    def cache_bytes(self) -> int:
        """Bytes held by artifacts the cached prepared queries reference.

        Shared artifacts are counted once (two queries over one shuffle pay
        for it once), matching what eviction can actually free.
        """
        seen: set[int] = set()
        total = 0
        for prepared in self._prepared_cache.values():
            for obj, nbytes in (
                (prepared.shuffled, prepared.shuffled.table.nbytes),
                (prepared.index, prepared.index.nbytes),
                (prepared.exact_counts, prepared.exact_counts.nbytes),
                (
                    prepared.row_filter,
                    prepared.row_filter.nbytes
                    if prepared.row_filter is not None
                    else 0,
                ),
                (
                    prepared.pair_codes,
                    prepared.pair_codes.nbytes
                    if prepared.pair_codes is not None
                    else 0,
                ),
            ):
                if obj is None or id(obj) in seen:
                    continue
                seen.add(id(obj))
                total += nbytes
        return total

    def _release_artifacts(self, evicted: PreparedQuery) -> None:
        """Drop the evicted entry's sub-artifacts no live entry still uses,
        and unpublish their shared-memory segments from the backend."""
        live = list(self._prepared_cache.values())
        unpublish: list = []
        if not any(p.shuffled is evicted.shuffled for p in live):
            self._shuffle_cache = {
                k: v for k, v in self._shuffle_cache.items() if v is not evicted.shuffled
            }
            self._record_eviction("shuffle")
            unpublish.append(evicted.shuffled.table)
        if not any(p.index is evicted.index for p in live):
            self._index_cache = {
                k: v for k, v in self._index_cache.items() if v is not evicted.index
            }
            self._record_eviction("index")
        if not any(p.exact_counts is evicted.exact_counts for p in live):
            self._exact_cache = {
                k: v
                for k, v in self._exact_cache.items()
                if v is not evicted.exact_counts
            }
            self._record_eviction("ground_truth")
        if evicted.row_filter is not None and not any(
            p.row_filter is evicted.row_filter for p in live
        ):
            self._filter_cache = {
                k: v for k, v in self._filter_cache.items() if v is not evicted.row_filter
            }
            self._record_eviction("row_filter")
            unpublish.append(evicted.row_filter)
        if evicted.pair_codes is not None and not any(
            p.pair_codes is evicted.pair_codes for p in live
        ):
            self._codes_cache = {
                k: v
                for k, v in self._codes_cache.items()
                if v is not evicted.pair_codes
            }
            self._record_eviction("pair_codes")
            unpublish.append(evicted.pair_codes)
        if unpublish:
            self.backend.unpublish(*unpublish)

    def _over_cache_bounds(self) -> bool:
        if (
            self.max_cached_queries is not None
            and len(self._prepared_cache) > self.max_cached_queries
        ):
            return True
        return (
            self.max_cached_bytes is not None
            and self.cache_bytes > self.max_cached_bytes
        )

    def _evict_prepared(self, key) -> None:
        """Drop one cached prepared query, release its orphaned artifacts,
        and tell the cross-session governor (if any) the slot is gone."""
        evicted = self._prepared_cache.pop(key)
        self._record_eviction("prepared")
        self._release_artifacts(evicted)
        if self._governor is not None:
            self._governor.cache_evicted(self, key)

    def evict_prepared(self, key) -> bool:
        """Evict one specific cached entry (cross-session budget hook).

        Refuses the session's most recent entry — it is the one being
        served — and unknown keys; returns whether an eviction happened.
        """
        if key not in self._prepared_cache or len(self._prepared_cache) <= 1:
            return False
        if key == next(reversed(self._prepared_cache)):
            return False
        self._evict_prepared(key)
        return True

    def _enforce_cache_bounds(self) -> None:
        """Evict least-recently-used prepared queries until within bounds.

        The most recent entry always survives (it is the one being served),
        so an over-budget single query degrades to cache-nothing-else
        rather than failing.
        """
        while len(self._prepared_cache) > 1 and self._over_cache_bounds():
            self._evict_prepared(next(iter(self._prepared_cache)))

    def prepared(self, query: HistogramQuery, seed: int = 0) -> PreparedQuery:
        """The cached :class:`PreparedQuery` for ``(query, block_size, seed)``.

        Sub-artifacts are cached at the granularity they actually depend on:
        the shuffle on ``(block_size, seed)``, the bitmap index on the
        candidate attribute, ground truth and row filters on the query
        template — so distinct queries still share whatever they can.
        """
        key = (query, self.block_size, seed)
        if key in self._prepared_cache:
            self._record_cache("prepared", True)
            self._prepared_cache.move_to_end(key)
            if self._governor is not None:
                self._governor.cache_touched(self, key)
            return self._prepared_cache[key]
        self._record_cache("prepared", False)
        query.validate_against(self.table)
        shuffled = self._cached(
            self._shuffle_cache,
            (self.block_size, seed),
            "shuffle",
            lambda: shuffle_table(
                self.table, self.block_size, np.random.default_rng(seed)
            ),
        )
        index = self._cached(
            self._index_cache,
            (query.candidate_attribute, self.block_size, seed),
            "index",
            lambda: build_bitmap_index(shuffled, query.candidate_attribute),
        )
        # Exact counts are aggregates, invariant to the shuffle permutation —
        # key only on the query template so every seed shares one ground truth.
        exact = self._cached(
            self._exact_cache,
            (
                query.candidate_attribute,
                query.grouping_attribute,
                query.predicate,
            ),
            "ground_truth",
            lambda: exact_candidate_counts(shuffled.table, query, backend=self.backend),
        )
        target = resolve_target(query.target, exact)
        if isinstance(query.predicate, TruePredicate):
            row_filter = None
        else:
            row_filter = self._cached(
                self._filter_cache,
                (query.predicate, self.block_size, seed),
                "row_filter",
                lambda: query.predicate.mask(shuffled.table),
            )
        pair_codes = None
        if self.kernel == "fused":
            # The fused kernel's prepared artifact: the pair-code column of
            # the *shuffled* table, shared by every query over the same
            # (candidate, grouping) attribute pair on this layout.
            pair_codes = self._cached(
                self._codes_cache,
                (
                    query.candidate_attribute,
                    query.grouping_attribute,
                    self.block_size,
                    seed,
                ),
                "pair_codes",
                lambda: build_pair_codes(
                    shuffled.table.column(query.candidate_attribute),
                    shuffled.table.column(query.grouping_attribute),
                    shuffled.table.cardinality(query.candidate_attribute),
                    shuffled.table.cardinality(query.grouping_attribute),
                ),
            )
        prepared = PreparedQuery(
            query=query,
            shuffled=shuffled,
            index=index,
            exact_counts=exact,
            target=target,
            row_filter=row_filter,
            pair_codes=pair_codes,
        )
        self._prepared_cache[key] = prepared
        if self._governor is not None:
            self._governor.cache_touched(self, key)
        self._enforce_cache_bounds()
        if self._governor is not None:
            self._governor.enforce_budget()
        return prepared

    def adopt(self, prepared: PreparedQuery, seed: int = 0) -> None:
        """Seed the cache with an externally prepared query (e.g. from
        :func:`repro.data.prepare_workload`), so later submits of the same
        query reuse its artifacts instead of re-preparing.

        The artifacts must plausibly belong to this session's table and
        layout — same row count and block size — otherwise the session
        would silently serve answers for a different dataset."""
        if prepared.shuffled.num_rows != self.table.num_rows:
            raise ValueError(
                f"prepared artifacts cover {prepared.shuffled.num_rows} rows; "
                f"this session's table has {self.table.num_rows}"
            )
        if prepared.shuffled.layout.block_size != self.block_size:
            raise ValueError(
                f"prepared artifacts use block_size="
                f"{prepared.shuffled.layout.block_size}; "
                f"this session uses {self.block_size}"
            )
        key = (prepared.query, self.block_size, seed)
        self._prepared_cache[key] = prepared
        self._prepared_cache.move_to_end(key)
        if self._governor is not None:
            self._governor.cache_touched(self, key)
        self._enforce_cache_bounds()
        if self._governor is not None:
            self._governor.enforce_budget()

    # -------------------------------------------------------------- execution

    def _make_config(self, query: HistogramQuery, config: HistSimConfig | None) -> HistSimConfig:
        if config is not None:
            return config
        return HistSimConfig(k=query.k, epsilon=0.1, delta=0.01, sigma=0.0)

    def make_job(
        self,
        query: HistogramQuery,
        *,
        approach: str = "fastmatch",
        config: HistSimConfig | None = None,
        seed: int = 0,
        max_step_rows: int | None = None,
        name: str | None = None,
        prepared: PreparedQuery | None = None,
    ):
        """Prepare one query (hitting the artifact cache) and wrap it in a
        resumable job, **without** enqueueing it.

        This is the seam the serving front door uses: it schedules jobs on
        its own deadline-aware scheduler rather than the session's batch
        drain.  ``max_step_rows`` bounds the rows sampled per scheduler
        step for finer interleaving/preemption; ``prepared`` bypasses and
        seeds the cache (see :meth:`adopt`).
        """
        if self.closed:
            raise RuntimeError("MatchSession is closed")
        if approach not in APPROACHES:
            raise ValueError(f"approach must be one of {APPROACHES}, got {approach!r}")
        if prepared is None:
            prepared = self.prepared(query, seed=seed)
        else:
            if prepared.query != query:
                raise ValueError(
                    "prepared artifacts belong to a different query "
                    f"({prepared.query.name or prepared.query.candidate_attribute!r} "
                    f"!= {query.name or query.candidate_attribute!r})"
                )
            self.adopt(prepared, seed=seed)
        config = self._make_config(query, config)
        job_name = name or query.name or f"query-{self._submitted}"
        self._submitted += 1
        # Per-job child profiler: the job's RunReport carries its own
        # profile while records still roll up into the session aggregate.
        job_profiler = self.profiler.fork()
        if approach == "scan":
            return _ScanJob(
                job_name, prepared, config, self.cost_model, self.clock, self.audit,
                backend=self.backend,
                tracer=self.tracer,
                tenant=self.tenant,
                profiler=job_profiler,
            )
        return _StepperJob(
            job_name,
            prepared,
            approach,
            config,
            self.cost_model,
            self.clock,
            seed,
            self.audit,
            max_step_rows,
            self.backend,
            tracer=self.tracer,
            tenant=self.tenant,
            profiler=job_profiler,
            kernel=self.kernel,
        )

    def job_for_request(self, request, default_max_step_rows: int | None = None):
        """Build the resumable job for one serving
        :class:`~repro.serving.QueryRequest` (the front-door seam).

        ``request.dataset`` is a registry routing key; a single-session
        door serves whatever it is handed, so the key is not checked here
        — :class:`~repro.system.registry.SessionRegistry` routes on it.
        """
        return self.make_job(
            request.query,
            approach=request.approach,
            config=request.config,
            seed=request.seed,
            max_step_rows=(
                request.max_step_rows
                if request.max_step_rows is not None
                else default_max_step_rows
            ),
            name=request.name,
        )

    def submit(
        self,
        query: HistogramQuery,
        *,
        approach: str = "fastmatch",
        config: HistSimConfig | None = None,
        seed: int = 0,
        max_step_rows: int | None = None,
        name: str | None = None,
        prepared: PreparedQuery | None = None,
    ) -> None:
        """Enqueue one query for the next :meth:`run` (see :meth:`make_job`)."""
        self.scheduler.add(
            self.make_job(
                query,
                approach=approach,
                config=config,
                seed=seed,
                max_step_rows=max_step_rows,
                name=name,
                prepared=prepared,
            )
        )

    def run(self) -> ScheduleResult:
        """Drain all submitted queries on the shared clock (session policy)."""
        return self.scheduler.run()

    def serve(
        self,
        *,
        policy: str = "edf",
        max_queue: int | None = None,
        default_deadline_ns: float | None = None,
        default_max_step_rows: int | None = None,
        max_concurrent_steps: int = 1,
    ):
        """An online :class:`~repro.serving.FrontDoor` over this session.

        The front door accepts :class:`~repro.serving.QueryRequest`\\ s
        while earlier ones run, sheds load beyond ``max_queue``, and
        settles per-request deadlines; its shutdown closes this session
        (idempotently).  ``max_concurrent_steps`` > 1 offloads steps to a
        bounded executor so different requests' steps run concurrently
        (answers stay byte-identical; latency changes).
        """
        from ..serving.frontdoor import FrontDoor

        return FrontDoor(
            self,
            policy=policy,
            max_queue=max_queue,
            default_deadline_ns=default_deadline_ns,
            default_max_step_rows=default_max_step_rows,
            max_concurrent_steps=max_concurrent_steps,
        )

    def serve_async(
        self,
        *,
        policy: str = "edf",
        max_queue: int | None = None,
        default_deadline_ns: float | None = None,
        default_max_step_rows: int | None = None,
        max_concurrent_steps: int = 1,
    ):
        """An :class:`~repro.serving.AsyncFrontDoor` over this session
        (asyncio driver; start it from inside a running event loop)."""
        from ..serving.async_frontdoor import AsyncFrontDoor

        return AsyncFrontDoor(
            self,
            policy=policy,
            max_queue=max_queue,
            default_deadline_ns=default_deadline_ns,
            default_max_step_rows=default_max_step_rows,
            max_concurrent_steps=max_concurrent_steps,
        )

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release backend resources (worker pool, shared-memory segments).

        Idempotent — the front door's shutdown path closes the session it
        serves, and a caller using the session as a context manager then
        closes it again; both orders are safe.  Only a backend the session
        created itself is closed — a passed-in instance belongs to its
        creator (who may be sharing it across sessions).  After close,
        :meth:`make_job`/:meth:`submit` raise.
        """
        if self.closed:
            return
        self.closed = True
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "MatchSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ conveniences

    def match(
        self,
        query: HistogramQuery,
        *,
        approach: str = "fastmatch",
        config: HistSimConfig | None = None,
        seed: int = 0,
    ) -> JobOutcome:
        """Submit and run one query by itself (still hits the artifact cache)."""
        self.submit(query, approach=approach, config=config, seed=seed)
        return self.run()[-1]

    def match_many(
        self,
        queries,
        *,
        approach: str = "fastmatch",
        config: HistSimConfig | None = None,
        seed: int = 0,
        max_step_rows: int | None = None,
    ) -> ScheduleResult:
        """Submit a batch of queries and interleave them to completion."""
        for query in queries:
            self.submit(
                query,
                approach=approach,
                config=config,
                seed=seed,
                max_step_rows=max_step_rows,
            )
        return self.run()
