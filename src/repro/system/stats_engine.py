"""The statistics engine (paper Section 4.1 / 4.3).

In FastMatch the statistics engine owns the HistSim logic while the sampling
engine owns I/O; the two communicate through per-candidate counts and
budgets.  In this reproduction HistSim itself is the shared logic
(:mod:`repro.core.histsim`); the statistics engine's remaining job is cost
attribution — charging the simulated clock for the statistical work each
stage performs (P-values, distances, sorts), which is what makes the paper's
test-frequency trade-off (Challenge 2) visible in the simulated timings.
"""

from __future__ import annotations

from ..storage.cost_model import CostModel
from .clock import SimulatedClock

__all__ = ["StatsEngine"]


class StatsEngine:
    """Charges HistSim's statistics work to the simulated clock.

    Instances are callables matching the :data:`~repro.core.histsim.StatsCostHook`
    signature, so they plug straight into :class:`~repro.core.histsim.HistSim`.
    """

    def __init__(self, cost_model: CostModel, clock: SimulatedClock) -> None:
        self.cost_model = cost_model
        self.clock = clock
        self.calls: list[tuple[str, int]] = []

    def __call__(self, stage: str, scalar_ops: int) -> None:
        self.calls.append((stage, scalar_ops))
        self.clock.charge_serial(stats=self.cost_model.stats_cost(scalar_ops))

    @property
    def total_ops(self) -> int:
        return sum(ops for _, ops in self.calls)
