"""Terminal rendering of histogram visualizations.

FastMatch's output *is* a set of visualizations (Section 2.1); this module
renders them as aligned ASCII bar charts so examples and the CLI can show
the analyst what was matched — including the side-by-side
target-vs-candidate view of the paper's Figure 1.
"""

from __future__ import annotations

import numpy as np

from ..core.distance import l1_distance, normalize
from ..core.result import MatchResult

__all__ = ["render_histogram", "render_comparison", "render_result"]

_BAR = "█"
_HALF = "▌"


def render_histogram(
    counts: np.ndarray,
    labels: list[str] | None = None,
    width: int = 40,
    title: str = "",
) -> str:
    """One histogram as horizontal ASCII bars (normalized shares shown)."""
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1:
        raise ValueError("counts must be a vector")
    if width < 4:
        raise ValueError(f"width must be >= 4, got {width}")
    shares = normalize(counts)
    peak = shares.max() if shares.size and shares.max() > 0 else 1.0
    if labels is None:
        labels = [str(i) for i in range(counts.size)]
    if len(labels) != counts.size:
        raise ValueError(f"need {counts.size} labels, got {len(labels)}")
    label_width = max((len(str(l)) for l in labels), default=1)

    lines = []
    if title:
        lines.append(title)
    for label, share in zip(labels, shares):
        cells = share / peak * width
        bar = _BAR * int(cells) + (_HALF if cells - int(cells) >= 0.5 else "")
        lines.append(f"{str(label):>{label_width}} |{bar:<{width}}| {share:6.1%}")
    return "\n".join(lines)


def render_comparison(
    target: np.ndarray,
    candidate: np.ndarray,
    labels: list[str] | None = None,
    width: int = 24,
    target_name: str = "target",
    candidate_name: str = "candidate",
) -> str:
    """Side-by-side target-vs-candidate view (the paper's Figure 1)."""
    target = np.asarray(target, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if target.shape != candidate.shape or target.ndim != 1:
        raise ValueError("target and candidate must be vectors of equal length")
    t_bar = normalize(target)
    c_bar = normalize(candidate)
    peak = max(t_bar.max(), c_bar.max()) or 1.0
    if labels is None:
        labels = [str(i) for i in range(target.size)]
    label_width = max((len(str(l)) for l in labels), default=1)

    header = (
        f"{'':>{label_width}}  {target_name:<{width}}  {candidate_name:<{width}}"
        f"   (L1 distance {l1_distance(target, candidate):.3f})"
    )
    lines = [header]
    for label, t, c in zip(labels, t_bar, c_bar):
        t_cells = _BAR * int(t / peak * width)
        c_cells = _BAR * int(c / peak * width)
        lines.append(
            f"{str(label):>{label_width}}  {t_cells:<{width}}  {c_cells:<{width}}"
        )
    return "\n".join(lines)


def render_result(
    result: MatchResult,
    target: np.ndarray,
    candidate_labels: list[str] | None = None,
    group_labels: list[str] | None = None,
    width: int = 24,
    max_candidates: int = 3,
) -> str:
    """A match result as target-vs-candidate panels, closest first."""
    if max_candidates < 1:
        raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
    blocks = []
    for position, candidate in enumerate(result.matching[:max_candidates]):
        name = (
            candidate_labels[candidate]
            if candidate_labels is not None
            else f"candidate {candidate}"
        )
        blocks.append(
            render_comparison(
                target,
                result.histograms[position],
                labels=group_labels,
                width=width,
                candidate_name=f"#{position + 1} {name}",
            )
        )
    return "\n\n".join(blocks)
