"""The FastMatch runner (paper Section 4): wire HistSim to the block engine.

Four approaches, matching Section 5.2's comparison points:

- ``"scan"`` — exact full pass (always correct, no sampling).
- ``"scanmatch"`` — HistSim over sequential block reads, no block selection.
- ``"syncmatch"`` — HistSim + AnyActive applied synchronously per block
  (Algorithm 2): selection cost serializes with I/O.
- ``"fastmatch"`` — HistSim + AnyActive with lookahead marking
  (Algorithm 3): selection overlaps I/O on the simulated clock.

:class:`PreparedQuery` caches the expensive, approach-independent work
(shuffle, index build, exact ground truth, target resolution) so the
benchmarks can compare approaches on identical substrates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bitmap.bitmap_index import BlockBitmapIndex
from ..bitmap.builder import build_bitmap_index
from ..core.config import HistSimConfig
from ..core.guarantees import audit_result
from ..core.histsim import HistSim
from ..core.result import MatchResult
from ..core.target import resolve_target
from ..parallel.backend import ExecutionBackend
from ..query.executor import exact_candidate_counts
from ..query.predicate import TruePredicate
from ..query.spec import HistogramQuery
from ..sampling.engine import BlockSamplingEngine
from ..sampling.policies import (
    AnyActiveLookaheadPolicy,
    AnyActiveSyncPolicy,
    ScanAllPolicy,
)
from ..storage.cost_model import DEFAULT_COST_MODEL, CostModel
from ..storage.shuffle import ShuffledTable, shuffle_table
from ..storage.table import ColumnTable
from .clock import SimulatedClock
from .report import RunReport
from .scan import run_scan
from .stats_engine import StatsEngine

__all__ = [
    "APPROACHES",
    "PreparedQuery",
    "assemble_report",
    "engine_counters",
    "make_engine",
    "run_approach",
    "scan_counters",
]

#: Tuples per column block.  The paper's 600-byte blocks over raw rows
#: averaging ~50 bytes (32 GiB / 606M rows) hold a few dozen tuples; we use
#: 32, which also preserves the paper's per-block candidate-presence regime
#: (presence = block_size × selectivity) at our smaller row counts.
DEFAULT_BLOCK_SIZE = 32

#: SyncMatch refreshes active state per block; the simulation refreshes at
#: this small window granularity while still charging exact per-block probes.
SYNC_WINDOW_BLOCKS = 32

#: ScanMatch I/O batch (pure sequential reads between termination checks).
SCANMATCH_WINDOW_BLOCKS = 1024

APPROACHES = ("scan", "scanmatch", "syncmatch", "fastmatch")


@dataclass(frozen=True)
class PreparedQuery:
    """Approach-independent preparation for one query on one dataset."""

    query: HistogramQuery
    shuffled: ShuffledTable
    index: BlockBitmapIndex
    exact_counts: np.ndarray
    target: np.ndarray
    row_filter: np.ndarray | None
    #: Optional prepared pair-code column
    #: (:func:`~repro.parallel.kernels.build_pair_codes`), built by the
    #: session layer when its kernel is ``"fused"``; enables take+bincount
    #: window counting.  ``None`` for one-shot runs — building it costs a
    #: full-column pass, worth paying only when the artifact is cached.
    pair_codes: np.ndarray | None = None

    @classmethod
    def prepare(
        cls,
        table: ColumnTable,
        query: HistogramQuery,
        rng: np.random.Generator,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> "PreparedQuery":
        """Shuffle, index, compute ground truth, and resolve the target."""
        query.validate_against(table)
        shuffled = shuffle_table(table, block_size, rng)
        index = build_bitmap_index(shuffled, query.candidate_attribute)
        exact = exact_candidate_counts(shuffled.table, query)
        target = resolve_target(query.target, exact)
        if isinstance(query.predicate, TruePredicate):
            row_filter = None
        else:
            row_filter = query.predicate.mask(shuffled.table)
        return cls(
            query=query,
            shuffled=shuffled,
            index=index,
            exact_counts=exact,
            target=target,
            row_filter=row_filter,
        )

    @property
    def num_candidates(self) -> int:
        return self.exact_counts.shape[0]

    @property
    def num_groups(self) -> int:
        return self.exact_counts.shape[1]


def make_engine(
    prepared: PreparedQuery,
    approach: str,
    config: HistSimConfig,
    cost_model: CostModel,
    clock: SimulatedClock,
    rng: np.random.Generator,
    backend: ExecutionBackend | None = None,
    profiler=None,
    kernel: str = "auto",
) -> BlockSamplingEngine:
    """Build the block sampling engine for one sampling approach.

    Shared by :func:`run_approach` (one-shot) and the session layer
    (:mod:`repro.system.session`), which wires the same engine to a
    resumable stepper on a shared clock.  ``backend`` routes the engine's
    block delivery (serial by default; sharded when opted in); ``kernel``
    selects the counting kernel, and the prepared query's ``pair_codes``
    (when built) ride along to enable the fused one."""
    if approach == "fastmatch":
        policy = AnyActiveLookaheadPolicy()
        window = config.lookahead
    elif approach == "syncmatch":
        policy = AnyActiveSyncPolicy()
        window = SYNC_WINDOW_BLOCKS
    elif approach == "scanmatch":
        policy = ScanAllPolicy()
        window = SCANMATCH_WINDOW_BLOCKS
    else:
        raise ValueError(f"unknown sampling approach {approach!r}")
    return BlockSamplingEngine(
        shuffled=prepared.shuffled,
        candidate_attribute=prepared.query.candidate_attribute,
        grouping_attribute=prepared.query.grouping_attribute,
        index=prepared.index,
        cost_model=cost_model,
        clock=clock,
        policy=policy,
        rng=rng,
        window_blocks=window,
        row_filter=prepared.row_filter,
        backend=backend,
        profiler=profiler,
        kernel=kernel,
        codes=prepared.pair_codes,
    )


def engine_counters(engine: BlockSamplingEngine) -> dict[str, int]:
    """An engine's observable effort, in the RunReport counters layout."""
    return {
        "blocks_read": engine.counters.blocks_read,
        "blocks_skipped": engine.counters.blocks_skipped,
        "probes": engine.counters.probes,
        "rows_delivered": engine.counters.rows_delivered,
    }


def scan_counters(shuffled: ShuffledTable) -> dict[str, int]:
    """The exact-scan baseline's effort: every block, no selection."""
    return {
        "blocks_read": shuffled.num_blocks,
        "blocks_skipped": 0,
        "probes": 0,
        "rows_delivered": shuffled.num_rows,
    }


def assemble_report(
    prepared: PreparedQuery,
    approach: str,
    result: MatchResult,
    config: HistSimConfig,
    elapsed_ns: float,
    counters: dict[str, int],
    *,
    breakdown: dict[str, float] | None = None,
    audit: bool = True,
    query_name: str | None = None,
    backend: str = "serial",
    partial: bool = False,
    achieved_epsilon: float | None = None,
    achieved_delta: float | None = None,
    profile: dict | None = None,
) -> RunReport:
    """Package one execution's outcome, auditing against the cached truth.

    Shared by :func:`run_approach` and the session jobs so the report shape
    stays in one place.  ``partial`` marks a deadline-cut answer (serving
    front door); partial answers carry their actually-achieved ε/δ and are
    never audited against the full guarantees they do not claim.
    """
    report_audit = None
    if audit and not partial:
        report_audit = audit_result(
            result, prepared.exact_counts, prepared.target, config.epsilon, config.sigma
        )
    return RunReport(
        approach=approach,
        query_name=query_name
        or prepared.query.name
        or prepared.query.candidate_attribute,
        result=result,
        elapsed_ns=elapsed_ns,
        breakdown=breakdown or {},
        counters=counters,
        audit=report_audit,
        backend=backend,
        partial=partial,
        achieved_epsilon=achieved_epsilon,
        achieved_delta=achieved_delta,
        profile=profile,
    )


def run_approach(
    prepared: PreparedQuery,
    approach: str,
    config: HistSimConfig,
    seed: int = 0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    audit: bool = True,
    backend: ExecutionBackend | None = None,
    kernel: str = "auto",
) -> RunReport:
    """Execute one approach on a prepared query and report result + cost.

    ``backend`` selects the execution backend for every approach — the
    sampling approaches shard per-window counting, the exact ``"scan"``
    shards its single counting pass — with byte-identical results either
    way; the caller owns its lifetime (:meth:`ExecutionBackend.close`).
    ``kernel`` selects the counting kernel (all choices byte-identical).
    """
    if approach not in APPROACHES:
        raise ValueError(f"approach must be one of {APPROACHES}, got {approach!r}")
    rng = np.random.default_rng(seed)
    clock = SimulatedClock()
    backend_name = "serial"

    if approach == "scan":
        result, clock = run_scan(
            prepared.shuffled,
            prepared.query,
            prepared.target,
            config.k,
            config.sigma,
            cost_model,
            clock,
            backend=backend,
        )
        counters = scan_counters(prepared.shuffled)
        if backend is not None:
            backend_name = backend.name
    else:
        engine = make_engine(
            prepared, approach, config, cost_model, clock, rng, backend, kernel=kernel
        )
        stats_engine = StatsEngine(cost_model, clock)
        algo = HistSim(
            engine, prepared.target, config, stats_cost=stats_engine, backend=backend
        )
        result = algo.run()
        counters = engine_counters(engine)
        backend_name = engine.backend.name

    return assemble_report(
        prepared,
        approach,
        result,
        config,
        clock.elapsed_ns,
        counters,
        breakdown=clock.snapshot(),
        audit=audit,
        backend=backend_name,
    )
