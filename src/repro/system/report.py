"""Run reports: what one execution of an approach produced and what it cost."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..core.guarantees import GuaranteeAudit
from ..core.result import MatchResult

__all__ = ["RunReport", "ServingReport"]


@dataclass(frozen=True)
class RunReport:
    """Outcome of running one approach on one prepared query.

    ``elapsed_ns`` is simulated time from the cost model (the paper's
    wall-clock analogue); ``breakdown`` splits it by component;
    ``counters`` records I/O effort (blocks read/skipped, bitmap probes,
    rows delivered); ``backend`` names the execution backend that served
    the run (``"serial"`` or ``"sharded"``), so benchmark JSON derived from
    reports records how results were produced.

    ``partial`` marks a deadline-cut answer from the serving front door:
    the result is the best current top-k estimate rather than a completed
    run, and ``achieved_epsilon``/``achieved_delta`` record the
    reconstruction guarantee the delivered samples *actually* bought
    (Theorem 1 inverted; the separation guarantee does not hold for partial
    answers).  Completed runs leave all three at their defaults.
    """

    approach: str
    query_name: str
    result: MatchResult
    elapsed_ns: float
    breakdown: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    audit: GuaranteeAudit | None = None
    backend: str = "serial"
    partial: bool = False
    achieved_epsilon: float | None = None
    achieved_delta: float | None = None
    #: Hot-path profile of the run (:meth:`ProfileSnapshot.to_dict` —
    #: totals/stages/kernels), attached when the session ran with a
    #: :class:`~repro.obs.Profiler`; ``None`` when profiling was off.
    profile: dict | None = None

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ns * 1e-9

    def speedup_over(self, baseline: "RunReport") -> float:
        """Baseline time divided by this run's time (Table 4's headline)."""
        if self.elapsed_ns <= 0:
            return float("inf")
        return baseline.elapsed_ns / self.elapsed_ns


@dataclass(frozen=True)
class ServingReport:
    """Aggregate front-door serving metrics over one window of requests.

    Produced by :meth:`repro.serving.ServingMetrics.snapshot`.  Latency is
    simulated time from submission (or open-loop arrival) to finalization
    on the shared clock; percentiles cover every finalized request
    (completed, partial, or missed — shed requests never ran, so they have
    no latency).  ``deadline_hit_rate`` is completions within their
    deadline over all deadline-carrying requests, with shed and cancelled
    requests counted as misses: a front door that sheds its way to fast
    percentiles should not also get a flattering hit rate.
    """

    requests: int
    completed: int
    partial: int
    missed: int
    shed: int
    cancelled: int
    deadline_hit_rate: float
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    mean_latency_ms: float
    mean_service_ms: float
    #: Lifecycle-stage time budget (stage -> count/total_ms/p50_ms/p99_ms/rows),
    #: populated when the metrics object is subscribed to a tracer.
    per_stage: dict = field(default_factory=dict)
    #: Per-tenant status counts + latency summary, populated when jobs carry
    #: a tenant (every registry-routed request does).
    per_tenant: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-friendly form for benchmark output."""
        return asdict(self)
