"""Run reports: what one execution of an approach produced and what it cost."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.guarantees import GuaranteeAudit
from ..core.result import MatchResult

__all__ = ["RunReport"]


@dataclass(frozen=True)
class RunReport:
    """Outcome of running one approach on one prepared query.

    ``elapsed_ns`` is simulated time from the cost model (the paper's
    wall-clock analogue); ``breakdown`` splits it by component;
    ``counters`` records I/O effort (blocks read/skipped, bitmap probes,
    rows delivered); ``backend`` names the execution backend that served
    the run (``"serial"`` or ``"sharded"``), so benchmark JSON derived from
    reports records how results were produced.
    """

    approach: str
    query_name: str
    result: MatchResult
    elapsed_ns: float
    breakdown: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    audit: GuaranteeAudit | None = None
    backend: str = "serial"

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ns * 1e-9

    def speedup_over(self, baseline: "RunReport") -> float:
        """Baseline time divided by this run's time (Table 4's headline)."""
        if self.elapsed_ns <= 0:
            return float("inf")
        return baseline.elapsed_ns / self.elapsed_ns
