"""The FastMatch system architecture (Section 4): clocks (simulated and
wall), statistics engine, Scan baseline, the four-approach runner, and the
multi-query serving layer (sessions, the batch scheduler, and the
multi-tenant session registry)."""

from .clock import Clock, SimulatedClock, WallClock
from .fastmatch import (
    APPROACHES,
    DEFAULT_BLOCK_SIZE,
    PreparedQuery,
    make_engine,
    run_approach,
)
from .report import RunReport, ServingReport
from .scan import run_scan
from .scheduler import (
    BatchScheduler,
    JobOutcome,
    RoundRobinScheduler,
    ScheduleResult,
)
from .registry import SessionRegistry
from .session import CacheStats, MatchSession
from .stats_engine import StatsEngine
from .visualize import render_comparison, render_histogram, render_result

__all__ = [
    "render_comparison",
    "render_histogram",
    "render_result",
    "APPROACHES",
    "DEFAULT_BLOCK_SIZE",
    "PreparedQuery",
    "make_engine",
    "run_approach",
    "RunReport",
    "ServingReport",
    "run_scan",
    "Clock",
    "SimulatedClock",
    "WallClock",
    "StatsEngine",
    "BatchScheduler",
    "JobOutcome",
    "RoundRobinScheduler",
    "ScheduleResult",
    "CacheStats",
    "MatchSession",
    "SessionRegistry",
]
