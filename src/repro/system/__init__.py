"""The FastMatch system architecture (Section 4): simulated clock, statistics
engine, Scan baseline, and the four-approach runner."""

from .clock import SimulatedClock
from .fastmatch import (
    APPROACHES,
    DEFAULT_BLOCK_SIZE,
    PreparedQuery,
    run_approach,
)
from .report import RunReport
from .scan import run_scan
from .stats_engine import StatsEngine
from .visualize import render_comparison, render_histogram, render_result

__all__ = [
    "render_comparison",
    "render_histogram",
    "render_result",
    "APPROACHES",
    "DEFAULT_BLOCK_SIZE",
    "PreparedQuery",
    "run_approach",
    "RunReport",
    "run_scan",
    "SimulatedClock",
    "StatsEngine",
]
