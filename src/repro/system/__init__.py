"""The FastMatch system architecture (Section 4): simulated clock, statistics
engine, Scan baseline, the four-approach runner, and the multi-query
serving layer (sessions + round-robin scheduler)."""

from .clock import SimulatedClock
from .fastmatch import (
    APPROACHES,
    DEFAULT_BLOCK_SIZE,
    PreparedQuery,
    make_engine,
    run_approach,
)
from .report import RunReport, ServingReport
from .scan import run_scan
from .scheduler import (
    BatchScheduler,
    JobOutcome,
    RoundRobinScheduler,
    ScheduleResult,
)
from .session import CacheStats, MatchSession
from .stats_engine import StatsEngine
from .visualize import render_comparison, render_histogram, render_result

__all__ = [
    "render_comparison",
    "render_histogram",
    "render_result",
    "APPROACHES",
    "DEFAULT_BLOCK_SIZE",
    "PreparedQuery",
    "make_engine",
    "run_approach",
    "RunReport",
    "ServingReport",
    "run_scan",
    "SimulatedClock",
    "StatsEngine",
    "BatchScheduler",
    "JobOutcome",
    "RoundRobinScheduler",
    "ScheduleResult",
    "CacheStats",
    "MatchSession",
]
