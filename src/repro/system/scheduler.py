"""Round-robin interleaving of many resumable queries on one simulated clock.

The stepper (:class:`~repro.core.histsim.HistSimStepper`) makes a HistSim
run interruptible at bounded-work boundaries; this module supplies the other
half of a serving system — a scheduler that drains many such runs
concurrently.  All jobs charge one shared :class:`SimulatedClock`, so the
clock models a single-threaded server interleaving queries: a query's
*latency* (submission → completion on the shared clock) includes the time
spent serving its neighbours, while its *service time* counts only its own
steps.  Aggregate throughput is completed queries per simulated second.

Scheduling is deliberately plain round-robin: every alive job advances by
one step per cycle.  Because each step is one bounded unit of sampling +
testing, cheap queries finish early and leave the rotation, which is enough
to demonstrate the serving architecture without a priority model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from .clock import SimulatedClock
from .report import RunReport

__all__ = ["SchedulableJob", "JobOutcome", "ScheduleResult", "RoundRobinScheduler"]


@runtime_checkable
class SchedulableJob(Protocol):
    """What the scheduler needs from a unit of resumable work."""

    name: str

    @property
    def done(self) -> bool:
        """True once no further steps are required."""
        ...

    def step(self) -> None:
        """Advance by one bounded unit of work, charging the shared clock."""
        ...

    def finish(self, service_ns: float) -> RunReport:
        """Assemble the job's report; called exactly once, after ``done``."""
        ...


@dataclass(frozen=True)
class JobOutcome:
    """One completed query's serving metrics on the shared clock."""

    name: str
    report: RunReport
    submitted_ns: float
    finished_ns: float
    steps: int

    @property
    def latency_ns(self) -> float:
        """Submission-to-completion time, including other queries' service."""
        return self.finished_ns - self.submitted_ns

    @property
    def latency_seconds(self) -> float:
        return self.latency_ns * 1e-9

    @property
    def service_ns(self) -> float:
        """Time attributable to this query's own steps (``report.elapsed_ns``)."""
        return self.report.elapsed_ns

    @property
    def service_seconds(self) -> float:
        return self.service_ns * 1e-9


@dataclass(frozen=True)
class ScheduleResult:
    """All outcomes of one scheduler drain, in submission order.

    ``backend`` describes the execution backend the drain's jobs routed
    their sampling through (:meth:`ExecutionBackend.describe`), so serving
    metrics are attributable to how the work was executed.
    """

    outcomes: tuple[JobOutcome, ...]
    elapsed_ns: float
    total_steps: int
    backend: dict | None = None

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __getitem__(self, index):
        return self.outcomes[index]

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ns * 1e-9

    @property
    def throughput_qps(self) -> float:
        """Completed queries per simulated second of the drain."""
        if not self.outcomes:
            return 0.0
        if self.elapsed_ns <= 0:
            return float("inf")
        return len(self.outcomes) / self.elapsed_seconds

    @property
    def mean_latency_seconds(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.latency_seconds for o in self.outcomes) / len(self.outcomes)


class _Entry:
    """Scheduler-internal bookkeeping wrapped around one job."""

    __slots__ = ("job", "submitted_ns", "service_ns", "steps", "outcome", "reported")

    def __init__(self, job: SchedulableJob, submitted_ns: float) -> None:
        self.job = job
        self.submitted_ns = submitted_ns
        self.service_ns = 0.0
        self.steps = 0
        self.outcome: JobOutcome | None = None
        self.reported = False


class RoundRobinScheduler:
    """Interleave steps of many jobs over one shared simulated clock.

    Parameters
    ----------
    clock:
        The shared clock every job charges.  Submission and completion
        timestamps are read from it, so per-query latency reflects the
        interleaved execution.
    backend:
        Optional :class:`~repro.parallel.ExecutionBackend` the scheduled
        jobs sample through; recorded on every :class:`ScheduleResult` for
        attribution.  The scheduler never drives the backend itself — jobs
        route their own sampling — so ``None`` simply means "serial".
    """

    def __init__(self, clock: SimulatedClock, backend=None) -> None:
        self.clock = clock
        self.backend = backend
        self._entries: list[_Entry] = []

    @property
    def pending(self) -> int:
        """Jobs submitted but not yet finished."""
        return sum(1 for e in self._entries if e.outcome is None)

    def add(self, job: SchedulableJob) -> None:
        """Submit a job; its latency clock starts now."""
        self._entries.append(_Entry(job, submitted_ns=self.clock.elapsed_ns))

    def _advance(self, entry: _Entry) -> None:
        before = self.clock.elapsed_ns
        entry.job.step()
        entry.service_ns += self.clock.elapsed_ns - before
        entry.steps += 1
        if entry.job.done:
            report = entry.job.finish(entry.service_ns)
            entry.outcome = JobOutcome(
                name=entry.job.name,
                report=report,
                submitted_ns=entry.submitted_ns,
                finished_ns=self.clock.elapsed_ns,
                steps=entry.steps,
            )

    def run(self) -> ScheduleResult:
        """Drain every pending job round-robin; returns the outcomes of jobs
        completed by this drain (in submission order), so repeated
        submit/run cycles never double-report.  Jobs added while draining
        join the rotation."""
        start_ns = self.clock.elapsed_ns
        while True:
            alive = [e for e in self._entries if e.outcome is None]
            if not alive:
                break
            for entry in alive:
                if entry.outcome is None:
                    self._advance(entry)
        fresh = [
            e for e in self._entries if e.outcome is not None and not e.reported
        ]
        for entry in fresh:
            entry.reported = True
        return ScheduleResult(
            outcomes=tuple(e.outcome for e in fresh),
            elapsed_ns=self.clock.elapsed_ns - start_ns,
            total_steps=sum(e.steps for e in fresh),
            backend=self.backend.describe() if self.backend is not None else None,
        )
