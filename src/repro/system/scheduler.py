"""Batch draining of many resumable queries on one simulated clock.

The stepper (:class:`~repro.core.histsim.HistSimStepper`) makes a HistSim
run interruptible at bounded-work boundaries; the *online* half of the
serving system lives in :mod:`repro.serving` (front door, admission
control, deadlines).  This module keeps the batch-shaped view: submit a set
of jobs, drain them to completion, get per-query latency and aggregate
throughput on the shared clock.

:class:`BatchScheduler` is a thin adapter over the serving core
(:class:`~repro.serving.scheduler.ServingScheduler`) with a pluggable
policy and no deadlines; :class:`RoundRobinScheduler` is the
backward-compatible PR-2 name, pinned to the round-robin policy.  All jobs
charge one shared :class:`~repro.system.clock.Clock`, so the clock models a
single-threaded server interleaving queries: a query's *latency*
(submission → completion on the shared clock) includes the time spent
serving its neighbours, while its *service time* counts only its own
steps.  Aggregate throughput is completed queries per simulated second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from ..serving.scheduler import ServingScheduler
from .clock import Clock
from .report import RunReport

__all__ = [
    "SchedulableJob",
    "JobOutcome",
    "ScheduleResult",
    "BatchScheduler",
    "RoundRobinScheduler",
]


@runtime_checkable
class SchedulableJob(Protocol):
    """What the scheduler needs from a unit of resumable work."""

    name: str

    @property
    def done(self) -> bool:
        """True once no further steps are required."""
        ...

    def step(self) -> None:
        """Advance by one bounded unit of work, charging the shared clock."""
        ...

    def finish(self, service_ns: float) -> RunReport:
        """Assemble the job's report; called exactly once, after ``done``."""
        ...


@dataclass(frozen=True)
class JobOutcome:
    """One completed query's serving metrics on the shared clock."""

    name: str
    report: RunReport
    submitted_ns: float
    finished_ns: float
    steps: int

    @property
    def latency_ns(self) -> float:
        """Submission-to-completion time, including other queries' service."""
        return self.finished_ns - self.submitted_ns

    @property
    def latency_seconds(self) -> float:
        return self.latency_ns * 1e-9

    @property
    def service_ns(self) -> float:
        """Time attributable to this query's own steps (``report.elapsed_ns``)."""
        return self.report.elapsed_ns

    @property
    def service_seconds(self) -> float:
        return self.service_ns * 1e-9


@dataclass(frozen=True)
class ScheduleResult:
    """All outcomes of one scheduler drain, in submission order.

    ``backend`` describes the execution backend the drain's jobs routed
    their sampling through (:meth:`ExecutionBackend.describe`), so serving
    metrics are attributable to how the work was executed.
    """

    outcomes: tuple[JobOutcome, ...]
    elapsed_ns: float
    total_steps: int
    backend: dict | None = None

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __getitem__(self, index):
        return self.outcomes[index]

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ns * 1e-9

    @property
    def throughput_qps(self) -> float:
        """Completed queries per simulated second of the drain."""
        if not self.outcomes:
            return 0.0
        if self.elapsed_ns <= 0:
            return float("inf")
        return len(self.outcomes) / self.elapsed_seconds

    @property
    def mean_latency_seconds(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.latency_seconds for o in self.outcomes) / len(self.outcomes)


class BatchScheduler:
    """Drain-style adapter over the serving core: submit, run, report.

    Parameters
    ----------
    clock:
        The shared clock every job charges.  Submission and completion
        timestamps are read from it, so per-query latency reflects the
        interleaved execution.
    backend:
        Optional :class:`~repro.parallel.ExecutionBackend` the scheduled
        jobs sample through; recorded on every :class:`ScheduleResult` for
        attribution.  The scheduler never drives the backend itself — jobs
        route their own sampling — so ``None`` simply means "serial".
    policy:
        Scheduling policy name or instance (:data:`repro.serving.POLICIES`).
        The policy shapes per-query latency only; every policy produces
        identical per-query results.
    """

    def __init__(self, clock: Clock, backend=None, policy="rr") -> None:
        self.clock = clock
        self.backend = backend
        self._core = ServingScheduler(clock, policy=policy, backend=backend)

    @property
    def policy(self):
        return self._core.policy

    @property
    def pending(self) -> int:
        """Jobs submitted but not yet finished."""
        return self._core.pending

    def add(self, job: SchedulableJob) -> None:
        """Submit a job; its latency clock starts now."""
        self._core.submit(job)

    def run(self) -> ScheduleResult:
        """Drain every pending job under the policy; returns the outcomes of
        jobs completed by this drain (in submission order), so repeated
        submit/run cycles never double-report.  Jobs added while draining
        join the rotation."""
        start_ns = self.clock.elapsed_ns
        outcomes = tuple(
            JobOutcome(
                name=o.name,
                report=o.report,
                submitted_ns=o.submitted_ns,
                finished_ns=o.finished_ns,
                steps=o.steps,
            )
            for o in self._core.run_until_idle()
        )
        return ScheduleResult(
            outcomes=outcomes,
            elapsed_ns=self.clock.elapsed_ns - start_ns,
            total_steps=sum(o.steps for o in outcomes),
            backend=self.backend.describe() if self.backend is not None else None,
        )


class RoundRobinScheduler(BatchScheduler):
    """The PR-2 drain: :class:`BatchScheduler` pinned to round-robin."""

    def __init__(self, clock: Clock, backend=None) -> None:
        super().__init__(clock, backend=backend, policy="rr")
