"""Multi-tenant session registry: N datasets behind one front door.

A :class:`SessionRegistry` owns one :class:`~repro.system.MatchSession` per
dataset and presents the same job-building seam a single session does, so
either front door (thread or asyncio) can serve many datasets at once:

- **routing** — each :class:`~repro.serving.QueryRequest` carries a
  ``dataset`` key; the registry builds its job in the matching session
  (typed :class:`~repro.serving.UnknownDataset` when the key is absent or
  unknown).
- **one clock** — every session is constructed on the registry's shared
  :class:`~repro.system.clock.Clock` (simulated by default, wall for live
  serving), so deadlines and latencies across tenants live on a single
  coherent timeline.
- **one backend** — all sessions share the registry's execution backend:
  for ``backend="sharded"`` that is one :class:`~repro.parallel.WorkerPool`
  and one shared-memory store across every tenant, spawned once and
  amortized over all of them.  The registry owns the backend's lifetime;
  sessions treat it as borrowed.
- **one cache budget** — ``max_cached_bytes`` bounds the *sum* of the
  tenants' prepared-artifact caches.  Sessions report every cache
  touch/insert/evict to the registry (the ``cache_governor`` seam), which
  keeps a global LRU over ``(session, prepared-key)`` entries and evicts
  the globally least-recently-used evictable entry when the sum overflows
  — so one hot tenant can use the whole budget while idle tenants shrink,
  instead of every tenant hoarding a fixed slice.

Routing and registry bookkeeping never touch sampling: a request served
through a registry is byte-identical to the same request served by a
standalone session over the same dataset.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterator

from ..obs.profiler import NULL_PROFILER
from ..obs.tracer import NULL_TRACER
from ..parallel import ExecutionBackend, make_backend
from ..serving.request import UnknownDataset
from ..storage.cost_model import DEFAULT_COST_MODEL, CostModel
from ..storage.table import ColumnTable
from .clock import Clock, SimulatedClock
from .fastmatch import DEFAULT_BLOCK_SIZE
from .session import MatchSession

__all__ = ["SessionRegistry"]


class SessionRegistry:
    """Per-dataset :class:`MatchSession`\\ s behind one serving seam.

    Parameters
    ----------
    backend:
        Execution backend spec (``"serial"``/``"sharded"``/``"threads"``)
        or instance, shared by every session.  The registry closes a
        backend it created; a passed-in instance belongs to its creator.
    workers:
        Worker count for ``backend="sharded"`` (processes) or
        ``backend="threads"`` (threads).
    kernel:
        Default counting-kernel spec for every session
        (:data:`~repro.parallel.KERNEL_SPECS`; overridable per
        :meth:`add_dataset` call).  All kernels are byte-identical.
    cpu_affinity:
        Optional worker-placement policy (``"spread"`` / ``"compact"``) for
        a worker-carrying backend created from a string spec.
    clock:
        Shared :class:`Clock` for all sessions (default: a fresh
        :class:`SimulatedClock`).
    max_cached_bytes:
        Global bound on the sum of all sessions' prepared-artifact cache
        bytes; ``None`` leaves each session to its own limits.  Each
        session's most recent entry is never evicted (it is the one being
        served), so the floor is one entry per active tenant.
    block_size, cost_model, audit:
        Defaults applied to every session (overridable per
        :meth:`add_dataset` call).
    """

    def __init__(
        self,
        *,
        backend: str | ExecutionBackend = "serial",
        workers: int | None = None,
        kernel: str = "auto",
        cpu_affinity: str | None = None,
        clock: Clock | None = None,
        max_cached_bytes: int | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        audit: bool = True,
        tracer=None,
        profiler=None,
    ) -> None:
        if max_cached_bytes is not None and max_cached_bytes < 1:
            raise ValueError(f"max_cached_bytes must be >= 1, got {max_cached_bytes}")
        self.clock = clock if clock is not None else SimulatedClock()
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = make_backend(backend, workers, cpu_affinity)
        self.kernel = kernel
        #: Shared tracer for every tenant's spans (sessions inherit it, and
        #: the shared backend's fan-out windows report into it too).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled:
            if self.tracer.clock is None:
                self.tracer.clock = self.clock
            self.backend.set_tracer(self.tracer)
        #: Shared hot-path profiler: sessions inherit it (per-job children
        #: fork from it), and the shared backend's table passes record into
        #: it directly.
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        if self.profiler.enabled:
            self.backend.set_profiler(self.profiler)
        self.max_cached_bytes = max_cached_bytes
        self.block_size = block_size
        self.cost_model = cost_model
        self.audit = audit
        self._sessions: OrderedDict[str, MatchSession] = OrderedDict()
        # Global recency of cached prepared entries, oldest first, keyed by
        # (session identity, prepared key) — maintained via the sessions'
        # cache_governor callbacks.
        self._lru: OrderedDict[
            tuple[int, Hashable], tuple[MatchSession, Hashable]
        ] = OrderedDict()
        self.closed = False

    # --------------------------------------------------------------- datasets

    def add_dataset(
        self, key: str, table: ColumnTable, **session_kwargs
    ) -> MatchSession:
        """Register ``table`` under ``key``; returns its new session.

        The session runs on the registry's shared clock and backend and
        reports into the registry's global cache budget.  Extra keyword
        arguments are forwarded to :class:`MatchSession` (per-tenant cache
        bounds, policy, ...).
        """
        if self.closed:
            raise RuntimeError("SessionRegistry is closed")
        if key in self._sessions:
            raise ValueError(f"dataset {key!r} is already registered")
        session_kwargs.setdefault("block_size", self.block_size)
        session_kwargs.setdefault("cost_model", self.cost_model)
        session_kwargs.setdefault("audit", self.audit)
        session_kwargs.setdefault("tracer", self.tracer)
        session_kwargs.setdefault("profiler", self.profiler)
        session_kwargs.setdefault("kernel", self.kernel)
        session = MatchSession(
            table,
            backend=self.backend,
            clock=self.clock,
            cache_governor=self,
            **session_kwargs,
        )
        # Per-tenant attribution: the dataset key labels this session's
        # jobs (metrics) and cache events (spans).
        session.tenant = key
        self._sessions[key] = session
        return session

    def session(self, key: str) -> MatchSession:
        """The session registered under ``key``."""
        if key not in self._sessions:
            raise UnknownDataset(key, tuple(self._sessions))
        return self._sessions[key]

    def keys(self) -> tuple[str, ...]:
        return tuple(self._sessions)

    def __contains__(self, key: str) -> bool:
        return key in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator[str]:
        return iter(self._sessions)

    # ---------------------------------------------------------------- routing

    def route(self, request) -> MatchSession:
        """The session a :class:`~repro.serving.QueryRequest` belongs to.

        ``request.dataset`` picks the tenant; ``None`` is allowed only when
        exactly one dataset is registered (single-tenant deployments stay
        key-free).
        """
        dataset = getattr(request, "dataset", None)
        if dataset is None:
            if len(self._sessions) == 1:
                return next(iter(self._sessions.values()))
            raise UnknownDataset(None, tuple(self._sessions))
        return self.session(dataset)

    def job_for_request(self, request, default_max_step_rows: int | None = None):
        """Route the request and build its resumable job (front-door seam)."""
        return self.route(request).job_for_request(request, default_max_step_rows)

    # ----------------------------------------------------------- cache budget

    @property
    def cache_bytes(self) -> int:
        """Bytes held by all sessions' cached prepared artifacts."""
        return sum(session.cache_bytes for session in self._sessions.values())

    @property
    def cached_entries(self) -> int:
        """Prepared entries cached across all sessions."""
        return len(self._lru)

    def cache_touched(self, session: MatchSession, key: Hashable) -> None:
        """Governor callback: ``key`` is now ``session``'s (and the
        registry's) most recently used prepared entry."""
        self._lru[(id(session), key)] = (session, key)
        self._lru.move_to_end((id(session), key))

    def cache_evicted(self, session: MatchSession, key: Hashable) -> None:
        """Governor callback: the entry left ``session``'s cache."""
        self._lru.pop((id(session), key), None)

    def enforce_budget(self) -> int:
        """Evict globally-LRU prepared entries until under the byte budget.

        Eviction order is the registry-wide recency order, not per-session:
        the coldest entry goes first regardless of which tenant holds it.
        Entries a session refuses to release (its most recent one) are
        skipped.  Returns the number of entries evicted.
        """
        if self.max_cached_bytes is None:
            return 0
        evicted = 0
        while self.cache_bytes > self.max_cached_bytes:
            for session, key in list(self._lru.values()):
                if session.evict_prepared(key):
                    evicted += 1
                    break
            else:
                break  # nothing evictable (every survivor is in use)
        return evicted

    # ---------------------------------------------------------------- serving

    def serve(
        self,
        *,
        policy: str = "edf",
        max_queue: int | None = None,
        default_deadline_ns: float | None = None,
        default_max_step_rows: int | None = None,
        max_concurrent_steps: int = 1,
    ):
        """A thread/replay :class:`~repro.serving.FrontDoor` over every
        registered dataset; requests route by their ``dataset`` key.
        ``max_concurrent_steps`` > 1 runs steps of different tenants
        concurrently on a bounded executor (answers stay byte-identical)."""
        from ..serving.frontdoor import FrontDoor

        return FrontDoor(
            self,
            policy=policy,
            max_queue=max_queue,
            default_deadline_ns=default_deadline_ns,
            default_max_step_rows=default_max_step_rows,
            max_concurrent_steps=max_concurrent_steps,
        )

    def serve_async(
        self,
        *,
        policy: str = "edf",
        max_queue: int | None = None,
        default_deadline_ns: float | None = None,
        default_max_step_rows: int | None = None,
        max_concurrent_steps: int = 1,
    ):
        """An :class:`~repro.serving.AsyncFrontDoor` over every registered
        dataset (asyncio; start it from inside a running event loop)."""
        from ..serving.async_frontdoor import AsyncFrontDoor

        return AsyncFrontDoor(
            self,
            policy=policy,
            max_queue=max_queue,
            default_deadline_ns=default_deadline_ns,
            default_max_step_rows=default_max_step_rows,
            max_concurrent_steps=max_concurrent_steps,
        )

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Close every session, then the shared backend (if owned).

        Idempotent; safe in either order with a front door's shutdown
        (session closes are idempotent, and borrowed backends survive their
        sessions).
        """
        if self.closed:
            return
        self.closed = True
        for session in self._sessions.values():
            session.close()
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "SessionRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
