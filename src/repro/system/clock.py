"""Simulated wall clock (DESIGN.md substitution for the paper's Xeon timings).

Components charge nanoseconds; serial charges add, pipelined charges add the
*maximum* of the overlapped components — the decoupling of the lookahead
thread from the I/O manager (Section 4.2, Challenge 4).  The breakdown
records raw per-component totals plus how much work the overlap hid.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["SimulatedClock"]


class SimulatedClock:
    """Accumulates simulated time with a per-component breakdown."""

    def __init__(self) -> None:
        self.elapsed_ns = 0.0
        self.breakdown: dict[str, float] = defaultdict(float)

    def charge_serial(self, **costs_ns: float) -> None:
        """Charge components that run one after another."""
        for component, cost in costs_ns.items():
            if cost < 0:
                raise ValueError(f"negative cost for {component}: {cost}")
            self.elapsed_ns += cost
            self.breakdown[component] += cost

    def charge_pipelined(self, io_ns: float, mark_ns: float) -> None:
        """Charge an I/O batch overlapped with lookahead marking: the slower
        of the two determines elapsed time, the rest is hidden."""
        if io_ns < 0 or mark_ns < 0:
            raise ValueError("costs must be non-negative")
        self.elapsed_ns += max(io_ns, mark_ns)
        self.breakdown["io"] += io_ns
        self.breakdown["mark"] += mark_ns
        self.breakdown["overlap_hidden"] += min(io_ns, mark_ns)

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ns * 1e-9

    def snapshot(self) -> dict[str, float]:
        """Copy of the per-component breakdown (ns)."""
        return dict(self.breakdown)
