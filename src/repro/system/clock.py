"""Time sources: the clock protocol, the simulated clock, and the wall clock.

Every component that "takes time" charges nanoseconds to a :class:`Clock`.
Two implementations exist:

- :class:`SimulatedClock` — the DESIGN.md substitution for the paper's Xeon
  timings: elapsed time IS the sum of the charges, so runs are deterministic
  and hardware-independent.  Serial charges add; pipelined charges add the
  *maximum* of the overlapped components — the decoupling of the lookahead
  thread from the I/O manager (Section 4.2, Challenge 4).
- :class:`WallClock` — real monotonic time for live serving (the asyncio
  front door): elapsed time passes on its own, and charges only feed the
  per-component breakdown for attribution.  Deadlines set against a wall
  clock are real-time deadlines.

The scheduling engine, deadlines, and serving metrics are written against
the protocol, never a concrete clock — which clock a session runs on is a
deployment decision, not an algorithmic one.  Sampling never reads the
clock, so the answers a query computes are identical under either.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from collections import defaultdict

__all__ = ["Clock", "SimulatedClock", "WallClock"]


class Clock(ABC):
    """What schedulers, deadlines, and metrics need from a time source.

    ``elapsed_ns`` is a monotonically non-decreasing float timeline starting
    at 0 when the clock is created.  ``virtual`` says whether the timeline
    only moves when work is charged (a simulated clock can be idled forward
    deterministically; a wall clock cannot be driven at all).
    """

    #: True when time only advances through charges (replayable/idleable).
    virtual: bool = False

    #: Smallest meaningful timeline increment, in ns.  Consumers comparing
    #: timestamp arithmetic (e.g. a trace's stage sums against end-to-end
    #: latency stamps) should tolerate up to one tick of drift; both the
    #: simulated clock (float ns charges) and the wall clock
    #: (``monotonic_ns``) resolve to 1 ns.
    resolution_ns: float = 1.0

    @property
    @abstractmethod
    def elapsed_ns(self) -> float:
        """Nanoseconds elapsed on this clock's timeline."""

    @abstractmethod
    def charge_serial(self, **costs_ns: float) -> None:
        """Charge components that run one after another."""

    @abstractmethod
    def charge_pipelined(self, io_ns: float, mark_ns: float) -> None:
        """Charge an I/O batch overlapped with lookahead marking."""

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ns * 1e-9

    def snapshot(self) -> dict[str, float]:
        """Copy of the per-component breakdown (ns)."""
        return {}

    def idle_until(self, target_ns: float) -> None:
        """Advance the timeline to ``target_ns`` charging only idleness.

        Only virtual clocks can be driven (open-loop replay waiting for
        the next arrival); a wall clock's time passes on its own.
        """
        raise NotImplementedError(
            f"{type(self).__name__} cannot be idled forward; "
            "only virtual clocks support open-loop replay"
        )

    # Shared breakdown accounting: both concrete clocks validate and
    # attribute charges identically; they differ only in whether the
    # charge advances the timeline.  Each returns what it added to
    # ``elapsed_ns``-if-virtual, so subclasses apply it or drop it.

    def _record_serial(self, costs_ns: dict[str, float]) -> float:
        total = 0.0
        for component, cost in costs_ns.items():
            if cost < 0:
                raise ValueError(f"negative cost for {component}: {cost}")
            self.breakdown[component] += cost
            total += cost
        return total

    def _record_pipelined(self, io_ns: float, mark_ns: float) -> float:
        if io_ns < 0 or mark_ns < 0:
            raise ValueError("costs must be non-negative")
        self.breakdown["io"] += io_ns
        self.breakdown["mark"] += mark_ns
        self.breakdown["overlap_hidden"] += min(io_ns, mark_ns)
        return max(io_ns, mark_ns)


class SimulatedClock(Clock):
    """Accumulates simulated time with a per-component breakdown."""

    virtual = True

    # The simulated timeline is plain mutable state; the class attribute
    # satisfies the ABC's abstract property.
    elapsed_ns: float = 0.0

    def __init__(self) -> None:
        self.elapsed_ns = 0.0
        self.breakdown: dict[str, float] = defaultdict(float)
        # Concurrent steps (executor-offloaded dispatch) may charge one
        # shared clock from several threads; charges must not tear.
        self._lock = threading.Lock()

    def charge_serial(self, **costs_ns: float) -> None:
        """Charge components that run one after another."""
        with self._lock:
            self.elapsed_ns += self._record_serial(costs_ns)

    def charge_pipelined(self, io_ns: float, mark_ns: float) -> None:
        """Charge an I/O batch overlapped with lookahead marking: the slower
        of the two determines elapsed time, the rest is hidden."""
        with self._lock:
            self.elapsed_ns += self._record_pipelined(io_ns, mark_ns)

    def idle_until(self, target_ns: float) -> None:
        """Advance the timeline to ``target_ns`` charging only idleness."""
        gap = target_ns - self.elapsed_ns
        if gap > 0:
            self.charge_serial(idle=gap)

    def snapshot(self) -> dict[str, float]:
        """Copy of the per-component breakdown (ns)."""
        with self._lock:
            return dict(self.breakdown)


class WallClock(Clock):
    """Real monotonic time for live serving.

    ``elapsed_ns`` is monotonic nanoseconds since construction, so deadlines
    relative to submission are real-time deadlines.  Charges do not advance
    the timeline — wall time passes on its own while the work actually runs
    — but they still accumulate the per-component breakdown, so cost-model
    attribution survives the switch from simulation to live serving.
    """

    virtual = False

    def __init__(self) -> None:
        self._origin_ns = time.monotonic_ns()
        self.breakdown: dict[str, float] = defaultdict(float)
        self._lock = threading.Lock()

    @property
    def elapsed_ns(self) -> float:
        return float(time.monotonic_ns() - self._origin_ns)

    def charge_serial(self, **costs_ns: float) -> None:
        with self._lock:  # attribution only; time passes itself
            self._record_serial(costs_ns)

    def charge_pipelined(self, io_ns: float, mark_ns: float) -> None:
        with self._lock:
            self._record_pipelined(io_ns, mark_ns)

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return dict(self.breakdown)
