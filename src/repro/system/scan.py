"""The Scan baseline (paper Section 5.2): a full heap scan with exact results.

Scan always satisfies both guarantees trivially — it reads every tuple,
computes every candidate histogram exactly, prunes candidates below the
selectivity threshold exactly, and returns the exact top-k.
"""

from __future__ import annotations

import numpy as np

from ..core.distance import candidate_distances
from ..core.result import MatchResult, StageStats
from ..parallel.backend import ExecutionBackend
from ..query.executor import exact_candidate_counts
from ..query.spec import HistogramQuery
from ..storage.cost_model import CostModel
from ..storage.shuffle import ShuffledTable
from .clock import SimulatedClock

__all__ = ["run_scan"]


def run_scan(
    shuffled: ShuffledTable,
    query: HistogramQuery,
    target: np.ndarray,
    k: int,
    sigma: float,
    cost_model: CostModel,
    clock: SimulatedClock | None = None,
    backend: ExecutionBackend | None = None,
) -> tuple[MatchResult, SimulatedClock]:
    """Exact top-k via a complete pass; returns the result and the clock.

    ``backend`` routes the counting pass (byte-identical across backends);
    the simulated I/O cost is the same sequential full scan either way.
    """
    clock = clock or SimulatedClock()
    table = shuffled.table

    # One sequential pass over every block.
    clock.charge_serial(io=cost_model.scan_cost(table.num_rows, shuffled.num_blocks))

    counts = exact_candidate_counts(table, query, backend=backend)
    rows = counts.sum(axis=1)
    total = rows.sum()
    num_z, num_x = counts.shape

    # Exact selectivity pruning, distance evaluation, and top-k sort.
    clock.charge_serial(
        stats=cost_model.stats_cost(
            num_z * num_x + num_z * max(1, int(np.log2(max(num_z, 2))))
        )
    )
    eligible = rows > 0
    if sigma > 0 and total > 0:
        eligible &= rows / total >= sigma
    distances = candidate_distances(counts, target)
    distances = np.where(eligible, distances, np.inf)
    order = np.argsort(distances, kind="stable")
    top = order[: min(k, int(eligible.sum()))]

    result = MatchResult(
        matching=tuple(int(i) for i in top),
        histograms=counts[top].astype(np.int64),
        distances=distances[top],
        pruned=tuple(int(i) for i in np.flatnonzero(~eligible)),
        exact=True,
        stats=StageStats(
            stage1_samples=int(total),
            surviving_candidates=int(eligible.sum()),
        ),
    )
    return result, clock
