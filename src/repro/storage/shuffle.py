"""Random-permutation preprocessing (paper Section 4.2, Challenge 1).

FastMatch randomly permutes tuples once, offline; afterwards a *sequential*
scan starting anywhere is a uniform without-replacement sample, letting the
system trade random I/O for cheap sequential I/O.  The same trick is used by
other AQP systems the paper cites [76, 63, 78].
"""

from __future__ import annotations

import numpy as np

from .blocks import BlockLayout
from .table import ColumnTable

__all__ = ["ShuffledTable", "shuffle_table"]


class ShuffledTable:
    """A permuted table plus its block layout — the unit FastMatch runs on."""

    def __init__(self, table: ColumnTable, layout: BlockLayout) -> None:
        if layout.num_rows != table.num_rows:
            raise ValueError(
                f"layout covers {layout.num_rows} rows, table has {table.num_rows}"
            )
        self.table = table
        self.layout = layout

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    @property
    def num_blocks(self) -> int:
        return self.layout.num_blocks

    def random_start_block(self, rng: np.random.Generator) -> int:
        """A uniform starting block for a run (Section 5.2: 'started from a
        random position in the shuffled data')."""
        if self.num_blocks == 0:
            return 0
        return int(rng.integers(0, self.num_blocks))


def shuffle_table(
    table: ColumnTable, block_size: int, rng: np.random.Generator
) -> ShuffledTable:
    """Permute a table's rows and lay it out in fixed-size blocks."""
    permuted = table.permuted(rng)
    return ShuffledTable(permuted, BlockLayout(permuted.num_rows, block_size))
