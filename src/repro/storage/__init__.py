"""Column-store substrate: schemas, tables, block layout, shuffling,
simulated I/O, and the cost model standing in for the paper's hardware."""

from .blocks import BlockLayout
from .cost_model import CACHELINE_BITS, DEFAULT_COST_MODEL, CostModel
from .io_manager import BlockRead, IOManager
from .schema import BinnedAttribute, CategoricalAttribute, Schema
from .shuffle import ShuffledTable, shuffle_table
from .table import ColumnTable

__all__ = [
    "BlockLayout",
    "CACHELINE_BITS",
    "DEFAULT_COST_MODEL",
    "CostModel",
    "BlockRead",
    "IOManager",
    "BinnedAttribute",
    "CategoricalAttribute",
    "Schema",
    "ShuffledTable",
    "shuffle_table",
    "ColumnTable",
]
