"""Attribute schemas for the column store.

The paper's queries group and filter over categorical attributes (airport,
county, …) and binned continuous attributes (departure hour, pickup
location).  A :class:`CategoricalAttribute` stores a dictionary-encoded
column; a :class:`BinnedAttribute` remembers its bin edges so continuous
values can be encoded consistently (Appendix A.1.4 / A.1.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CategoricalAttribute", "BinnedAttribute", "Schema"]


@dataclass(frozen=True)
class CategoricalAttribute:
    """A dictionary-encoded categorical attribute.

    ``values`` lists the decoded labels; stored codes index into it.
    """

    name: str
    values: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")
        if len(self.values) == 0:
            raise ValueError(f"attribute {self.name!r} needs at least one value")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"attribute {self.name!r} has duplicate values")

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def encode(self, labels) -> np.ndarray:
        """Map labels to integer codes; unknown labels raise."""
        lookup = {v: i for i, v in enumerate(self.values)}
        try:
            return np.asarray([lookup[label] for label in labels], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"unknown value {exc.args[0]!r} for attribute {self.name!r}")

    def decode(self, codes: np.ndarray) -> list[str]:
        codes = np.asarray(codes)
        if codes.size and (codes.min() < 0 or codes.max() >= self.cardinality):
            raise ValueError(f"codes out of range for attribute {self.name!r}")
        return [self.values[int(c)] for c in codes]


@dataclass(frozen=True)
class BinnedAttribute:
    """A continuous attribute discretized by explicit bin edges.

    ``edges`` has ``cardinality + 1`` entries; bin ``i`` covers
    ``[edges[i], edges[i+1])`` with the final bin closed on the right.
    """

    name: str
    edges: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")
        if len(self.edges) < 2:
            raise ValueError(f"attribute {self.name!r} needs at least two bin edges")
        diffs = np.diff(np.asarray(self.edges, dtype=float))
        if np.any(diffs <= 0):
            raise ValueError(f"bin edges for {self.name!r} must be strictly increasing")

    @property
    def cardinality(self) -> int:
        return len(self.edges) - 1

    @property
    def values(self) -> tuple[str, ...]:
        """Human-readable bin labels (for display parity with categoricals)."""
        return tuple(
            f"[{self.edges[i]:g}, {self.edges[i + 1]:g})" for i in range(self.cardinality)
        )

    def encode(self, raw: np.ndarray) -> np.ndarray:
        """Bin raw continuous values; out-of-range values raise."""
        raw = np.asarray(raw, dtype=np.float64)
        edges = np.asarray(self.edges, dtype=np.float64)
        if raw.size and (raw.min() < edges[0] or raw.max() > edges[-1]):
            raise ValueError(
                f"values outside [{edges[0]}, {edges[-1]}] for attribute {self.name!r}"
            )
        codes = np.searchsorted(edges, raw, side="right") - 1
        # The right endpoint of the final bin is inclusive.
        codes = np.minimum(codes, self.cardinality - 1)
        return codes.astype(np.int64)


Attribute = CategoricalAttribute | BinnedAttribute


@dataclass(frozen=True)
class Schema:
    """An ordered collection of attributes forming a table's schema."""

    attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in schema: {names}")

    def __contains__(self, name: str) -> bool:
        return any(a.name == name for a in self.attributes)

    def __getitem__(self, name: str) -> Attribute:
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise KeyError(f"no attribute named {name!r}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def cardinality(self, name: str) -> int:
        return self[name].cardinality
