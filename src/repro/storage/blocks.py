"""Block layout: the granularity at which FastMatch requests I/O (Section 4.1).

The paper sets the block size per column to 600 bytes; with fixed-width
encoded columns this is a fixed number of *tuples* per block, which is the
quantity the simulation needs.  All index math between tuple offsets and
block indexes lives here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockLayout"]


@dataclass(frozen=True)
class BlockLayout:
    """Partition of ``num_rows`` tuples into fixed-size sequential blocks."""

    num_rows: int
    block_size: int

    def __post_init__(self) -> None:
        if self.num_rows < 0:
            raise ValueError(f"num_rows must be non-negative, got {self.num_rows}")
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")

    @property
    def num_blocks(self) -> int:
        return -(-self.num_rows // self.block_size)  # ceil division

    def block_of_row(self, row: int | np.ndarray) -> int | np.ndarray:
        """Block index containing a tuple offset."""
        rows = np.asarray(row)
        if np.any(rows < 0) or np.any(rows >= self.num_rows):
            raise ValueError("row offset out of range")
        result = rows // self.block_size
        if np.ndim(row) == 0:
            return int(result)
        return result

    def block_bounds(self, block: int) -> tuple[int, int]:
        """Half-open tuple range ``[start, stop)`` of one block."""
        if not 0 <= block < self.num_blocks:
            raise ValueError(f"block {block} out of range [0, {self.num_blocks})")
        start = block * self.block_size
        return start, min(start + self.block_size, self.num_rows)

    def block_rows(self, block: int) -> int:
        """Number of tuples stored in one block (the last may be short)."""
        start, stop = self.block_bounds(block)
        return stop - start

    def rows_per_block(self, blocks: np.ndarray) -> np.ndarray:
        """Tuples stored in each given block (the final block may be short)."""
        blocks = np.asarray(blocks, dtype=np.int64)
        return np.minimum(self.block_size, self.num_rows - blocks * self.block_size)

    def run_bounds(self, blocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Contiguous-run row spans ``[start, stop)`` covered by ``blocks``.

        Consecutive block indexes collapse into one span, so a window of
        adjacent blocks (the common case under sequential scan order) walks
        as a handful of slices instead of a per-row index gather.  Spans are
        emitted in the order blocks appear; concatenating the spans' rows
        yields exactly :meth:`rows_of_blocks`.
        """
        blocks = np.asarray(blocks, dtype=np.int64)
        if blocks.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        if blocks.min() < 0 or blocks.max() >= self.num_blocks:
            raise ValueError("block index out of range")
        breaks = np.flatnonzero(np.diff(blocks) != 1)
        first = blocks[np.concatenate(([0], breaks + 1))]
        last = blocks[np.concatenate((breaks, [blocks.size - 1]))]
        starts = first * self.block_size
        stops = np.minimum((last + 1) * self.block_size, self.num_rows)
        return starts, stops

    def rows_of_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Tuple offsets covered by the given block indexes, in block order."""
        blocks = np.asarray(blocks, dtype=np.int64)
        if blocks.size == 0:
            return np.empty(0, dtype=np.int64)
        if blocks.min() < 0 or blocks.max() >= self.num_blocks:
            raise ValueError("block index out of range")
        starts = blocks * self.block_size
        stops = np.minimum(starts + self.block_size, self.num_rows)
        lengths = stops - starts
        offsets = np.repeat(starts - np.concatenate(([0], np.cumsum(lengths)[:-1])), lengths)
        return np.arange(lengths.sum(), dtype=np.int64) + offsets

    def iter_chunks(self, start_block: int, chunk: int):
        """Yield ``(first_block, last_block_exclusive)`` windows of at most
        ``chunk`` blocks, beginning at ``start_block`` and wrapping around the
        end of the table exactly once (the paper starts each run at a random
        scan position, Section 5.2)."""
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        if not 0 <= start_block < max(self.num_blocks, 1):
            raise ValueError(f"start_block {start_block} out of range")
        produced = 0
        cursor = start_block
        while produced < self.num_blocks:
            stop = min(cursor + chunk, self.num_blocks)
            yield cursor, stop
            produced += stop - cursor
            cursor = stop if stop < self.num_blocks else 0
            if cursor == 0 and produced < self.num_blocks:
                # Wrapped: continue from the top toward start_block.
                while cursor < start_block:
                    stop = min(cursor + chunk, start_block)
                    yield cursor, stop
                    produced += stop - cursor
                    cursor = stop
                break
