"""Deterministic cost model standing in for the paper's Xeon E5-2630 wall clock.

The reproduction runs the *mechanics* of FastMatch (block selection, bitmap
probing, sampling, statistics) in Python, but Python wall-time would reflect
interpreter overhead rather than the system behaviour the paper measures.
Instead every run charges nanoseconds to a simulated clock using the
constants below, calibrated to the paper's narrative:

- ``tuple_read_ns = 20``: the paper's Scan covers 606M tuples in ~12.3 s —
  about 20 ns of I/O + histogram work per tuple.
- ``cacheline_dram_ns = 95`` / ``cacheline_l3_ns = 18``: conventional DRAM
  vs L3 latencies; a *synchronous* bitmap probe pays one cache-line fetch
  (Section 4.2: "only a single bit in the bitmap is used each time a portion
  is brought into cache").
- Residency: probes are L3-hits while the bitmaps of the currently *active*
  candidates fit into an effective slice of L3 (the rest of the cache is
  busy streaming data); otherwise they pay DRAM latency.  This is exactly
  the SyncMatch pathology of Section 5.4 at high ``|V_Z|``.
- Lookahead marking streams ``lookahead`` consecutive bits per candidate:
  ``⌈span/512⌉`` line fetches plus a tiny per-bit register cost, the
  cache-friendly inner loop of Algorithm 3.
- ``stats_op_ns = 1``: the statistics engine is cheap relative to I/O
  (Section 3.5), but not free — its cost makes the test-frequency trade-off
  of Challenge 2 visible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]

#: Bits per 64-byte cache line.
CACHELINE_BITS = 512


@dataclass(frozen=True)
class CostModel:
    """Nanosecond charges for the simulated FastMatch hardware."""

    tuple_read_ns: float = 20.0
    block_overhead_ns: float = 30.0
    cacheline_dram_ns: float = 95.0
    cacheline_l3_ns: float = 18.0
    bit_scan_ns: float = 0.15
    stats_op_ns: float = 1.0
    state_update_cached_ns: float = 2.0
    state_update_dram_ns: float = 20.0
    sync_block_overhead_ns: float = 500.0
    l2_bytes: int = 2 * 1024 * 1024
    l2_residency_fraction: float = 0.5
    l3_bytes: int = 20 * 1024 * 1024
    l3_residency_fraction: float = 0.5

    def __post_init__(self) -> None:
        numeric = (
            self.tuple_read_ns,
            self.block_overhead_ns,
            self.cacheline_dram_ns,
            self.cacheline_l3_ns,
            self.bit_scan_ns,
            self.stats_op_ns,
        )
        if any(v < 0 for v in numeric):
            raise ValueError("cost constants must be non-negative")
        if self.l3_bytes <= 0 or self.l2_bytes <= 0:
            raise ValueError("cache sizes must be positive")
        if not 0.0 < self.l3_residency_fraction <= 1.0:
            raise ValueError("l3_residency_fraction must be in (0, 1]")
        if not 0.0 < self.l2_residency_fraction <= 1.0:
            raise ValueError("l2_residency_fraction must be in (0, 1]")
        if self.state_update_cached_ns < 0 or self.state_update_dram_ns < 0:
            raise ValueError("state update costs must be non-negative")
        if self.sync_block_overhead_ns < 0:
            raise ValueError("sync_block_overhead_ns must be non-negative")

    # ------------------------------------------------------------------ I/O

    def block_read_cost(self, tuples_in_block: int | np.ndarray) -> float:
        """Sequentially reading and histogramming one or more blocks."""
        tuples = np.asarray(tuples_in_block, dtype=np.float64)
        return float(np.sum(self.block_overhead_ns + tuples * self.tuple_read_ns))

    def scan_cost(self, num_rows: int, num_blocks: int) -> float:
        """Full sequential pass over the table."""
        return num_blocks * self.block_overhead_ns + num_rows * self.tuple_read_ns

    # --------------------------------------------------------------- bitmaps

    def bitmaps_resident(self, cardinality: int, num_blocks: int) -> bool:
        """Does the bitmap index fit in the effective L3 slice?

        Synchronous probes hop across the whole ``|V_Z| × num_blocks``-bit
        structure while tuple data streams through the cache; once the index
        outgrows the effective slice, each probe is a DRAM fetch.  This is
        the paper's observed split: SyncMatch behaves at ``|V_Z|`` = 210–347
        (FLIGHTS, POLICE-q1/q2) and collapses at 2110–7641 (POLICE-q3,
        TAXI) — Section 5.4.
        """
        working_set_bytes = cardinality * num_blocks / 8.0
        return working_set_bytes <= self.l3_bytes * self.l3_residency_fraction

    def probe_cost(self, num_probes: int | float, resident: bool) -> float:
        """Synchronous per-block bitmap probes (Algorithm 2): one line each."""
        line = self.cacheline_l3_ns if resident else self.cacheline_dram_ns
        return float(num_probes) * line

    def lookahead_mark_cost(
        self, active_candidates: int, span_blocks: int, resident: bool
    ) -> float:
        """Marking a lookahead batch (Algorithm 3): per candidate, stream
        ``span_blocks`` consecutive bits — ``⌈span/512⌉`` line fetches plus a
        per-bit scan cost."""
        if span_blocks <= 0 or active_candidates <= 0:
            return 0.0
        lines = -(-span_blocks // CACHELINE_BITS)
        line = self.cacheline_l3_ns if resident else self.cacheline_dram_ns
        per_candidate = lines * line + span_blocks * self.bit_scan_ns
        return active_candidates * per_candidate

    # ---------------------------------------------------- per-block state sync

    def sync_update_cost(self, tuples_read: int, counter_cells: int) -> float:
        """Per-block candidate-state refresh on the synchronous path.

        SyncMatch must fold each block's tuples into the per-candidate
        counters *before* deciding the next block (Section 4.2, Challenge 4:
        "each candidate's active status would be updated immediately after
        each block is read").  That update touches scattered counters; it is
        cheap while the ``|V_Z| × |V_X|`` counter table stays cache-resident
        and expensive otherwise.  Lookahead/batched paths hide this work
        behind I/O, so only the synchronous policy pays it.
        """
        if tuples_read <= 0:
            return 0.0
        resident = counter_cells * 4 <= self.l2_bytes * self.l2_residency_fraction
        per_tuple = self.state_update_cached_ns if resident else self.state_update_dram_ns
        return tuples_read * per_tuple

    def sync_handoff_cost(self, blocks_examined: int) -> float:
        """Per-block engine↔I/O-manager round trip on the synchronous path.

        Without lookahead the I/O manager idles while the sampling engine
        decides each block, and the engine idles while the block is read —
        a blocking handoff per block (Section 4.2, Challenge 4 and Figure
        7's motivation).  Lookahead batches this exchange, so only the
        synchronous policy pays it.
        """
        return max(0, blocks_examined) * self.sync_block_overhead_ns

    # ------------------------------------------------------------ statistics

    def stats_cost(self, scalar_ops: int | float) -> float:
        """Statistics-engine work (distance updates, sorts, P-values)."""
        return float(scalar_ops) * self.stats_op_ns


#: Constants used throughout the benchmarks.
DEFAULT_COST_MODEL = CostModel()
