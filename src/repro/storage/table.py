"""Column-oriented table (paper Section 4.3: "FastMatch uses a column-oriented
storage engine, as is common for analytics tasks").

Columns are dictionary/bin-encoded int64 NumPy arrays, one per schema
attribute.  The table is immutable after construction except for
:meth:`permuted`, which returns a row-shuffled copy (the preprocessing step
of Section 4.2, Challenge 1).
"""

from __future__ import annotations

import numpy as np

from .schema import Schema

__all__ = ["ColumnTable"]


class ColumnTable:
    """An encoded, column-oriented, in-memory relation."""

    def __init__(self, schema: Schema, columns: dict[str, np.ndarray]) -> None:
        if set(columns) != set(schema.names):
            raise ValueError(
                f"columns {sorted(columns)} do not match schema {sorted(schema.names)}"
            )
        lengths = {name: len(col) for name, col in columns.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged columns: {lengths}")
        self.schema = schema
        self._columns: dict[str, np.ndarray] = {}
        for name, col in columns.items():
            arr = np.asarray(col)
            if not np.issubdtype(arr.dtype, np.integer):
                raise ValueError(f"column {name!r} must be integer-encoded")
            cardinality = schema.cardinality(name)
            if arr.size and (arr.min() < 0 or arr.max() >= cardinality):
                raise ValueError(
                    f"column {name!r} has codes outside [0, {cardinality})"
                )
            # Store at the narrowest width that holds the code range; callers
            # widen at arithmetic sites.  Matters at millions of rows across
            # 7-10 attributes (Table 2 scale).
            compact = np.min_scalar_type(max(cardinality - 1, 0))
            self._columns[name] = arr.astype(compact, copy=False)

    @property
    def num_rows(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> np.ndarray:
        """The encoded column for an attribute (read-only view)."""
        if name not in self._columns:
            raise KeyError(f"no column named {name!r}")
        view = self._columns[name].view()
        view.flags.writeable = False
        return view

    def cardinality(self, name: str) -> int:
        return self.schema.cardinality(name)

    @property
    def nbytes(self) -> int:
        """Total bytes across all encoded columns (cache accounting)."""
        return sum(col.nbytes for col in self._columns.values())

    def permuted(self, rng: np.random.Generator) -> "ColumnTable":
        """Row-shuffled copy — the paper's preprocessing for locality-friendly
        sampling (a sequential scan of the shuffled table is a uniform
        without-replacement sample)."""
        order = rng.permutation(self.num_rows)
        return ColumnTable(
            self.schema, {name: col[order] for name, col in self._columns.items()}
        )

    def take(self, rows: np.ndarray) -> "ColumnTable":
        """Sub-table of the given row indices (in the given order)."""
        rows = np.asarray(rows)
        return ColumnTable(
            self.schema, {name: col[rows] for name, col in self._columns.items()}
        )

    def value_counts(self, name: str) -> np.ndarray:
        """Per-code row counts of one column."""
        codes = self.column(name).astype(np.int64, copy=False)
        return np.bincount(codes, minlength=self.cardinality(name))
