"""Simulated I/O manager (paper Section 4.1).

"The I/O manager simply services requests for blocks in a synchronous
fashion."  Here it gathers the requested blocks' column values from the
shuffled table and reports the simulated cost of doing so; the caller (the
sampling engine) decides how that cost composes with block-selection cost
(serial for SyncMatch, overlapped for FastMatch's lookahead).
"""

from __future__ import annotations

import numpy as np

from .cost_model import CostModel
from .shuffle import ShuffledTable

__all__ = ["IOManager", "BlockRead"]


class BlockRead:
    """The outcome of one batch of block reads."""

    __slots__ = ("columns", "rows_read", "blocks_read", "cost_ns")

    def __init__(
        self,
        columns: dict[str, np.ndarray],
        rows_read: int,
        blocks_read: int,
        cost_ns: float,
    ) -> None:
        self.columns = columns
        self.rows_read = rows_read
        self.blocks_read = blocks_read
        self.cost_ns = cost_ns


class IOManager:
    """Services block-read requests against a shuffled table."""

    def __init__(self, shuffled: ShuffledTable, cost_model: CostModel) -> None:
        self.shuffled = shuffled
        self.cost_model = cost_model
        self.total_blocks_read = 0
        self.total_rows_read = 0
        self.total_cost_ns = 0.0

    def read_cost(self, blocks: np.ndarray) -> float:
        """Account a batch of block reads without gathering any values.

        The cost and effort counters are identical to :meth:`read_blocks`
        for the same blocks — execution backends that read column data from
        shared memory (the gather happens in workers) still charge simulated
        I/O through this method, so per-backend cost accounting agrees.
        ``blocks`` must be sorted and unique (the engine reads in storage
        order — Section 4.2's locality discussion).
        """
        blocks = np.asarray(blocks, dtype=np.int64)
        if blocks.size == 0:
            return 0.0
        if np.any(np.diff(blocks) <= 0):
            raise ValueError("blocks must be sorted and unique")
        tuples_per_block = self.shuffled.layout.rows_per_block(blocks)
        cost = self.cost_model.block_read_cost(tuples_per_block)
        self.total_blocks_read += int(blocks.size)
        self.total_rows_read += int(tuples_per_block.sum())
        self.total_cost_ns += cost
        return cost

    def read_blocks(self, blocks: np.ndarray, columns: tuple[str, ...]) -> BlockRead:
        """Read the given blocks and return the requested columns' values.

        ``blocks`` must be sorted and unique (the engine reads in storage
        order — Section 4.2's locality discussion).
        """
        blocks = np.asarray(blocks, dtype=np.int64)
        if blocks.size == 0:
            # Empty reads still honour each column's stored dtype, so
            # downstream concatenation never silently upcasts.
            empty = {
                name: np.empty(0, dtype=self.shuffled.table.column(name).dtype)
                for name in columns
            }
            return BlockRead(empty, 0, 0, 0.0)
        cost = self.read_cost(blocks)
        # Walk contiguous block runs as slices rather than materializing a
        # per-row index gather; a single run (the sequential-scan common
        # case) comes back as a zero-copy view of the stored column.
        starts, stops = self.shuffled.layout.run_bounds(blocks)
        if starts.size == 1:
            lo, hi = int(starts[0]), int(stops[0])
            gathered = {
                name: self.shuffled.table.column(name)[lo:hi] for name in columns
            }
        else:
            gathered = {
                name: np.concatenate(
                    [
                        self.shuffled.table.column(name)[lo:hi]
                        for lo, hi in zip(starts, stops)
                    ]
                )
                for name in columns
            }
        rows_read = int((stops - starts).sum())
        return BlockRead(gathered, rows_read, int(blocks.size), cost)
