"""Distinct ε₁ (separation) and ε₂ (reconstruction) (paper Appendix A.2.1).

An analyst who cares more about one guarantee supplies two tolerances:
stages 1–2 run at ε₁, stage 3 reconstructs to ε₂.  The proof of Theorem 2
is untouched — each stage keeps its δ/3 budget and its own ε.
"""

from __future__ import annotations

import numpy as np

from ..core.config import HistSimConfig
from ..core.deviation import stage3_sample_target
from ..core.histsim import HistSim
from ..core.result import MatchResult
from ..core.sampler import TupleSampler

__all__ = ["DualEpsilonHistSim", "run_histsim_dual_epsilon"]


class DualEpsilonHistSim(HistSim):
    """HistSim with separation tolerance ε₁ and reconstruction tolerance ε₂."""

    def __init__(
        self,
        sampler: TupleSampler,
        target: np.ndarray,
        config: HistSimConfig,
        epsilon_reconstruction: float,
        stats_cost=None,
    ) -> None:
        if not 0.0 < epsilon_reconstruction < 2.0:
            raise ValueError(
                f"epsilon_reconstruction must be in (0, 2), got {epsilon_reconstruction}"
            )
        # config.epsilon plays the role of ε₁ throughout stages 1-2.
        super().__init__(sampler, target, config, stats_cost)
        self.epsilon_reconstruction = epsilon_reconstruction

    def stage3_needed(self, matching: np.ndarray) -> np.ndarray:
        """Reconstruction budgets at ε₂ — the stepper and :meth:`run_stage3`
        both budget stage 3 through this method.  (Stage-2 round-budget
        ceilings still scale with the ε₁ target, as before.)"""
        cfg = self.config
        target_n = stage3_sample_target(
            self.epsilon_reconstruction, cfg.delta, cfg.k, self.sampler.num_groups
        )
        needed = np.zeros(self.alive.size, dtype=np.float64)
        needed[matching] = np.maximum(0, target_n - self.state.samples[matching])
        return needed


def run_histsim_dual_epsilon(
    sampler: TupleSampler,
    target: np.ndarray,
    config: HistSimConfig,
    epsilon_separation: float,
    epsilon_reconstruction: float,
) -> MatchResult:
    """Run HistSim with separate tolerances for Guarantees 1 and 2."""
    cfg = config.with_(epsilon=epsilon_separation)
    algo = DualEpsilonHistSim(
        sampler, np.asarray(target, dtype=np.float64), cfg, epsilon_reconstruction
    )
    return algo.run()
