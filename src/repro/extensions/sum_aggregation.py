"""SUM aggregations via measure-biased sampling (paper Appendix A.1.1).

To match bar charts of ``SELECT X, SUM(Y) ... GROUP BY X``, FastMatch uses a
*measure-biased* sample (Sample+Seek [28]): tuples enter the sample with
probability proportional to their measure ``Y``.  Over such a sample, plain
COUNT estimates are unbiased estimates of the SUM distribution, so HistSim
runs unchanged — it just consumes the measure-biased stream.

The offline pass that builds the biased sample is the "one additional
complete pass per measure attribute" the appendix mentions.
"""

from __future__ import annotations

import numpy as np

from ..core.sampler import ArraySampler

__all__ = ["measure_biased_order", "MeasureBiasedSampler", "exact_sum_histograms"]


def measure_biased_order(measure: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """A random permutation where earlier positions are measure-biased.

    Uses Efraimidis–Spirakis weighted reservoir keys: sorting rows by
    ``u^(1/y)`` descending yields a weighted sample *without replacement* —
    any prefix of the order is a measure-biased sample.  Zero-measure rows
    sort last (they contribute nothing to any SUM).
    """
    measure = np.asarray(measure, dtype=np.float64)
    if measure.ndim != 1:
        raise ValueError("measure must be a 1-D array")
    if np.any(measure < 0):
        raise ValueError("measure values must be non-negative")
    keys = np.full(measure.size, -np.inf)
    positive = measure > 0
    u = rng.random(int(positive.sum()))
    # log(u)/y is monotone in u^(1/y); work in logs for numerical range.
    keys[positive] = np.log(u) / measure[positive]
    return np.argsort(-keys, kind="stable")


class MeasureBiasedSampler(ArraySampler):
    """A TupleSampler whose COUNT estimates converge to SUM(Y) shares.

    Materializes a with-replacement stream of rows drawn with probability
    proportional to the measure — the Sample+Seek construction [28] — and
    wraps :class:`ArraySampler` over it, so all of HistSim (stages, budgets,
    tests) runs verbatim; only the sampling measure changed.  Theorem 1's
    with-replacement form applies directly.  Guarantees then hold with
    respect to the measure-weighted distributions, exactly as Appendix
    A.1.1 argues.
    """

    def __init__(
        self,
        z: np.ndarray,
        x: np.ndarray,
        measure: np.ndarray,
        num_candidates: int,
        num_groups: int,
        rng: np.random.Generator,
        batch_size: int = 8192,
        stream_length: int | None = None,
    ) -> None:
        z = np.asarray(z)
        x = np.asarray(x)
        measure = np.asarray(measure, dtype=np.float64)
        if not (z.shape == x.shape == measure.shape):
            raise ValueError("z, x, and measure must have equal shapes")
        if np.any(measure < 0) or measure.sum() <= 0:
            raise ValueError("measure must be non-negative with positive total")
        length = z.size if stream_length is None else int(stream_length)
        if length < 1:
            raise ValueError(f"stream_length must be >= 1, got {length}")
        draws = rng.choice(z.size, size=length, replace=True, p=measure / measure.sum())
        super().__init__(
            z[draws], x[draws], num_candidates, num_groups, rng, batch_size=batch_size
        )


def exact_sum_histograms(
    z: np.ndarray,
    x: np.ndarray,
    measure: np.ndarray,
    num_candidates: int,
    num_groups: int,
) -> np.ndarray:
    """Ground-truth ``SUM(Y)`` histograms: the matrix HistSim's output
    should reconstruct (in normalized shape) when fed the biased stream."""
    z = np.asarray(z, dtype=np.int64)
    x = np.asarray(x, dtype=np.int64)
    measure = np.asarray(measure, dtype=np.float64)
    if not (z.shape == x.shape == measure.shape):
        raise ValueError("z, x, and measure must have equal shapes")
    out = np.zeros((num_candidates, num_groups), dtype=np.float64)
    np.add.at(out, (z, x), measure)
    return out
