"""Appendix A generalizations: SUM aggregation, predicate candidates,
multiple GROUP BY attributes, unknown domains, range-k, dual ε, L2 metric."""

from .dual_epsilon import DualEpsilonHistSim, run_histsim_dual_epsilon
from .metrics import l2_epsilon_given_samples, l2_samples_for_deviation, l2_top_k
from .multi_groupby import composite_grouping, composite_support_size
from .predicates import (
    PredicateCandidateSampler,
    exact_predicate_counts,
    predicate_block_counts,
)
from .range_k import choose_k, run_histsim_range_k
from .sum_aggregation import (
    MeasureBiasedSampler,
    exact_sum_histograms,
    measure_biased_order,
)
from .unknown_domain import UnknownDomainPruneResult, prune_unknown_domain

__all__ = [
    "DualEpsilonHistSim",
    "run_histsim_dual_epsilon",
    "l2_epsilon_given_samples",
    "l2_samples_for_deviation",
    "l2_top_k",
    "composite_grouping",
    "composite_support_size",
    "PredicateCandidateSampler",
    "exact_predicate_counts",
    "predicate_block_counts",
    "choose_k",
    "run_histsim_range_k",
    "MeasureBiasedSampler",
    "exact_sum_histograms",
    "measure_biased_order",
    "UnknownDomainPruneResult",
    "prune_unknown_domain",
]
