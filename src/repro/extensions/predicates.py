"""Candidates from arbitrary boolean predicates (paper Appendix A.1.2).

Instead of one candidate per value of ``Z``, each candidate is an arbitrary
predicate (e.g. ``Z1 = a AND Z2 = b``).  Tuples may then satisfy several
candidates at once; HistSim's guarantees survive because Holm–Bonferroni and
the union-intersection tester are valid under arbitrary dependence (the
appendix makes exactly this point).

For block selection, plain bit-per-block bitmaps are not enough; the
appendix prescribes *density maps* — :func:`predicate_block_counts` shows
the AnyActive primitive built on :class:`~repro.bitmap.DensityMap`.
"""

from __future__ import annotations

import numpy as np

from ..bitmap.density_map import DensityMap
from ..parallel.kernels import count_pairs
from ..query.predicate import Predicate
from ..storage.table import ColumnTable

__all__ = ["PredicateCandidateSampler", "predicate_block_counts", "exact_predicate_counts"]


def exact_predicate_counts(
    table: ColumnTable, candidates: list[Predicate], grouping_attribute: str
) -> np.ndarray:
    """Ground-truth histogram matrix for predicate-defined candidates.

    One kernel call instead of a per-candidate Python loop: every
    ``(candidate, matching row)`` membership pair becomes one pair code, so
    a single bincount produces the whole matrix (tuples satisfying several
    candidates contribute once per candidate, exactly as the loop did).
    """
    x = table.column(grouping_attribute)
    num_groups = table.cardinality(grouping_attribute)
    membership = np.stack([predicate.mask(table) for predicate in candidates])
    cand, rows = np.nonzero(membership)
    return count_pairs(cand, x[rows], len(candidates), num_groups)


def predicate_block_counts(
    density: DensityMap, value_mask: np.ndarray, start_block: int, stop_block: int
) -> np.ndarray:
    """Estimated per-block tuple counts for a single-attribute predicate.

    This is the density-map AnyActive primitive: a block is worth reading
    for a candidate iff its matching-tuple count is positive.  (For
    multi-attribute conjunctions the appendix's cited technique combines
    per-attribute estimates; we expose the per-attribute building block.)
    """
    return density.tuples_matching(value_mask, start_block, stop_block)


class PredicateCandidateSampler:
    """A TupleSampler over predicate-defined candidates.

    A scanned tuple increments the histogram of *every* candidate whose
    predicate it satisfies.  Budgets are per candidate exactly as in the
    base algorithm; the stream is the shuffled row order.
    """

    def __init__(
        self,
        table: ColumnTable,
        candidates: list[Predicate],
        grouping_attribute: str,
        rng: np.random.Generator,
        batch_size: int = 8192,
    ) -> None:
        if not candidates:
            raise ValueError("need at least one predicate candidate")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._num_groups = table.cardinality(grouping_attribute)
        self._num_candidates = len(candidates)
        order = rng.permutation(table.num_rows)
        self._x = table.column(grouping_attribute)[order]
        # Row-membership matrix: candidates are typically few (hand-written
        # predicates), so a dense boolean matrix is the simple right choice.
        self._membership = np.stack(
            [predicate.mask(table)[order] for predicate in candidates]
        )
        self._totals = self._membership.sum(axis=1).astype(np.int64)
        self._delivered = np.zeros(self._num_candidates, dtype=np.int64)
        self._cursor = 0
        self._batch_size = batch_size

    @property
    def num_candidates(self) -> int:
        return self._num_candidates

    @property
    def num_groups(self) -> int:
        return self._num_groups

    @property
    def total_rows(self) -> int:
        return int(self._x.size)

    @property
    def fully_scanned(self) -> bool:
        return self._cursor >= self._x.size

    def delivered_rows(self) -> np.ndarray:
        return self._delivered.copy()

    def candidate_rows(self) -> np.ndarray | None:
        return self._totals.copy()

    def _deliver(self, start: int, stop: int) -> np.ndarray:
        x = self._x[start:stop]
        members = self._membership[:, start:stop]
        # One kernel call over all (candidate, matching row) pairs instead
        # of a per-candidate bincount loop.
        cand, rows = np.nonzero(members)
        counts = count_pairs(cand, x[rows], self._num_candidates, self._num_groups)
        self._delivered += counts.sum(axis=1)
        return counts

    def sample_uniform(self, m: int) -> np.ndarray:
        if m < 0:
            raise ValueError(f"m must be non-negative, got {m}")
        stop = min(self._cursor + m, self._x.size)
        counts = self._deliver(self._cursor, stop)
        self._cursor = stop
        return counts

    def sample_until(self, needed: np.ndarray, max_rows: float | None = None) -> np.ndarray:
        needed = np.asarray(needed, dtype=np.float64)
        if needed.shape != (self._num_candidates,):
            raise ValueError(
                f"needed must have shape ({self._num_candidates},), got {needed.shape}"
            )
        remaining = (self._totals - self._delivered).astype(np.float64)
        goal = np.minimum(np.maximum(needed, 0.0), remaining)
        fresh = np.zeros((self._num_candidates, self._num_groups), dtype=np.int64)
        fresh_rows = np.zeros(self._num_candidates, dtype=np.float64)
        delivered_call = 0
        while np.any(fresh_rows < goal) and not self.fully_scanned:
            if max_rows is not None and delivered_call >= max_rows:
                break
            stop = min(self._cursor + self._batch_size, self._x.size)
            batch = self._deliver(self._cursor, stop)
            self._cursor = stop
            fresh += batch
            fresh_rows += batch.sum(axis=1)
            delivered_call += int(batch.sum())
        return fresh
