"""Alternative distance metrics (paper Appendix A.2.2).

HistSim extends to any metric with a Theorem-1 analogue.  For normalized L2
the analogue is the classic McDiarmid argument: the empirical distribution
satisfies ``E‖p̂ − p‖₂ ≤ 1/√n`` and the norm has bounded differences
``2/n``, giving

    P( ‖p̂ − p‖₂ ≥ 1/√n + ε ) ≤ exp(−n ε² / 2)

— notably *support-independent*, which is exactly why Sample+Seek [28]
prefers L2.  This module provides the bound pair plus a simple certified
L2 top-k routine built on it.
"""

from __future__ import annotations

import numpy as np

from ..core.config import HistSimConfig
from ..core.distance import normalize
from ..core.result import MatchResult, StageStats
from ..core.sampler import TupleSampler

__all__ = [
    "l2_epsilon_given_samples",
    "l2_samples_for_deviation",
    "l2_top_k",
]


def l2_epsilon_given_samples(n: int | np.ndarray, delta: float) -> np.ndarray:
    """L2 deviation radius after ``n`` samples at confidence ``1 − delta``."""
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    n_arr = np.asarray(n, dtype=np.float64)
    if np.any(n_arr < 0):
        raise ValueError("sample counts must be non-negative")
    with np.errstate(divide="ignore"):
        eps = 1.0 / np.sqrt(n_arr) + np.sqrt(2.0 * np.log(1.0 / delta) / n_arr)
    eps = np.where(n_arr > 0, eps, np.inf)
    if np.ndim(n) == 0:
        return float(eps)
    return eps


def l2_samples_for_deviation(epsilon: float, delta: float) -> int:
    """Samples so that ``‖p̂ − p‖₂ < ε`` w.p. ``> 1 − delta``.

    Inverts the bound via ``√n ≥ (1 + √(2 ln(1/δ))) / ε`` — note no
    ``|V_X|`` factor, the L2 advantage.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    root = (1.0 + np.sqrt(2.0 * np.log(1.0 / delta))) / epsilon
    return int(np.ceil(root * root))


def l2_top_k(
    sampler: TupleSampler,
    target: np.ndarray,
    config: HistSimConfig,
) -> MatchResult:
    """Certified top-k under normalized L2 (one-shot uniform sampling).

    Samples every candidate to the L2 reconstruction level ``ε/2`` at
    confidence ``δ/|V_Z|`` (Bonferroni), then ranks by empirical L2
    distance.  With every candidate within ε/2 of its true distribution,
    any ordering mistake is at most ε — the L2 analogues of Guarantees 1
    and 2.  (The fully adaptive three-stage pipeline generalizes the same
    way; this routine is the metric-swap witness the appendix calls for.)
    """
    target = np.asarray(target, dtype=np.float64)
    if target.shape != (sampler.num_groups,):
        raise ValueError(
            f"target must have {sampler.num_groups} entries, got {target.shape}"
        )
    per_candidate_delta = config.delta / max(sampler.num_candidates, 1)
    needed_n = l2_samples_for_deviation(config.epsilon / 2.0, per_candidate_delta)
    needed = np.full(sampler.num_candidates, float(needed_n))
    counts = sampler.sample_until(needed)

    q_bar = normalize(target)
    r_bar = normalize(counts.astype(np.float64))
    distances = np.sqrt(np.square(r_bar - q_bar[None, :]).sum(axis=1))
    nonempty = counts.sum(axis=1) > 0
    distances = np.where(nonempty, distances, np.inf)
    order = np.argsort(distances, kind="stable")
    top = order[: min(config.k, int(nonempty.sum()))]

    return MatchResult(
        matching=tuple(int(i) for i in top),
        histograms=counts[top].copy(),
        distances=distances[top].copy(),
        pruned=(),
        exact=sampler.fully_scanned,
        stats=StageStats(
            stage3_samples=int(counts.sum()),
            surviving_candidates=int(nonempty.sum()),
        ),
    )
