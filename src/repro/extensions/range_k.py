"""Retrieving a flexible number of matches, k ∈ [k1, k2] (paper Appendix A.2.3).

When the analyst accepts anywhere between ``k1`` and ``k2`` matches, HistSim
may pick the ``k`` whose boundary is easiest to certify — the one with the
largest gap between the k-th and (k+1)-th estimated distances, since stage-2
budgets scale as ``1/margin²`` and the split point sits in that gap.
"""

from __future__ import annotations

import numpy as np

from ..core.config import HistSimConfig
from ..core.histsim import HistSim
from ..core.result import MatchResult
from ..core.sampler import TupleSampler

__all__ = ["choose_k", "run_histsim_range_k"]


def choose_k(distances: np.ndarray, alive: np.ndarray, k_min: int, k_max: int) -> int:
    """The k in [k_min, k_max] with the widest (k, k+1) distance gap."""
    if not 1 <= k_min <= k_max:
        raise ValueError(f"need 1 <= k_min <= k_max, got [{k_min}, {k_max}]")
    alive_distances = np.sort(np.asarray(distances, dtype=np.float64)[alive])
    if alive_distances.size <= k_min:
        return k_min
    k_max = min(k_max, alive_distances.size - 1)
    if k_max < k_min:
        return k_min
    gaps = alive_distances[k_min : k_max + 1] - alive_distances[k_min - 1 : k_max]
    return k_min + int(np.argmax(gaps))


def run_histsim_range_k(
    sampler: TupleSampler,
    target: np.ndarray,
    config: HistSimConfig,
    k_min: int,
    k_max: int,
) -> MatchResult:
    """HistSim with k chosen adaptively inside [k_min, k_max].

    Stage 1 runs first; the post-stage-1 estimates pick the easiest k
    (widest boundary gap), then stages 2–3 run at that k.  The guarantees
    hold for the chosen k: the choice only affects which hypotheses stage 2
    tests, not their error control.
    """
    if not 1 <= k_min <= k_max:
        raise ValueError(f"need 1 <= k_min <= k_max, got [{k_min}, {k_max}]")
    algo = HistSim(sampler, np.asarray(target, dtype=np.float64), config)
    pruned_mask = algo.run_stage1()

    tau = algo.state.distances(algo.target)
    k = choose_k(tau, algo.alive, k_min, k_max)
    algo.config = config.with_(k=k)

    matching = algo.run_stage2()
    algo.run_stage3(matching)

    tau = algo.state.distances(algo.target)
    order = np.argsort(tau[matching], kind="stable")
    matching = matching[order]
    from ..core.result import StageStats

    stats = StageStats(
        stage1_samples=0,
        stage2_samples=0,
        stage3_samples=int(algo.state.samples.sum()),
        pruned_candidates=int(pruned_mask.sum()),
        surviving_candidates=int(algo.alive.sum()),
        rounds=len(algo.rounds),
    )
    return MatchResult(
        matching=tuple(int(i) for i in matching),
        histograms=algo.state.counts[matching].copy(),
        distances=tau[matching].copy(),
        pruned=tuple(int(i) for i in np.flatnonzero(pruned_mask)),
        exact=algo.sampler.fully_scanned,
        stats=stats,
        rounds=tuple(algo.rounds),
    )
