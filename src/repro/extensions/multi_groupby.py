"""Multiple GROUP BY attributes (paper Appendix A.1.3).

With grouping attributes ``X(1)…X(n)``, the histogram support is estimated
as the product ``|V_X(1)| · … · |V_X(n)|``.  This can overestimate the true
support (some combinations never co-occur), which only loosens Theorem 1's
bound — correctness is unaffected, exactly as the appendix argues.
"""

from __future__ import annotations

import numpy as np

from ..storage.table import ColumnTable

__all__ = ["composite_grouping", "composite_support_size"]


def composite_support_size(table: ColumnTable, attributes: tuple[str, ...]) -> int:
    """``|V_X(1)| · … · |V_X(n)|`` — the (possibly over-) estimated support."""
    if not attributes:
        raise ValueError("need at least one grouping attribute")
    size = 1
    for name in attributes:
        size *= table.cardinality(name)
    return size


def composite_grouping(
    table: ColumnTable, attributes: tuple[str, ...]
) -> tuple[np.ndarray, int, list[str]]:
    """Encode several grouping columns into one composite column.

    Returns ``(codes, cardinality, labels)`` where ``codes`` is the
    mixed-radix encoding (last attribute varies fastest) and ``labels``
    joins the per-attribute labels with ``|``.
    """
    cardinality = composite_support_size(table, attributes)
    codes = np.zeros(table.num_rows, dtype=np.int64)
    for name in attributes:
        codes = codes * table.cardinality(name) + table.column(name).astype(np.int64)

    labels: list[str] = [""]
    for name in attributes:
        attr = table.schema[name]
        labels = [
            (prefix + "|" if prefix else "") + str(value)
            for prefix in labels
            for value in attr.values
        ]
    return codes, cardinality, labels
