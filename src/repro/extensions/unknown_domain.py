"""Unknown candidate domains (paper Appendix A.1.5).

When the candidate domain is not known at query time (no index over ``Z``),
stage 1 must also account for candidates it has *never seen*.  The appendix
adds one "dummy" candidate that aggregates all unseen values: if the dummy's
under-representation test rejects, then the unseen candidates' combined
selectivity is below σ, hence each individually is too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hypergeometric import underrepresentation_pvalues
from ..core.multiple_testing import holm_bonferroni

__all__ = ["UnknownDomainPruneResult", "prune_unknown_domain"]


@dataclass(frozen=True)
class UnknownDomainPruneResult:
    """Outcome of stage-1 pruning without a known domain."""

    seen_values: tuple[int, ...]
    pruned_seen: tuple[int, ...]
    unseen_all_rare: bool


def prune_unknown_domain(
    sampled_values: np.ndarray,
    total_rows: int,
    sigma: float,
    delta: float,
) -> UnknownDomainPruneResult:
    """Stage 1 over a stream of sampled ``Z`` values with unknown domain.

    ``sampled_values`` are the candidate-attribute values of ``m`` uniform
    without-replacement samples.  State is created for values as they are
    discovered; one extra dummy test with an observed count of zero covers
    every unseen value.  Family-wise error is controlled at ``delta / 3``
    (the stage-1 share) by Holm–Bonferroni over seen values + dummy.
    """
    sampled_values = np.asarray(sampled_values)
    if sampled_values.ndim != 1:
        raise ValueError("sampled_values must be a 1-D array")
    m = int(sampled_values.size)
    if m == 0:
        raise ValueError("need at least one sample")
    if m > total_rows:
        raise ValueError("cannot sample more rows than the table holds")

    seen, counts = np.unique(sampled_values, return_counts=True)
    observed = np.concatenate([counts, [0]])  # trailing dummy: unseen values
    pvalues = underrepresentation_pvalues(observed, total_rows, sigma, m)
    rejected = holm_bonferroni(pvalues, delta / 3.0)

    pruned_seen = tuple(int(v) for v, r in zip(seen, rejected[:-1]) if r)
    return UnknownDomainPruneResult(
        seen_values=tuple(int(v) for v in seen),
        pruned_seen=pruned_seen,
        unseen_all_rare=bool(rejected[-1]),
    )
