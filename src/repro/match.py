"""One-call library front doors: ``match_histograms`` and ``match_many``.

``match_histograms`` wraps the full single-query pipeline — preparation
(shuffle, index, ground truth, target resolution), execution, and audit —
for users who have a :class:`~repro.storage.ColumnTable` and a question,
without needing to touch the system internals.

``match_many`` is the batch counterpart: it drives a whole list of queries
through one :class:`~repro.system.MatchSession`, so the expensive prepared
artifacts are computed once and shared, and execution is interleaved on one
simulated clock with per-query latency and aggregate throughput reporting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .core.config import HistSimConfig
from .core.target import TargetSpec
from .parallel import ExecutionBackend, make_backend
from .query.predicate import Predicate, TruePredicate
from .query.spec import HistogramQuery
from .storage.table import ColumnTable
from .system.fastmatch import DEFAULT_BLOCK_SIZE, PreparedQuery, run_approach
from .system.report import RunReport
from .system.scheduler import ScheduleResult
from .system.session import MatchSession

__all__ = ["match_histograms", "match_many"]


def _as_target_spec(
    target: TargetSpec | np.ndarray | int | None,
) -> TargetSpec:
    """Coerce the user-facing target shorthand into a TargetSpec."""
    if isinstance(target, TargetSpec):
        return target
    if target is None:
        return TargetSpec(kind="closest_to_uniform")
    if isinstance(target, (int, np.integer)):
        return TargetSpec(kind="candidate", candidate=int(target))
    vector = tuple(float(v) for v in np.asarray(target, dtype=np.float64))
    return TargetSpec(kind="explicit", vector=vector)


def match_histograms(
    table: ColumnTable,
    candidate_attribute: str,
    grouping_attribute: str,
    target: TargetSpec | np.ndarray | int | None = None,
    k: int = 10,
    epsilon: float = 0.1,
    delta: float = 0.01,
    sigma: float = 0.0,
    predicate: Predicate | None = None,
    approach: str = "fastmatch",
    seed: int = 0,
    block_size: int = DEFAULT_BLOCK_SIZE,
    audit: bool = True,
    backend: str | ExecutionBackend = "serial",
    workers: int | None = None,
) -> RunReport:
    """Find the top-k candidates whose histograms best match a target.

    Parameters
    ----------
    table:
        The encoded relation ``T`` of Definition 1.
    candidate_attribute, grouping_attribute:
        ``Z`` (one candidate per value) and ``X`` (the histogram support).
    target:
        What to match: a :class:`TargetSpec`, an explicit vector over the
        grouping attribute's values, a candidate index (``int``, meaning
        "most similar to that candidate"), or ``None`` for the candidate
        closest to uniform.
    k, epsilon, delta, sigma:
        Problem 1's parameters (defaults: moderate tolerance, no
        selectivity pruning).
    predicate:
        Optional extra WHERE condition applied to every candidate.
    approach:
        ``"fastmatch"`` (default), ``"scanmatch"``, ``"syncmatch"``, or the
        exact ``"scan"``.
    audit:
        Verify the guarantees against exact ground truth (cheap here, since
        preparation computes it anyway).
    backend, workers:
        Execution backend (``"serial"``/``"sharded"`` or an instance) and
        its worker count.  Results are identical across backends; a backend
        created here is closed before returning, while a passed-in instance
        stays open for reuse.

    Returns
    -------
    RunReport — ``.result.matching`` holds the candidate indices,
    ``.result.histograms`` the estimated visualizations, ``.audit`` the
    guarantee check, ``.elapsed_seconds`` the simulated latency.
    """
    spec = _as_target_spec(target)
    query = HistogramQuery(
        candidate_attribute=candidate_attribute,
        grouping_attribute=grouping_attribute,
        target=spec,
        k=k,
        predicate=predicate or TruePredicate(),
        name=f"match:{candidate_attribute}/{grouping_attribute}",
    )
    config = HistSimConfig(k=k, epsilon=epsilon, delta=delta, sigma=sigma)
    rng = np.random.default_rng(seed)
    prepared = PreparedQuery.prepare(table, query, rng, block_size=block_size)
    owns_backend = not isinstance(backend, ExecutionBackend)
    resolved = make_backend(backend, workers)
    try:
        return run_approach(
            prepared, approach, config, seed=seed, audit=audit, backend=resolved
        )
    finally:
        if owns_backend:
            resolved.close()


def match_many(
    table: ColumnTable,
    queries: Sequence[HistogramQuery],
    *,
    epsilon: float = 0.1,
    delta: float = 0.01,
    sigma: float = 0.0,
    approach: str = "fastmatch",
    seed: int = 0,
    block_size: int = DEFAULT_BLOCK_SIZE,
    audit: bool = True,
    max_step_rows: int | None = None,
    backend: str | ExecutionBackend = "serial",
    workers: int | None = None,
    policy: str = "rr",
) -> ScheduleResult:
    """Run a batch of histogram-matching queries through one shared session.

    Every query's preparation artifacts (shuffle, bitmap index, ground
    truth) are computed once per distinct sub-key and reused; execution is
    interleaved on one simulated clock under ``policy``
    (:data:`repro.serving.POLICIES`; round-robin by default), modelling a
    server working through a concurrent queue.  For *online* arrivals with
    admission control and deadlines, use :class:`repro.FrontDoor` instead.

    Parameters
    ----------
    table:
        The encoded relation all queries run against.
    queries:
        :class:`~repro.query.HistogramQuery` instances; each query's own
        ``k`` is used, with the shared ``epsilon``/``delta``/``sigma``.
    approach, seed, block_size, audit:
        As in :func:`match_histograms`, applied to every query.
    max_step_rows:
        Optional per-step row bound for finer interleaving granularity.
    backend, workers:
        Execution backend shared by every query in the batch (the sharded
        backend's worker pool is spawned once and reused).  A backend
        created here is closed before returning.
    policy:
        Scheduling policy for the drain; per-query results are identical
        under every policy (only latency shape changes).

    Returns
    -------
    ScheduleResult — iterable of per-query
    :class:`~repro.system.JobOutcome` in submission order (``.report``
    holds the usual :class:`~repro.system.RunReport`; ``.latency_seconds``
    is the queue latency on the shared clock), plus aggregate
    ``.throughput_qps`` and ``.elapsed_seconds``.
    """
    session = MatchSession(
        table,
        block_size=block_size,
        audit=audit,
        backend=backend,
        workers=workers,
        policy=policy,
    )
    configs = [
        HistSimConfig(k=query.k, epsilon=epsilon, delta=delta, sigma=sigma)
        for query in queries
    ]
    try:
        for query, config in zip(queries, configs):
            session.submit(
                query,
                approach=approach,
                config=config,
                seed=seed,
                max_step_rows=max_step_rows,
            )
        return session.run()
    finally:
        # Ownership-aware: a no-op when the caller passed their own backend.
        session.close()
