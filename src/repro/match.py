"""One-call library front door: ``match_histograms``.

Wraps the full pipeline — preparation (shuffle, index, ground truth, target
resolution), execution, and audit — for users who have a
:class:`~repro.storage.ColumnTable` and a question, without needing to
touch the system internals.
"""

from __future__ import annotations

import numpy as np

from .core.config import HistSimConfig
from .core.target import TargetSpec
from .query.predicate import Predicate, TruePredicate
from .query.spec import HistogramQuery
from .storage.table import ColumnTable
from .system.fastmatch import DEFAULT_BLOCK_SIZE, PreparedQuery, run_approach
from .system.report import RunReport

__all__ = ["match_histograms"]


def match_histograms(
    table: ColumnTable,
    candidate_attribute: str,
    grouping_attribute: str,
    target: TargetSpec | np.ndarray | int | None = None,
    k: int = 10,
    epsilon: float = 0.1,
    delta: float = 0.01,
    sigma: float = 0.0,
    predicate: Predicate | None = None,
    approach: str = "fastmatch",
    seed: int = 0,
    block_size: int = DEFAULT_BLOCK_SIZE,
    audit: bool = True,
) -> RunReport:
    """Find the top-k candidates whose histograms best match a target.

    Parameters
    ----------
    table:
        The encoded relation ``T`` of Definition 1.
    candidate_attribute, grouping_attribute:
        ``Z`` (one candidate per value) and ``X`` (the histogram support).
    target:
        What to match: a :class:`TargetSpec`, an explicit vector over the
        grouping attribute's values, a candidate index (``int``, meaning
        "most similar to that candidate"), or ``None`` for the candidate
        closest to uniform.
    k, epsilon, delta, sigma:
        Problem 1's parameters (defaults: moderate tolerance, no
        selectivity pruning).
    predicate:
        Optional extra WHERE condition applied to every candidate.
    approach:
        ``"fastmatch"`` (default), ``"scanmatch"``, ``"syncmatch"``, or the
        exact ``"scan"``.
    audit:
        Verify the guarantees against exact ground truth (cheap here, since
        preparation computes it anyway).

    Returns
    -------
    RunReport — ``.result.matching`` holds the candidate indices,
    ``.result.histograms`` the estimated visualizations, ``.audit`` the
    guarantee check, ``.elapsed_seconds`` the simulated latency.
    """
    if isinstance(target, TargetSpec):
        spec = target
    elif target is None:
        spec = TargetSpec(kind="closest_to_uniform")
    elif isinstance(target, (int, np.integer)):
        spec = TargetSpec(kind="candidate", candidate=int(target))
    else:
        vector = tuple(float(v) for v in np.asarray(target, dtype=np.float64))
        spec = TargetSpec(kind="explicit", vector=vector)

    query = HistogramQuery(
        candidate_attribute=candidate_attribute,
        grouping_attribute=grouping_attribute,
        target=spec,
        k=k,
        predicate=predicate or TruePredicate(),
        name=f"match:{candidate_attribute}/{grouping_attribute}",
    )
    config = HistSimConfig(k=k, epsilon=epsilon, delta=delta, sigma=sigma)
    rng = np.random.default_rng(seed)
    prepared = PreparedQuery.prepare(table, query, rng, block_size=block_size)
    return run_approach(prepared, approach, config, seed=seed, audit=audit)
