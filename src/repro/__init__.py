"""repro — reproduction of "Adaptive Sampling for Rapidly Matching Histograms"
(FastMatch / HistSim, Macke et al., VLDB 2018).

Subpackages:

- :mod:`repro.core` — the HistSim algorithm and its statistical machinery.
- :mod:`repro.storage` — column-store, block layout, simulated I/O and costs.
- :mod:`repro.bitmap` — bit-per-block bitmap indexes and density maps.
- :mod:`repro.sampling` — block-selection policies and the sampling engine.
- :mod:`repro.parallel` — execution backends: serial, sharded
  (shared-memory worker pool), and threads (GIL-releasing in-process
  executor), all with byte-identical results.
- :mod:`repro.system` — the FastMatch architecture and baselines.
- :mod:`repro.serving` — the online front door: admission control,
  deadline-aware scheduling policies, bounded queues, serving metrics.
- :mod:`repro.query` — histogram-generating query templates and exact executor.
- :mod:`repro.data` — synthetic FLIGHTS / TAXI / POLICE datasets and workloads.
- :mod:`repro.extensions` — Appendix A generalizations.
"""

__version__ = "1.0.0"

from . import (
    bitmap,
    core,
    data,
    extensions,
    parallel,
    query,
    sampling,
    serving,
    storage,
    system,
)
from .match import match_histograms, match_many
from .parallel import (
    ExecutionBackend,
    SerialBackend,
    ShardedBackend,
    ThreadPoolBackend,
    make_backend,
)
from .serving import AsyncFrontDoor, FrontDoor, QueryRequest
from .system.clock import Clock, SimulatedClock, WallClock
from .system.registry import SessionRegistry
from .system.session import MatchSession

__all__ = [
    "bitmap",
    "core",
    "data",
    "extensions",
    "parallel",
    "query",
    "sampling",
    "serving",
    "storage",
    "system",
    "match_histograms",
    "match_many",
    "make_backend",
    "ExecutionBackend",
    "SerialBackend",
    "ShardedBackend",
    "ThreadPoolBackend",
    "AsyncFrontDoor",
    "FrontDoor",
    "QueryRequest",
    "Clock",
    "SimulatedClock",
    "WallClock",
    "MatchSession",
    "SessionRegistry",
    "__version__",
]
