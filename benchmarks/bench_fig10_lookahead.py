"""Figure 10 — effect of the lookahead parameter on FastMatch latency
(paper §5.4).

Paper claims: latency is "relatively robust" to lookahead for low-|V_Z|
queries; for the high-cardinality queries (taxi-q*, police-q3) larger
lookahead helps, with minor gains past a point; 1024 is an acceptable
default everywhere.
"""

from __future__ import annotations

import numpy as np

from common import RUN_SEEDS, config_for, format_table, get_prepared, save_report
from repro.data import QUERY_NAMES
from repro.system import run_approach

LOOKAHEAD_GRID = (8, 32, 128, 512, 1024, 2048)


def _run_lookahead_sweep() -> dict:
    results = {}
    for query_name in QUERY_NAMES:
        prepared = get_prepared(query_name)
        series = []
        for lookahead in LOOKAHEAD_GRID:
            config = config_for(prepared.query.k, lookahead=lookahead)
            report = run_approach(
                prepared, "fastmatch", config, seed=RUN_SEEDS[0], audit=False
            )
            series.append(report.elapsed_seconds)
        results[query_name] = series
    return results


def bench_fig10(benchmark):
    results = benchmark.pedantic(_run_lookahead_sweep, rounds=1, iterations=1)

    headers = ["query"] + [f"la={la}" for la in LOOKAHEAD_GRID]
    rows = [
        [query_name] + [f"{seconds:.4f}" for seconds in results[query_name]]
        for query_name in QUERY_NAMES
    ]
    save_report(
        "fig10_lookahead",
        format_table(
            "Figure 10 — FastMatch wall time (simulated s) vs lookahead", headers, rows
        ),
    )
    benchmark.extra_info["lookahead"] = results

    for query_name in QUERY_NAMES:
        series = np.asarray(results[query_name])
        at_default = series[LOOKAHEAD_GRID.index(1024)]
        # The default must be within 20% of the best setting for the query
        # (the paper: "we found the default value of 1024 to be acceptable
        # in all circumstances").
        assert at_default <= 1.2 * series.min(), (
            f"{query_name}: lookahead=1024 far from best "
            f"({at_default:.4f}s vs {series.min():.4f}s)"
        )
    # High-cardinality queries benefit from more lookahead (paper's headline
    # effect): tiny lookahead is materially slower than the default.
    for query_name in ("taxi-q1", "taxi-q2", "police-q3"):
        series = results[query_name]
        assert series[0] > 1.1 * series[LOOKAHEAD_GRID.index(1024)], (
            f"{query_name}: lookahead=8 should be clearly slower than 1024"
        )
