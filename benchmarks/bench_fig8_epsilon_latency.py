"""Figure 8 — effect of ε on query latency (paper §5.4).

The paper's claim: "In almost all cases, increasing the tolerance parameter
ε leads to reduced runtime".  We sweep ε per query/approach and assert the
downward trend (comparing the smallest-ε latency to the largest-ε latency).

SyncMatch is omitted on the taxi queries, exactly as in the paper's figure
("SYNCMATCH not shown").
"""

from __future__ import annotations

from common import SWEEP_APPROACHES, format_table, save_report
from conftest import EPSILON_GRID, epsilon_sweep
from repro.data import QUERY_NAMES


def bench_fig8(benchmark):
    results = benchmark.pedantic(epsilon_sweep, rounds=1, iterations=1)

    headers = ["query", "approach"] + [f"eps={e:g}" for e in EPSILON_GRID]
    rows = []
    for query_name in QUERY_NAMES:
        for approach in SWEEP_APPROACHES[query_name]:
            series = results[query_name][approach]
            rows.append(
                [query_name, approach] + [f"{seconds:.4f}" for _, seconds, _ in series]
            )
    save_report(
        "fig8_epsilon_latency",
        format_table("Figure 8 — wall time (simulated s) vs epsilon", headers, rows),
    )

    # Latency should not increase as epsilon grows (allowing round noise).
    for query_name in QUERY_NAMES:
        for approach in SWEEP_APPROACHES[query_name]:
            series = results[query_name][approach]
            first = series[0][1]
            last = series[-1][1]
            assert last <= first * 1.15, (
                f"{query_name}/{approach}: latency rose from eps={series[0][0]} "
                f"({first:.4f}s) to eps={series[-1][0]} ({last:.4f}s)"
            )
