"""Counting-kernel microbenchmark: legacy vs narrow vs pair-code-cached.

Times the window-counting hot path — the gather + filter + bincount that
dominates sampling cost — through each registered kernel on the same
shuffled table and the same window schedule:

- ``classic`` — the legacy serial arithmetic (row-index gather, int64
  upcasts, int64 pair codes);
- ``narrow`` — contiguous-run slice gather + dtype-narrowed pair codes;
- ``fused`` — slice-take + bincount over a prepared pair-code column
  (its one-off build cost is measured and reported separately, as the
  session's artifact cache amortizes it across queries).

The window schedule mixes the geometries the engine actually produces:
contiguous windows (a full sequential pass), scattered windows (every
other block, the AnyActive selection shape), and a filtered pass.  Every
kernel's summed counts are asserted byte-identical to classic's.

Wall timings carry the ``wall_`` prefix in the history record (same-host
gating only); the bytes-moved reduction rates are deterministic functions
of the configuration, so they gate everywhere — a kernel regression that
starts copying more shows up on any host.

Usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_kernels.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_kernels.py --tiny  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from bench_parallel_scaling import (
    GENERATOR_CANDIDATES,
    GENERATOR_GROUPS,
    generator_table,
)
from common import RESULTS_DIR, format_table, save_report
from repro.obs.bench_history import BenchHistory, normalize_bench_kernels
from repro.parallel import build_pair_codes, count_window
from repro.storage.shuffle import shuffle_table

KERNEL_ORDER = ("classic", "narrow", "fused")


def window_schedule(num_blocks: int, window_blocks: int) -> list[np.ndarray]:
    """The mixed window geometries one benchmark pass walks."""
    windows = []
    # Contiguous pass: every block, window_blocks at a time (ScanAll shape).
    for start in range(0, num_blocks, window_blocks):
        windows.append(
            np.arange(start, min(start + window_blocks, num_blocks),
                      dtype=np.int64)
        )
    # Scattered pass: every other block (the block-selection shape, where
    # run-gather degenerates to single-block slices).
    for start in range(0, num_blocks, 2 * window_blocks):
        windows.append(
            np.arange(start, min(start + 2 * window_blocks, num_blocks), 2,
                      dtype=np.int64)
        )
    return windows


def sweep(z, x, layout, c, g, windows, kernel, codes=None, row_filter=None):
    """All windows through one kernel; returns (counts, bytes_moved)."""
    total = np.zeros((c, g), dtype=np.int64)
    moved = 0
    for blocks in windows:
        counts, window_moved = count_window(
            z, x, blocks, layout, c, g,
            row_filter=row_filter, codes=codes, kernel=kernel,
        )
        total += counts
        moved += window_moved
    return total, moved


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=4_000_000,
                        help="generator dataset rows (default 4M)")
    parser.add_argument("--block-size", type=int, default=4096,
                        help="tuples per block (throughput regime)")
    parser.add_argument("--window-blocks", type=int, default=64,
                        help="blocks per counting window")
    parser.add_argument("--passes", type=int, default=3,
                        help="timed passes per kernel (best-of)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke mode: small data, one pass")
    args = parser.parse_args(argv)

    if args.tiny:
        args.rows = 120_000
        args.block_size = 512
        args.window_blocks = 16
        args.passes = 3  # best-of-3: single tiny passes are too noisy to gate

    table = generator_table(args.rows, seed=args.seed)
    shuffled = shuffle_table(
        table, args.block_size, np.random.default_rng(args.seed)
    )
    layout = shuffled.layout
    z = shuffled.table.column("z")
    x = shuffled.table.column("x")
    c, g = GENERATOR_CANDIDATES, GENERATOR_GROUPS
    windows = window_schedule(layout.num_blocks, args.window_blocks)
    # A deterministic ~60%-selective filter, applied on a second sweep so
    # both the unfiltered and filtered arithmetic are in the timing.
    row_filter = (
        np.random.default_rng(args.seed + 1).random(shuffled.num_rows) < 0.6
    )

    build_start = time.perf_counter()
    codes = build_pair_codes(z, x, c, g)
    codes_build_seconds = time.perf_counter() - build_start

    results_by_kernel: dict[str, dict] = {}
    reference = None
    for kernel in KERNEL_ORDER:
        kernel_codes = codes if kernel == "fused" else None
        seconds = []
        counts = moved = None
        for _ in range(args.passes):
            start = time.perf_counter()
            plain, plain_moved = sweep(
                z, x, layout, c, g, windows, kernel, codes=kernel_codes
            )
            filtered, filtered_moved = sweep(
                z, x, layout, c, g, windows, kernel, codes=kernel_codes,
                row_filter=row_filter,
            )
            seconds.append(time.perf_counter() - start)
            counts = plain + filtered
            moved = plain_moved + filtered_moved
        if reference is None:
            reference = counts
        results_by_kernel[kernel] = {
            "seconds": min(seconds),
            "bytes_moved": int(moved),
            "identical_to_classic": bool(np.array_equal(counts, reference)),
        }

    classic = results_by_kernel["classic"]
    for kernel, entry in results_by_kernel.items():
        entry["speedup"] = (
            classic["seconds"] / entry["seconds"]
            if entry["seconds"] > 0 else float("inf")
        )
        entry["bytes_moved_reduction"] = (
            1.0 - entry["bytes_moved"] / classic["bytes_moved"]
            if classic["bytes_moved"] else 0.0
        )

    results = {
        "tiny": args.tiny,
        "rows": shuffled.num_rows,
        "blocks": layout.num_blocks,
        "block_size": args.block_size,
        "window_blocks": args.window_blocks,
        "windows": len(windows),
        "passes": args.passes,
        "candidates": c,
        "groups": g,
        "code_dtype": str(codes.dtype),
        "codes_build_seconds": codes_build_seconds,
        "cpu_count": os.cpu_count(),
        "kernels": results_by_kernel,
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_kernels.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )
    BenchHistory(RESULTS_DIR / "history").append(
        normalize_bench_kernels(results, note="tiny" if args.tiny else "")
    )

    rows_out = [
        [kernel, f"{entry['seconds']:.4f}", f"{entry['speedup']:.2f}x",
         f"{entry['bytes_moved'] / 2**20:.2f}",
         f"{entry['bytes_moved_reduction'] * 100:.1f}%",
         "yes" if entry["identical_to_classic"] else "NO"]
        for kernel, entry in results_by_kernel.items()
    ]
    table_text = format_table(
        f"Counting kernels — {shuffled.num_rows:,} rows, "
        f"{len(windows)} windows x {args.passes} passes "
        f"(codes: {codes.dtype}, built in {codes_build_seconds:.4f}s)",
        ["kernel", "best s", "speedup", "MiB moved", "moved vs classic",
         "identical"],
        rows_out,
    )
    save_report("bench_kernels", table_text)

    if not all(e["identical_to_classic"] for e in results_by_kernel.values()):
        print("ERROR: kernel counts diverged from classic")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
