"""Figure 9 — effect of ε on Δd, the total relative error in visual distance
(paper §5.4).

The paper's claim: Δd grows (mildly) with ε but "was never more than 5%
larger than optimal for any query, even for the largest values of ε".
"""

from __future__ import annotations

from common import SWEEP_APPROACHES, format_table, save_report
from conftest import EPSILON_GRID, epsilon_sweep
from repro.data import QUERY_NAMES


def bench_fig9(benchmark):
    results = benchmark.pedantic(epsilon_sweep, rounds=1, iterations=1)

    headers = ["query", "approach"] + [f"eps={e:g}" for e in EPSILON_GRID]
    rows = []
    for query_name in QUERY_NAMES:
        for approach in SWEEP_APPROACHES[query_name]:
            series = results[query_name][approach]
            rows.append(
                [query_name, approach] + [f"{dd:+.4f}" for _, _, dd in series]
            )
    save_report(
        "fig9_epsilon_delta_d",
        format_table("Figure 9 — delta_d vs epsilon", headers, rows),
    )

    # The paper's 5% bound on delta_d, at every epsilon, for every approach.
    for query_name in QUERY_NAMES:
        for approach in SWEEP_APPROACHES[query_name]:
            for eps, _, dd in results[query_name][approach]:
                assert dd <= 0.05, (
                    f"{query_name}/{approach} at eps={eps}: delta_d={dd:.4f} > 5%"
                )
