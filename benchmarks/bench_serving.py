"""Serving benchmark — open-loop Poisson arrivals through the front door.

Not a paper figure: this benchmark exercises the async serving subsystem
(admission control + deadline-aware scheduling + bounded steppers) under
the load shape the ROADMAP north star implies — requests arriving on their
own schedule, not as a batch.  A fixed Poisson arrival trace over the
FLIGHTS workload mix is replayed open-loop on the simulated clock through
every scheduling policy, at an arrival rate deliberately above the service
rate (overload), with heterogeneous per-request deadlines.

The default overload is moderate (1.25× the service rate): that is the
regime where *scheduling* decides deadline hits — queues build, so FIFO
convoys tight-deadline requests behind loose ones while EDF reorders.
Far past saturation (≳ 1.5×) most deadlines become infeasible for any
order and EDF exhibits its classic overload domino (it keeps granting
slices to the most-imminent — hence most-doomed — request), so comparisons
there measure draining, not scheduling.

Reports, per policy: p50/p95/p99 latency, deadline-hit rate, completion /
partial / miss / shed counts.  JSON goes to
``benchmarks/results/bench_serving.json``.

A second, **multi-tenant** section replays a mixed FLIGHTS+POLICE trace at
1.5× overload through one ``SessionRegistry`` front door (requests routed
by dataset key, one shared clock and backend).  That is deep EDF-domino
territory, where the feasibility-aware ``edf-f`` policy — settle requests
whose lookahead estimate can no longer meet their deadline as immediate
partial answers — must hold at least EDF's hit rate.

Checks:

- a request served through the front door (no deadline) returns results
  byte-identical to a standalone ``run_approach`` execution — and, with
  ``--async``, so does one served through the asyncio ``AsyncFrontDoor``;
- under overload, EDF beats FIFO on deadline-hit rate (the classic
  single-server scheduling result, and PR 4's acceptance criterion);
- FIFO actually misses deadlines under overload (otherwise the comparison
  above is vacuous);
- in the multi-tenant run at ≥1.5× overload, ``edf-f``'s deadline-hit
  rate is at least EDF's (this PR's acceptance criterion).

Usage:

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --tiny --async  # CI
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import time

import numpy as np

from pathlib import Path

from common import RESULTS_DIR, format_table, save_report
from repro.cli import resolve_backend_args
from repro.data import load_dataset, workload_query
from repro.core.config import HistSimConfig
from repro.obs import TraceReader, TraceWriter, Tracer, summarize_records
from repro.obs.bench_history import BenchHistory, normalize_bench_serving
from repro.parallel import BACKENDS
from repro.serving import POLICIES, QueryRequest
from repro.system import MatchSession, SessionRegistry, run_approach

#: Queries cycled to fill the trace (all on FLIGHTS: one session serves it).
FLIGHTS_QUERIES = ("flights-q1", "flights-q2", "flights-q3", "flights-q4")

#: Tenants of the multi-tenant run (dataset -> its workload queries).
TENANTS = {
    "flights": FLIGHTS_QUERIES,
    "police": ("police-q1", "police-q2", "police-q3"),
}

#: Overload floor of the multi-tenant run: the regime where pure EDF
#: dominoes and feasibility shedding pays (ROADMAP: ≳1.5×).
MULTI_TENANT_OVERLOAD = 1.5

#: Deadline multiples of each query's *own* standalone service time: a
#: tight/medium/loose mix, so deadline-aware policies have something to
#: exploit.  Tight deadlines stay feasible when served promptly — deadlines
#: no schedule could meet only reward draining fast, not scheduling well.
DEADLINE_FACTORS = (1.5, 3.0, 10.0)


def config_for_query(query, rows: int) -> HistSimConfig:
    return HistSimConfig(
        k=query.k, epsilon=0.1, delta=0.01, sigma=0.0008,
        stage1_samples=min(50_000, max(1, rows // 20)),
    )


def calibrate_service_ns(
    tenants: dict, tables: dict, args
) -> dict[tuple[str, str], float]:
    """Standalone service time of every ``(dataset, query)`` of a mix."""
    service: dict[tuple[str, str], float] = {}
    for dataset_name, query_names in tenants.items():
        session = MatchSession(tables[dataset_name])
        for name in query_names:
            _, query = workload_query(name)
            prepared = session.prepared(query, seed=args.seed)
            report = run_approach(
                prepared, "fastmatch",
                config_for_query(query, tables[dataset_name].num_rows),
                seed=args.seed, audit=False,
            )
            service[(dataset_name, name)] = report.elapsed_ns
        session.close()
    return service


def build_trace(
    tenants: dict,
    tables: dict,
    service_ns: dict[tuple[str, str], float],
    args,
    *,
    overload: float,
    rng_seed: int,
    tag_dataset: bool,
) -> list[tuple[float, QueryRequest]]:
    """One fixed Poisson trace over a tenant mix, shared by every policy run.

    Interarrival times are exponential with rate ``overload / μ`` — i.e.
    work arrives ``overload``× faster than one server can drain it — and
    each request draws a deadline from the tight/medium/loose mix, scaled
    to its own query's service time.  ``tag_dataset`` stamps requests with
    their routing key (multi-tenant registry doors need it; the
    single-session door must not see one).
    """
    mix = [(ds, q) for ds, queries in tenants.items() for q in queries]
    mu_ns = float(np.mean([service_ns[key] for key in mix]))
    rng = np.random.default_rng(rng_seed)
    clock_ns = 0.0
    trace = []
    for i in range(args.requests):
        clock_ns += rng.exponential(mu_ns / overload)
        dataset_name, query_name = mix[i % len(mix)]
        _, query = workload_query(query_name)
        deadline = service_ns[(dataset_name, query_name)] * rng.choice(
            DEADLINE_FACTORS
        )
        trace.append(
            (
                clock_ns,
                QueryRequest(
                    query,
                    config=config_for_query(query, tables[dataset_name].num_rows),
                    seed=args.seed,
                    max_step_rows=args.max_step_rows,
                    deadline_ns=float(deadline),
                    on_deadline="partial",
                    name=f"{query_name}#{i}",
                    dataset=dataset_name if tag_dataset else None,
                ),
            )
        )
    return trace


def run_policy(table, policy: str, trace, args) -> dict:
    # Each policy replays under a metrics-sink tracer so the snapshot's
    # per-stage time budget (queue/step/settle/stage1-3 p50/p99) lands in
    # the benchmark JSON.  Tracing never changes answers or the simulated
    # timeline; the identity checks run untraced and guard exactly that.
    session = MatchSession(table, tracer=Tracer())
    door = session.serve(policy=policy, max_queue=args.max_queue)
    try:
        outcomes = door.replay(trace)
    finally:
        door.shutdown()
    snap = door.metrics.snapshot()
    achieved = [
        o.report.achieved_epsilon
        for o in outcomes
        if o.status == "partial" and o.report is not None
    ]
    return {
        "policy": policy,
        **snap.to_dict(),
        "mean_partial_achieved_epsilon": (
            float(np.mean(achieved)) if achieved else None
        ),
    }


def run_traced_export(table, trace, args, path: Path) -> dict:
    """Replay the single-tenant trace with JSONL export; validate the trace.

    This is the acceptance path for the trace file format: every line must
    round-trip through :class:`TraceReader` (schema validation on read),
    and the reconstructed per-stage budget's queue+step sums must tile each
    request's end-to-end latency within one clock tick.
    """
    tracer = Tracer()
    writer = TraceWriter(path)
    tracer.subscribe(writer)
    session = MatchSession(table, tracer=tracer)
    door = session.serve(policy="edf", max_queue=args.max_queue)
    try:
        outcomes = door.replay(trace)
    finally:
        door.shutdown()
        writer.close()
    summary = summarize_records(TraceReader(path).records())
    engine_served = sum(1 for o in outcomes if o.status != "shed")
    assert summary.requests == engine_served, (
        f"trace finalized {summary.requests} requests, engine served "
        f"{engine_served}"
    )
    tick = session.clock.resolution_ns
    assert summary.max_drift_ns <= tick, (
        f"queue+step spans drift {summary.max_drift_ns} ns from end-to-end "
        f"latency (> one {tick} ns clock tick)"
    )
    print(f"trace export: {writer.written} records -> {path} "
          f"(max tiling drift {summary.max_drift_ns:.0f} ns)")
    return {"path": str(path), "records": writer.written, **summary.to_dict()}


def run_multitenant_policy(tables: dict, policy: str, trace, args) -> dict:
    """One policy's replay of the mixed trace through a registry door."""
    registry = SessionRegistry()
    for dataset_name, table in tables.items():
        registry.add_dataset(dataset_name, table)
    door = registry.serve(policy=policy, max_queue=args.max_queue)
    try:
        outcomes = door.replay(trace)
    finally:
        door.shutdown()
    snap = door.metrics.snapshot()
    by_tenant = {
        ds: sum(1 for o in outcomes if o.name.split("-")[0] == ds)
        for ds in tables
    }
    return {"policy": policy, "per_tenant_requests": by_tenant, **snap.to_dict()}


def verify_async_front_door_identity(tables: dict, args) -> None:
    """One request per tenant through the AsyncFrontDoor == standalone."""

    async def drive():
        registry = SessionRegistry()
        for dataset_name, table in tables.items():
            registry.add_dataset(dataset_name, table)
        async with registry.serve_async(policy="edf-f") as door:
            handles = {}
            for dataset_name, query_names in TENANTS.items():
                _, query = workload_query(query_names[0])
                handles[dataset_name] = await door.submit(
                    QueryRequest(
                        query,
                        config=config_for_query(
                            query, tables[dataset_name].num_rows
                        ),
                        seed=args.seed,
                        dataset=dataset_name,
                    )
                )
            return {ds: await h.outcome() for ds, h in handles.items()}

    outcomes = asyncio.run(drive())
    for dataset_name, outcome in outcomes.items():
        _, query = workload_query(TENANTS[dataset_name][0])
        session = MatchSession(tables[dataset_name])
        standalone = run_approach(
            session.prepared(query, seed=args.seed), "fastmatch",
            config_for_query(query, tables[dataset_name].num_rows),
            seed=args.seed, audit=False,
        )
        session.close()
        assert outcome.status == "completed"
        assert outcome.report.result.matching == standalone.result.matching, (
            f"async front-door matching differs from standalone ({dataset_name})"
        )
        assert np.array_equal(
            outcome.report.result.histograms, standalone.result.histograms
        ), f"async front-door histograms differ from standalone ({dataset_name})"
        assert outcome.report.result.stats == standalone.result.stats, (
            f"async front-door sampling effort differs ({dataset_name})"
        )


def verify_front_door_identity(table, args) -> None:
    """A no-deadline request through the front door == standalone execution."""
    _, query = workload_query(FLIGHTS_QUERIES[0])
    config = config_for_query(query, table.num_rows)
    session = MatchSession(table)
    door = session.serve(policy="edf")
    (outcome,) = door.replay(
        [(0.0, QueryRequest(query, config=config, seed=args.seed))]
    )
    standalone = run_approach(
        session.prepared(query, seed=args.seed), "fastmatch", config,
        seed=args.seed, audit=False,
    )
    door.shutdown()
    assert outcome.status == "completed"
    assert outcome.report.result.matching == standalone.result.matching, (
        "front-door matching differs from standalone"
    )
    assert np.array_equal(
        outcome.report.result.histograms, standalone.result.histograms
    ), "front-door histograms differ from standalone"
    assert outcome.report.result.stats == standalone.result.stats, (
        "front-door sampling effort differs from standalone"
    )


def run_concurrent_steps(tables: dict, args) -> dict:
    """Wall-clock multi-tenant serving with 1 vs N step-execution slots.

    One ``SessionRegistry`` on a real :class:`WallClock` with the chosen
    execution backend; every tenant's prepared artifacts are warmed first,
    so the measured interval is step execution, not preparation.  The same
    request batch is then served through ``serve_async`` twice — classic
    inline single-slot, and ``--max-concurrent-steps`` executor slots — and
    wall latencies are compared.  Answers must be byte-identical across
    the two modes (concurrency shapes latency, never answers).
    """
    from repro.system.clock import WallClock

    mix = [(ds, q) for ds, queries in TENANTS.items() for q in queries]
    n_requests = min(args.requests, 4 * len(mix))
    modes = []
    matchings: dict[int, list] = {}
    for slots in sorted({1, args.max_concurrent_steps}):
        registry = SessionRegistry(
            backend=args.backend, workers=args.workers, clock=WallClock()
        )
        for dataset_name, table in tables.items():
            registry.add_dataset(dataset_name, table)
        for dataset_name, query_name in mix:
            _, query = workload_query(query_name)
            registry.session(dataset_name).prepared(query, seed=args.seed)

        async def drive():
            async with registry.serve_async(
                policy="fifo", max_concurrent_steps=slots
            ) as door:
                handles = []
                for i in range(n_requests):
                    dataset_name, query_name = mix[i % len(mix)]
                    _, query = workload_query(query_name)
                    handles.append(
                        await door.submit(
                            QueryRequest(
                                query,
                                config=config_for_query(
                                    query, tables[dataset_name].num_rows
                                ),
                                seed=args.seed,
                                max_step_rows=args.max_step_rows,
                                name=f"{query_name}#{i}",
                                dataset=dataset_name,
                            )
                        )
                    )
                return [await handle.outcome() for handle in handles]

        started = time.perf_counter()
        outcomes = asyncio.run(drive())
        makespan_s = time.perf_counter() - started
        assert all(o.status == "completed" for o in outcomes)
        matchings[slots] = [o.report.result.matching for o in outcomes]
        latencies_ms = np.array([o.latency_ms for o in outcomes])
        modes.append(
            {
                "slots": slots,
                "p50_latency_ms": float(np.percentile(latencies_ms, 50)),
                "p99_latency_ms": float(np.percentile(latencies_ms, 99)),
                "makespan_ms": makespan_s * 1e3,
            }
        )

    first = next(iter(matchings.values()))
    for slots, got in matchings.items():
        assert got == first, (
            f"answers changed under {slots} concurrent step slots"
        )
    inline, concurrent = modes[0], modes[-1]
    return {
        "backend": args.backend,
        "workers": args.workers,
        "max_concurrent_steps": args.max_concurrent_steps,
        "requests": n_requests,
        "cpu_count": os.cpu_count(),
        "modes": modes,
        "p99_speedup": inline["p99_latency_ms"] / concurrent["p99_latency_ms"],
        "makespan_speedup": inline["makespan_ms"] / concurrent["makespan_ms"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=1_000_000,
                        help="FLIGHTS dataset rows (default 1M)")
    parser.add_argument("--requests", type=int, default=120,
                        help="requests in the Poisson trace")
    parser.add_argument("--overload", type=float, default=1.25,
                        help="arrival rate as a multiple of service rate "
                             "(> 1 = overload; see module docstring)")
    parser.add_argument("--max-queue", type=int, default=8,
                        help="admission bound on requests in flight")
    parser.add_argument("--max-step-rows", type=int, default=5_000,
                        help="scheduler time-slice in rows")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke mode: small data, short trace")
    parser.add_argument("--async", dest="use_async", action="store_true",
                        help="also verify byte-identity through the "
                             "asyncio AsyncFrontDoor")
    parser.add_argument("--backend", choices=BACKENDS, default="serial",
                        help="execution backend of the wall-clock "
                             "concurrent-steps section")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for --backend sharded/threads "
                             "(ignored, with a warning, for serial)")
    parser.add_argument("--max-concurrent-steps", type=int, default=4,
                        help="step-execution slots of the concurrent mode "
                             "in the wall-clock section")
    parser.add_argument("--trace-out", type=Path, default=None,
                        help="also replay the single-tenant trace with JSONL "
                             "span export to this path, validating the "
                             "schema and the queue+step tiling invariant")
    args = parser.parse_args(argv)
    args.backend, args.workers, args.cpu_affinity = resolve_backend_args(args)
    if args.max_concurrent_steps < 1:
        parser.error("--max-concurrent-steps must be >= 1")

    if args.tiny:
        args.rows = 60_000
        args.requests = 64
        args.max_step_rows = 2_000
        args.max_queue = 8

    table = load_dataset("flights", rows=args.rows, seed=args.seed).table
    verify_front_door_identity(table, args)

    tables = {
        name: load_dataset(name, rows=args.rows, seed=args.seed).table
        for name in TENANTS
    }
    if args.use_async:
        verify_async_front_door_identity(tables, args)
        print("async front-door identity: ok")

    single_tenant = {"flights": FLIGHTS_QUERIES}
    service_ns = calibrate_service_ns(single_tenant, tables, args)
    mu_ns = float(np.mean(list(service_ns.values())))
    trace = build_trace(
        single_tenant, tables, service_ns, args,
        overload=args.overload, rng_seed=args.seed, tag_dataset=False,
    )

    mt_service_ns = calibrate_service_ns(TENANTS, tables, args)
    mt_mu_ns = float(np.mean(list(mt_service_ns.values())))
    mt_overload = max(args.overload, MULTI_TENANT_OVERLOAD)
    mt_trace = build_trace(
        TENANTS, tables, mt_service_ns, args,
        overload=mt_overload, rng_seed=args.seed + 1, tag_dataset=True,
    )

    concurrent = run_concurrent_steps(tables, args)

    trace_export = None
    if args.trace_out is not None:
        trace_export = run_traced_export(table, trace, args, args.trace_out)

    results = {
        "rows": table.num_rows,
        "requests": args.requests,
        "overload": args.overload,
        "max_queue": args.max_queue,
        "max_step_rows": args.max_step_rows,
        "backend": args.backend,
        "max_concurrent_steps": args.max_concurrent_steps,
        "mean_service_ms": mu_ns * 1e-6,
        "concurrent_steps": concurrent,
        "trace": trace_export,
        "policies": [run_policy(table, policy, trace, args) for policy in POLICIES],
        "multi_tenant": {
            "datasets": list(TENANTS),
            "overload": mt_overload,
            "mean_service_ms": mt_mu_ns * 1e-6,
            "policies": [
                run_multitenant_policy(tables, policy, mt_trace, args)
                for policy in POLICIES
            ],
        },
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_serving.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )
    # Every run also appends a normalized record to the append-only perf
    # history, so the regression gate (repro bench-history check) has a
    # trajectory to compare against instead of one overwritten JSON.
    BenchHistory(RESULTS_DIR / "history").append(
        normalize_bench_serving(results, note="tiny" if args.tiny else "")
    )

    def policy_rows(records):
        return [
            [
                r["policy"],
                r["completed"], r["partial"], r["missed"], r["shed"],
                f"{r['deadline_hit_rate'] * 100:.1f}%",
                f"{r['p50_latency_ms']:.2f}",
                f"{r['p95_latency_ms']:.2f}",
                f"{r['p99_latency_ms']:.2f}",
            ]
            for r in records
        ]

    columns = ["policy", "done", "part", "miss", "shed", "hit rate",
               "p50 ms", "p95 ms", "p99 ms"]
    save_report(
        "bench_serving",
        format_table(
            f"Serving under overload — {args.requests} Poisson arrivals at "
            f"{args.overload:.1f}x service rate, FLIGHTS mix "
            f"(mean service {mu_ns * 1e-6:.2f} ms, max_queue={args.max_queue})",
            columns,
            policy_rows(results["policies"]),
        )
        + "\n"
        + format_table(
            f"Multi-tenant ({'+'.join(TENANTS)}) — {args.requests} Poisson "
            f"arrivals at {mt_overload:.1f}x service rate through one "
            f"SessionRegistry front door "
            f"(mean service {mt_mu_ns * 1e-6:.2f} ms, max_queue={args.max_queue})",
            columns,
            policy_rows(results["multi_tenant"]["policies"]),
        )
        + "\n"
        + format_table(
            f"Per-stage time budget — span-fed sketches, by policy "
            f"(single-tenant trace)",
            ["policy", "stage", "count", "total ms", "p50 ms", "p99 ms", "rows"],
            [
                [
                    r["policy"],
                    stage,
                    budget["count"],
                    f"{budget['total_ms']:.2f}",
                    f"{budget['p50_ms']:.4f}",
                    f"{budget['p99_ms']:.4f}",
                    budget["rows"],
                ]
                for r in results["policies"]
                for stage, budget in r["per_stage"].items()
            ],
        )
        + "\n"
        + format_table(
            f"Concurrent step slots — {concurrent['requests']} wall-clock "
            f"requests, fifo, backend={args.backend} "
            f"({os.cpu_count()} cpu)",
            ["slots", "p50 ms", "p99 ms", "makespan ms"],
            [
                [
                    m["slots"],
                    f"{m['p50_latency_ms']:.1f}",
                    f"{m['p99_latency_ms']:.1f}",
                    f"{m['makespan_ms']:.1f}",
                ]
                for m in concurrent["modes"]
            ],
        ),
    )

    by_policy = {r["policy"]: r for r in results["policies"]}
    fifo, edf = by_policy["fifo"], by_policy["edf"]
    if fifo["deadline_hit_rate"] >= 1.0:
        print("ERROR: FIFO hit every deadline — the trace is not an overload")
        return 1
    if edf["deadline_hit_rate"] < fifo["deadline_hit_rate"]:
        print(
            "ERROR: EDF deadline-hit rate "
            f"({edf['deadline_hit_rate']:.3f}) below FIFO "
            f"({fifo['deadline_hit_rate']:.3f}) under overload"
        )
        return 1

    mt_by_policy = {r["policy"]: r for r in results["multi_tenant"]["policies"]}
    mt_edf, mt_edff = mt_by_policy["edf"], mt_by_policy["edf-f"]
    if mt_edff["deadline_hit_rate"] < mt_edf["deadline_hit_rate"]:
        print(
            "ERROR: multi-tenant edf-f deadline-hit rate "
            f"({mt_edff['deadline_hit_rate']:.3f}) below EDF "
            f"({mt_edf['deadline_hit_rate']:.3f}) at "
            f"{mt_overload:.1f}x overload"
        )
        return 1
    print(
        f"multi-tenant at {mt_overload:.1f}x overload: edf-f hit rate "
        f"{mt_edff['deadline_hit_rate']:.3f} >= edf "
        f"{mt_edf['deadline_hit_rate']:.3f}"
    )

    print(
        f"concurrent steps ({args.backend}, "
        f"{args.max_concurrent_steps} slots): p99 speedup "
        f"{concurrent['p99_speedup']:.2f}x, makespan speedup "
        f"{concurrent['makespan_speedup']:.2f}x"
    )
    if (os.cpu_count() or 1) >= 2:
        # No-regression gate (CI): on a multi-core host, concurrent slots
        # must not make multi-tenant tail latency meaningfully worse.  On a
        # single core the GIL serializes tiny steps anyway; the numbers are
        # recorded but not asserted.
        inline_p99 = concurrent["modes"][0]["p99_latency_ms"]
        concurrent_p99 = concurrent["modes"][-1]["p99_latency_ms"]
        if concurrent_p99 > inline_p99 * 1.5:
            print(
                "ERROR: concurrent-step p99 "
                f"({concurrent_p99:.1f} ms) regressed past 1.5x the inline "
                f"p99 ({inline_p99:.1f} ms) on a multi-core host"
            )
            return 1
        if args.backend != "serial" and args.max_concurrent_steps > 1:
            # Speedup gate: with a GIL-releasing backend and multiple step
            # slots on real cores, concurrency must actually buy something —
            # either tail latency or makespan improves.  A run where both
            # speedups sit at or below 1.0x means offloading broke.
            best = max(concurrent["p99_speedup"], concurrent["makespan_speedup"])
            if best <= 1.0:
                print(
                    "ERROR: no measured speedup from "
                    f"{args.max_concurrent_steps} step slots on "
                    f"{os.cpu_count()} cores (p99 "
                    f"{concurrent['p99_speedup']:.2f}x, makespan "
                    f"{concurrent['makespan_speedup']:.2f}x) — "
                    "concurrent offloading is not helping"
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
