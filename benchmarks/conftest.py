"""Benchmark-suite configuration: cached sweeps shared across bench modules."""

from __future__ import annotations

import numpy as np
import pytest

from common import RUN_SEEDS, SWEEP_APPROACHES, get_prepared, config_for
from repro.core.guarantees import delta_d
from repro.data import QUERY_NAMES
from repro.system import run_approach

#: ε values swept by Figures 8 and 9 (subset of the paper's 0.02…0.11 grid,
#: chosen so the full sweep stays laptop-friendly).
EPSILON_GRID = (0.04, 0.06, 0.08, 0.10, 0.11)

_sweep_cache: dict = {}


def epsilon_sweep() -> dict:
    """Run (once per session) the ε sweep behind Figures 8 and 9.

    Returns {query: {approach: [(eps, seconds, delta_d), ...]}}.
    """
    if "eps" in _sweep_cache:
        return _sweep_cache["eps"]
    results: dict = {}
    for query_name in QUERY_NAMES:
        prepared = get_prepared(query_name)
        per_approach: dict = {}
        for approach in SWEEP_APPROACHES[query_name]:
            series = []
            for eps in EPSILON_GRID:
                config = config_for(prepared.query.k, epsilon=eps)
                report = run_approach(
                    prepared, approach, config, seed=RUN_SEEDS[0], audit=False
                )
                dd = delta_d(
                    np.asarray(report.result.matching),
                    prepared.exact_counts,
                    prepared.target,
                    prepared.query.k,
                    config.sigma,
                )
                series.append((eps, report.elapsed_seconds, dd))
            per_approach[approach] = series
        results[query_name] = per_approach
    _sweep_cache["eps"] = results
    return results


@pytest.fixture(scope="session")
def eps_sweep_results():
    return epsilon_sweep()
