"""Figures 2 and 3 — the metric-choice motivation, regenerated as data.

Figure 2: on a FLIGHTS departure-hour query, the runner-up under L1 differs
from the runner-up under L2; L2's pick is dragged by a few large per-bin
deviations even when the overall shape is less similar.

Figure 3: a histogram identical to another up to scale looks "very far"
before normalization and identical after — the reason Definition 2
normalizes before measuring distance.
"""

from __future__ import annotations

import numpy as np

from common import format_table, get_prepared, save_report
from repro.core.distance import l1_distance, l2_distance, normalize
from repro.data.flights import ORD


def _run_metric_motivation() -> dict:
    prepared = get_prepared("flights-q1")
    counts = prepared.exact_counts.astype(np.float64)
    target = prepared.target
    rows = counts.sum(axis=1)
    eligible = (rows > 0) & (np.arange(counts.shape[0]) != ORD)

    r_bar = normalize(counts)
    q_bar = normalize(target)
    l1 = np.abs(r_bar - q_bar[None, :]).sum(axis=1)
    l2 = np.sqrt(np.square(r_bar - q_bar[None, :]).sum(axis=1))
    l1 = np.where(eligible, l1, np.inf)
    l2 = np.where(eligible, l2, np.inf)

    runner_up_l1 = int(np.argmin(l1))
    runner_up_l2 = int(np.argmin(l2))

    # Figure 3: a scaled copy of the target histogram.
    scaled = 0.013 * target
    pre_normalization = float(np.abs(scaled - target).sum() / target.sum())
    post_normalization = l1_distance(scaled, target)

    return {
        "runner_up_l1": runner_up_l1,
        "runner_up_l2": runner_up_l2,
        "l1_of_l1_pick": float(l1[runner_up_l1]),
        "l1_of_l2_pick": float(l1[runner_up_l2]),
        "l2_of_l1_pick": float(l2[runner_up_l1]),
        "l2_of_l2_pick": float(l2[runner_up_l2]),
        "pre_normalization": pre_normalization,
        "post_normalization": post_normalization,
    }


def bench_fig2_fig3(benchmark):
    r = benchmark.pedantic(_run_metric_motivation, rounds=1, iterations=1)

    rows = [
        ["runner-up under L1", f"APT{r['runner_up_l1']:03d}",
         f"{r['l1_of_l1_pick']:.4f}", f"{r['l2_of_l1_pick']:.4f}"],
        ["runner-up under L2", f"APT{r['runner_up_l2']:03d}",
         f"{r['l1_of_l2_pick']:.4f}", f"{r['l2_of_l2_pick']:.4f}"],
    ]
    fig2 = format_table(
        "Figure 2 — closest non-target airport to ORD under each metric",
        ["pick", "airport", "L1 distance", "L2 distance"], rows,
    )
    fig3 = format_table(
        "Figure 3 — scaled-identical histogram, pre vs post normalization",
        ["quantity", "L1 distance"],
        [
            ["pre-normalization (relative)", f"{r['pre_normalization']:.4f}"],
            ["post-normalization", f"{r['post_normalization']:.6f}"],
        ],
    )
    save_report("fig2_fig3_metric_motivation", fig2 + "\n\n" + fig3)

    # Figure 3's point: identical shape, huge pre-normalization gap.
    assert r["post_normalization"] < 1e-9
    assert r["pre_normalization"] > 0.9
    # Each metric prefers its own pick (they may or may not coincide; the
    # L1 distance of L2's pick can only be >= that of L1's own pick).
    assert r["l1_of_l2_pick"] >= r["l1_of_l1_pick"] - 1e-12
    assert r["l2_of_l1_pick"] >= r["l2_of_l2_pick"] - 1e-12
