"""Table 5 — comparing top-k sets under normalized L1 vs L2 (paper §5.4).

The paper validates its choice of L1 by showing the exact top-k under the
two metrics mostly coincide on the FLIGHTS queries: overlap ≥ 60% and the
relative difference in total L1 distance ≤ 4%.
"""

from __future__ import annotations

import numpy as np

from common import format_table, get_prepared, save_report
from repro.core.distance import normalize

FLIGHTS_QUERIES = ("flights-q1", "flights-q2", "flights-q3", "flights-q4")

#: Paper Table 5 (overlap fraction, relative distance difference).
PAPER_TABLE5 = {
    "flights-q1": (0.9, 0.01),
    "flights-q2": (0.7, 0.04),
    "flights-q3": (0.6, 0.03),
    "flights-q4": (0.8, 0.01),
}


def _top_k(distances: np.ndarray, eligible: np.ndarray, k: int) -> np.ndarray:
    masked = np.where(eligible, distances, np.inf)
    return np.argsort(masked, kind="stable")[:k]


def _run_table5() -> dict:
    results = {}
    for query_name in FLIGHTS_QUERIES:
        prepared = get_prepared(query_name)
        k = prepared.query.k
        counts = prepared.exact_counts.astype(np.float64)
        rows = counts.sum(axis=1)
        eligible = rows > 0
        r_bar = normalize(counts)
        q_bar = normalize(prepared.target)
        l1 = np.abs(r_bar - q_bar[None, :]).sum(axis=1)
        l2 = np.sqrt(np.square(r_bar - q_bar[None, :]).sum(axis=1))

        top_l1 = _top_k(l1, eligible, k)
        top_l2 = _top_k(l2, eligible, k)
        overlap = len(set(top_l1.tolist()) & set(top_l2.tolist())) / k
        rel_diff = (l1[top_l2].sum() - l1[top_l1].sum()) / l1[top_l1].sum()
        results[query_name] = (overlap, rel_diff)
    return results


def bench_table5(benchmark):
    results = benchmark.pedantic(_run_table5, rounds=1, iterations=1)

    headers = ["query", "overlap", "rel. L1 diff", "paper overlap", "paper diff"]
    rows = []
    for query_name in FLIGHTS_QUERIES:
        overlap, rel_diff = results[query_name]
        p_overlap, p_diff = PAPER_TABLE5[query_name]
        rows.append([
            query_name, f"{overlap:.2f}", f"{rel_diff:.3f}",
            f"{p_overlap:.2f}", f"{p_diff:.2f}",
        ])
    save_report(
        "table5_l1_vs_l2",
        format_table("Table 5 — exact top-k under L1 vs L2", headers, rows),
    )
    benchmark.extra_info["table5"] = {q: results[q] for q in FLIGHTS_QUERIES}

    # Paper's qualitative claims: strong overlap, tiny relative difference.
    for query_name in FLIGHTS_QUERIES:
        overlap, rel_diff = results[query_name]
        assert overlap >= 0.6, f"{query_name}: L1/L2 top-k overlap below paper range"
        assert rel_diff <= 0.05, f"{query_name}: relative L1 difference above 5%"
