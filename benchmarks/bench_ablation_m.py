"""Section 3.3's footnote on the stage-1 sample size m.

"Our results are not sensitive to the choice of m, provided m is not too
small (so that the algorithm fails to prune anything) or too big (i.e., a
nontrivial fraction of the data)."  We sweep m on taxi-q1 — the query where
pruning matters most — and record pruning power and end-to-end latency.
"""

from __future__ import annotations

from common import RUN_SEEDS, config_for, format_table, get_prepared, save_report
from repro.system import run_approach

M_GRID = (2_000, 10_000, 50_000, 200_000)


def _run_m_sweep() -> dict:
    prepared = get_prepared("taxi-q1")
    results = {}
    for m in M_GRID:
        config = config_for(prepared.query.k, stage1_samples=m, stage1_max_fraction=0.5)
        report = run_approach(prepared, "fastmatch", config, seed=RUN_SEEDS[0])
        results[m] = {
            "seconds": report.elapsed_seconds,
            "pruned": report.result.stats.pruned_candidates,
            "audit_ok": report.audit.ok,
        }
    return results


def bench_ablation_m(benchmark):
    results = benchmark.pedantic(_run_m_sweep, rounds=1, iterations=1)

    headers = ["m", "simulated s", "pruned candidates", "guarantees"]
    rows = [
        [
            f"{m:,}",
            f"{results[m]['seconds']:.4f}",
            str(results[m]["pruned"]),
            "OK" if results[m]["audit_ok"] else "VIOLATED",
        ]
        for m in M_GRID
    ]
    save_report(
        "ablation_m",
        format_table("Ablation — stage-1 sample count m (taxi-q1, FastMatch)", headers, rows),
    )

    # Guarantees hold at every m (pruning affects performance, not safety).
    assert all(results[m]["audit_ok"] for m in M_GRID)
    # Pruning power grows with m...
    pruned = [results[m]["pruned"] for m in M_GRID]
    assert pruned[0] < pruned[-1]
    # ...and the mid-range default resolves most of the rare tail.
    assert results[50_000]["pruned"] > 5000
    # Latency at the default is within 2x of the best m in the sweep
    # (the footnote's insensitivity claim).
    best = min(results[m]["seconds"] for m in M_GRID)
    assert results[50_000]["seconds"] <= 2.0 * best
