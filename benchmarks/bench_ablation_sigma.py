"""Section 5.4, "When approximation performs poorly" — the σ = 0 ablation.

With no selectivity threshold, stages 2 and 3 must consider thousands of
extremely rare taxi locations: ScanMatch degenerates toward a full pass and
AnyActive-based approaches lose their ability to skip (nearly every block
contains some needed rare candidate) while paying full block-selection
overhead.  Stage-1 pruning is what makes the taxi queries tractable.
"""

from __future__ import annotations

from common import RUN_SEEDS, config_for, format_table, get_prepared, save_report
from repro.system import run_approach

QUERIES = ("taxi-q1", "taxi-q2")
APPROACHES = ("scanmatch", "fastmatch")


def _run_sigma_ablation() -> dict:
    results = {}
    for query_name in QUERIES:
        prepared = get_prepared(query_name)
        scan = run_approach(
            prepared, "scan", config_for(prepared.query.k), seed=RUN_SEEDS[0]
        )
        for sigma in (0.0008, 0.0):
            config = config_for(prepared.query.k, sigma=sigma)
            for approach in APPROACHES:
                report = run_approach(
                    prepared, approach, config, seed=RUN_SEEDS[0], audit=False
                )
                results[(query_name, sigma, approach)] = {
                    "speedup": scan.elapsed_ns / report.elapsed_ns,
                    "pruned": report.result.stats.pruned_candidates,
                    "rows_read": report.counters["rows_delivered"],
                }
    return results


def bench_ablation_sigma(benchmark):
    results = benchmark.pedantic(_run_sigma_ablation, rounds=1, iterations=1)

    headers = ["query", "sigma", "approach", "speedup", "pruned", "rows read"]
    rows = [
        [
            q, f"{sigma:g}", approach,
            f"{entry['speedup']:.2f}x",
            str(entry["pruned"]),
            f"{entry['rows_read']:,}",
        ]
        for (q, sigma, approach), entry in results.items()
    ]
    save_report(
        "ablation_sigma",
        format_table("Ablation — selectivity threshold sigma (taxi queries)", headers, rows),
    )

    for query_name in QUERIES:
        with_sigma = results[(query_name, 0.0008, "fastmatch")]
        without = results[(query_name, 0.0, "fastmatch")]
        # Stage-1 pruning is critical (paper: performance degrades badly
        # at sigma = 0, which forces consideration of thousands of rare
        # candidates).
        assert with_sigma["pruned"] > 3000
        assert without["pruned"] == 0
        assert with_sigma["speedup"] > 2 * without["speedup"], (
            f"{query_name}: sigma pruning should be the difference between "
            f"interactive and degenerate"
        )
        # Without sigma the approximate approach reads essentially all data.
        prepared = get_prepared(query_name)
        assert without["rows_read"] > 0.9 * prepared.shuffled.num_rows
