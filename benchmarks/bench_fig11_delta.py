"""Figure 11 — effect of δ on wall-clock time (paper §5.4).

Paper claims: "increasing δ led to slight decreases in wall clock time,
leaving accuracy more or less constant ... behavior inherited from the
bound in Theorem 1, which is not sensitive to changes in δ."
"""

from __future__ import annotations

import numpy as np

from common import (
    RUN_SEEDS,
    SWEEP_APPROACHES,
    config_for,
    format_table,
    get_prepared,
    save_report,
)
from repro.data import QUERY_NAMES
from repro.system import run_approach

DELTA_GRID = (0.002, 0.01, 0.02)


def _run_delta_sweep() -> dict:
    results = {}
    for query_name in QUERY_NAMES:
        prepared = get_prepared(query_name)
        per_approach = {}
        for approach in SWEEP_APPROACHES[query_name]:
            series = []
            for delta in DELTA_GRID:
                config = config_for(prepared.query.k, delta=delta)
                report = run_approach(
                    prepared, approach, config, seed=RUN_SEEDS[0], audit=False
                )
                series.append(report.elapsed_seconds)
            per_approach[approach] = series
        results[query_name] = per_approach
    return results


def bench_fig11(benchmark):
    results = benchmark.pedantic(_run_delta_sweep, rounds=1, iterations=1)

    headers = ["query", "approach"] + [f"delta={d:g}" for d in DELTA_GRID]
    rows = []
    for query_name in QUERY_NAMES:
        for approach in SWEEP_APPROACHES[query_name]:
            rows.append(
                [query_name, approach]
                + [f"{s:.4f}" for s in results[query_name][approach]]
            )
    save_report(
        "fig11_delta",
        format_table("Figure 11 — wall time (simulated s) vs delta", headers, rows),
    )

    # Theorem 1 is log(1/delta)-sensitive only: a 10x delta change moves
    # latency mildly (the paper: "slight decreases"), with occasional
    # round-boundary bumps — exactly what the paper's own bars show.
    for query_name in QUERY_NAMES:
        for approach in SWEEP_APPROACHES[query_name]:
            series = np.asarray(results[query_name][approach])
            # Trend direction: tighter delta never cheaper (up to noise).
            assert series[0] >= series[-1] * 0.85, (
                f"{query_name}/{approach}: latency fell as delta tightened"
            )
        # The headline approach stays in the mild-sensitivity regime.
        fast = np.asarray(results[query_name]["fastmatch"])
        spread = (fast.max() - fast.min()) / fast.mean()
        assert spread < 0.5, (
            f"{query_name}/fastmatch: latency too sensitive to delta "
            f"(spread {spread:.2f})"
        )
