"""Section 5.4's guarantee audit: "the output of FastMatch and all
approximate variants satisfied Guarantees 1 and 2 across all runs for all
queries", suggesting δ is a loose upper bound on the failure probability.

Runs every query with FastMatch across several seeds, counts violations,
and records Δd (which the paper reports never exceeded 5% of optimal).
"""

from __future__ import annotations

import numpy as np

from common import config_for, format_table, get_prepared, save_report
from repro.system import run_approach
from repro.data import QUERY_NAMES

AUDIT_SEEDS = tuple(range(5))


def _run_audits() -> dict:
    results = {}
    for query_name in QUERY_NAMES:
        prepared = get_prepared(query_name)
        config = config_for(prepared.query.k)
        violations = 0
        delta_ds = []
        for seed in AUDIT_SEEDS:
            report = run_approach(prepared, "fastmatch", config, seed=seed)
            if not report.audit.ok:
                violations += 1
            delta_ds.append(report.audit.delta_d)
        results[query_name] = {
            "violations": violations,
            "runs": len(AUDIT_SEEDS),
            "mean_delta_d": float(np.mean(delta_ds)),
            "max_delta_d": float(np.max(delta_ds)),
        }
    return results


def bench_guarantees(benchmark):
    results = benchmark.pedantic(_run_audits, rounds=1, iterations=1)

    headers = ["query", "violations", "runs", "mean delta_d", "max delta_d"]
    rows = [
        [
            q,
            str(results[q]["violations"]),
            str(results[q]["runs"]),
            f"{results[q]['mean_delta_d']:+.4f}",
            f"{results[q]['max_delta_d']:+.4f}",
        ]
        for q in QUERY_NAMES
    ]
    save_report(
        "guarantee_audit",
        format_table(
            "Guarantee audit — FastMatch, delta = 0.01 (paper: zero violations)",
            headers, rows,
        ),
    )
    benchmark.extra_info["audits"] = results

    total_runs = sum(results[q]["runs"] for q in QUERY_NAMES)
    total_violations = sum(results[q]["violations"] for q in QUERY_NAMES)
    # delta = 0.01 bounds the failure rate; the paper observed none at all.
    assert total_violations <= max(1, int(0.02 * total_runs)), (
        f"{total_violations} violations in {total_runs} runs"
    )
    for query_name in QUERY_NAMES:
        assert results[query_name]["max_delta_d"] <= 0.05, (
            f"{query_name}: delta_d exceeded the paper's 5% envelope"
        )
