"""Concurrent-session throughput — the MatchSession serving layer.

Not a paper figure: this benchmark exercises the multi-query architecture
layered on the reproduction (resumable HistSim stepper + round-robin
scheduler + shared prepared-artifact cache).  It sweeps the number of
concurrent queries interleaved through one MatchSession over the FLIGHTS
dataset and reports aggregate throughput, per-query latency, and cache
reuse.

Checks:

- at >= 8 concurrent queries the session reports prepared-artifact cache
  hits (shuffle/index/ground-truth shared across queries);
- every interleaved query's MatchResult is identical to a standalone
  ``run_approach`` execution with the same prepared query, config, and
  seed — interleaving changes only when work happens, never what is
  sampled.
"""

from __future__ import annotations

import numpy as np

from common import BENCH_ROWS, BENCH_SEED, config_for, format_table, save_report
from repro.data import load_dataset, workload_query
from repro.system import MatchSession, run_approach

#: Queries cycled to fill each concurrency level (all on FLIGHTS, so one
#: session serves them; q1/q2 share a template, q3/q4 add new groupings).
FLIGHTS_QUERIES = ("flights-q1", "flights-q2", "flights-q3", "flights-q4")

CONCURRENCY_GRID = (1, 2, 4, 8, 16)

#: Concurrency level at which per-query results are checked against
#: standalone runs (once — the property is independent of n).
VERIFY_AT = 8


def _submit_mix(session: MatchSession, n: int) -> list:
    """Submit ``n`` queries cycling through the flights workload mix."""
    submitted = []
    for i in range(n):
        query_name = FLIGHTS_QUERIES[i % len(FLIGHTS_QUERIES)]
        _, query = workload_query(query_name)
        config = config_for(query.k)
        session.submit(
            query,
            approach="fastmatch",
            config=config,
            seed=BENCH_SEED,
            name=f"{query_name}#{i}",
        )
        submitted.append((query, config))
    return submitted


def _run_concurrency_sweep() -> dict:
    dataset = load_dataset("flights", rows=BENCH_ROWS, seed=BENCH_SEED)
    results = {}
    for n in CONCURRENCY_GRID:
        session = MatchSession(dataset.table)
        submitted = _submit_mix(session, n)
        run = session.run()
        assert len(run) == n

        if n == VERIFY_AT:
            for outcome, (query, config) in zip(run, submitted):
                prepared = session.prepared(query, seed=BENCH_SEED)
                standalone = run_approach(
                    prepared, "fastmatch", config, seed=BENCH_SEED, audit=False
                )
                assert outcome.report.result.matching == standalone.result.matching, (
                    f"{outcome.name}: interleaved matching differs from standalone"
                )
                assert np.array_equal(
                    outcome.report.result.histograms, standalone.result.histograms
                ), f"{outcome.name}: interleaved histograms differ from standalone"
                assert outcome.report.result.stats == standalone.result.stats, (
                    f"{outcome.name}: interleaved sampling effort differs"
                )

        results[n] = {
            "throughput_qps": run.throughput_qps,
            "elapsed_s": run.elapsed_seconds,
            "mean_latency_s": run.mean_latency_seconds,
            "mean_service_s": float(
                np.mean([o.service_seconds for o in run])
            ),
            "cache_hits": session.cache_hits,
            "cache": session.cache_stats.summary(),
            "audits_ok": all(
                o.report.audit is not None and o.report.audit.ok for o in run
            ),
        }
    return results


def _report(results: dict) -> str:
    headers = ["n", "throughput q/s", "mean latency s", "mean service s",
               "cache hits", "audits"]
    rows = [
        [
            n,
            f"{r['throughput_qps']:.1f}",
            f"{r['mean_latency_s']:.4f}",
            f"{r['mean_service_s']:.4f}",
            r["cache_hits"],
            "OK" if r["audits_ok"] else "VIOLATED",
        ]
        for n, r in results.items()
    ]
    return format_table(
        "Concurrent sessions — throughput vs interleaved queries (FLIGHTS mix)",
        headers,
        rows,
    )


def _check(results: dict) -> None:
    # The serving layer must actually share artifacts once queries overlap...
    for n, r in results.items():
        if n >= 2:
            assert r["cache_hits"] > 0, f"n={n}: expected prepared-artifact reuse"
    # ...and interleaving must not break the statistical machinery.
    assert all(r["audits_ok"] for r in results.values())
    assert max(results) >= 8, "sweep must cover >= 8 interleaved queries"


def bench_concurrent_sessions(benchmark):
    results = benchmark.pedantic(_run_concurrency_sweep, rounds=1, iterations=1)
    save_report("concurrent_sessions", _report(results))
    benchmark.extra_info["concurrency"] = {
        n: r["throughput_qps"] for n, r in results.items()
    }
    _check(results)


if __name__ == "__main__":
    sweep = _run_concurrency_sweep()
    save_report("concurrent_sessions", _report(sweep))
    _check(sweep)
