"""Parallel scaling: threads-vs-sharded-vs-serial speedup by worker count.

Unlike the paper-reproduction benchmarks (which report *simulated* latency
from the cost model), this benchmark measures **real wall-clock time** of
the counting work the parallel backends parallelize: full
uniform-without-replacement passes over a shuffled table, i.e. the gather +
filter + bincount pipeline that dominates sampling cost at scale.  Two
datasets are swept — a 10M-row synthetic built straight from
``repro.data.generator`` and the TAXI evaluation dataset — across worker
counts for **both** parallel backends (``sharded`` process pool over
/dev/shm, ``threads`` GIL-releasing in-process executor), verifying on
every run that the parallel counts are byte-identical to serial.

Results go to ``benchmarks/results/parallel_scaling.json`` (including each
run's backend descriptor) and a text table.

Speedup requires physical cores: on a single-core machine the sharded
backend can only add IPC overhead, and the report will say so.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --tiny   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from common import RESULTS_DIR, format_table, save_report
from repro.bitmap.builder import build_bitmap_index
from repro.obs.bench_history import BenchHistory, normalize_parallel_scaling
from repro.data import load_dataset, sizes_from_weights, zipf_weights
from repro.data.generator import conditional_column, jittered
from repro.parallel import (
    ExecutionBackend,
    SerialBackend,
    ShardedBackend,
    ThreadPoolBackend,
)
from repro.parallel.sharded import DEFAULT_MIN_SHARD_ROWS
from repro.sampling.engine import BlockSamplingEngine
from repro.sampling.policies import ScanAllPolicy
from repro.storage.cost_model import DEFAULT_COST_MODEL
from repro.storage.schema import CategoricalAttribute, Schema
from repro.storage.shuffle import shuffle_table
from repro.storage.table import ColumnTable
from repro.system.clock import SimulatedClock

GENERATOR_CANDIDATES = 64
GENERATOR_GROUPS = 24


def generator_table(rows: int, seed: int) -> ColumnTable:
    """A synthetic (z, x) table built directly from the generator helpers."""
    rng = np.random.default_rng(seed)
    sizes = sizes_from_weights(
        zipf_weights(GENERATOR_CANDIDATES, alpha=1.0), rows, rng
    )
    base = np.full(GENERATOR_GROUPS, 1.0 / GENERATOR_GROUPS)
    distributions = np.stack(
        [jittered(base, concentration=50.0, rng=rng) for _ in range(sizes.size)]
    )
    z = np.repeat(np.arange(sizes.size, dtype=np.int64), sizes)
    x = conditional_column(sizes, distributions, rng)
    schema = Schema(
        (
            CategoricalAttribute(
                "z", tuple(f"Z{i:03d}" for i in range(GENERATOR_CANDIDATES))
            ),
            CategoricalAttribute(
                "x", tuple(f"X{i:03d}" for i in range(GENERATOR_GROUPS))
            ),
        )
    )
    return ColumnTable(schema, {"z": z, "x": x})


def counting_pass(
    shuffled, z_name: str, x_name: str, index, window_blocks: int,
    backend: ExecutionBackend,
) -> tuple[float, np.ndarray]:
    """One full sampling pass (every row delivered); returns (seconds, counts)."""
    engine = BlockSamplingEngine(
        shuffled=shuffled,
        candidate_attribute=z_name,
        grouping_attribute=x_name,
        index=index,
        cost_model=DEFAULT_COST_MODEL,
        clock=SimulatedClock(),
        policy=ScanAllPolicy(),
        window_blocks=window_blocks,
        start_block=0,
        backend=backend,
    )
    budgets = np.full(engine.num_candidates, np.inf)
    start = time.perf_counter()
    counts = engine.sample_until(budgets)
    return time.perf_counter() - start, counts


def bench_dataset(
    name: str,
    table: ColumnTable,
    z_name: str,
    x_name: str,
    args: argparse.Namespace,
) -> dict:
    """Sweep worker counts on one dataset; verify identity; return results."""
    shuffled = shuffle_table(table, args.block_size, np.random.default_rng(11))
    index = build_bitmap_index(shuffled, z_name)
    window_blocks = max(1, shuffled.num_blocks // args.windows_per_pass)

    def measure(backend: ExecutionBackend) -> tuple[float, np.ndarray]:
        seconds, counts = [], None
        for _ in range(args.passes):
            elapsed, counts = counting_pass(
                shuffled, z_name, x_name, index, window_blocks, backend
            )
            seconds.append(elapsed)
        return min(seconds), counts

    serial_s, serial_counts = measure(SerialBackend())
    factories = {"sharded": ShardedBackend, "threads": ThreadPoolBackend}
    runs = []
    for workers in args.workers:
        for backend_name, factory in factories.items():
            backend = factory(workers, min_shard_rows=args.min_shard_rows)
            try:
                parallel_s, parallel_counts = measure(backend)
                identical = bool(np.array_equal(serial_counts, parallel_counts))
                runs.append(
                    {
                        "backend_name": backend_name,
                        "workers": workers,
                        "seconds": parallel_s,
                        "speedup": (
                            serial_s / parallel_s if parallel_s > 0 else float("inf")
                        ),
                        "identical_to_serial": identical,
                        "backend": backend.describe(),
                    }
                )
            finally:
                backend.close()
    return {
        "dataset": name,
        "rows": table.num_rows,
        "blocks": shuffled.num_blocks,
        "block_size": args.block_size,
        "passes": args.passes,
        "serial_seconds": serial_s,
        "runs": runs,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=10_000_000,
                        help="generator dataset rows (default 10M)")
    parser.add_argument("--taxi-rows", type=int, default=None,
                        help="taxi dataset rows (default min(rows, 2M))")
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                        help="worker counts to sweep")
    parser.add_argument("--block-size", type=int, default=4096,
                        help="tuples per block (larger than the simulation "
                             "default: real counting throughput, not block "
                             "mechanics, is under test)")
    parser.add_argument("--passes", type=int, default=3,
                        help="passes per configuration (best-of)")
    parser.add_argument("--windows-per-pass", type=int, default=8,
                        help="windows one pass is split into")
    parser.add_argument("--min-shard-rows", type=int, default=None,
                        help="override the sharded backend's inline-fallback "
                             "threshold")
    parser.add_argument("--max-concurrent-steps", type=int, default=1,
                        help="recorded in the JSON schema: the serving-layer "
                             "step-slot count these backend numbers pair "
                             "with (see bench_serving.py)")
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke mode: small data, forced pool usage")
    args = parser.parse_args(argv)

    if args.tiny:
        args.rows = 40_000
        args.taxi_rows = 350_000  # the TAXI builder's minimum scale
        args.workers = [1, 2]
        args.block_size = 512
        args.passes = 1
        # Force every window through the pool so CI exercises the real path.
        args.min_shard_rows = 0
    if args.min_shard_rows is None:
        args.min_shard_rows = DEFAULT_MIN_SHARD_ROWS
    if args.taxi_rows is None:
        args.taxi_rows = min(args.rows, 2_000_000)

    datasets = [
        ("generator", generator_table(args.rows, seed=7), "z", "x"),
        ("taxi", load_dataset("taxi", rows=args.taxi_rows, seed=7).table,
         "location", "hour_of_day"),
    ]

    results = {
        "cpu_count": os.cpu_count(),
        "tiny": args.tiny,
        "max_concurrent_steps": args.max_concurrent_steps,
        "datasets": [],
    }
    rows_out = []
    all_identical = True
    for name, table, z_name, x_name in datasets:
        entry = bench_dataset(name, table, z_name, x_name, args)
        results["datasets"].append(entry)
        rows_out.append(
            [name, f"{entry['rows']:,}", "serial", f"{entry['serial_seconds']:.3f}",
             "1.00x", "-"]
        )
        for run in entry["runs"]:
            all_identical &= run["identical_to_serial"]
            rows_out.append(
                [name, f"{entry['rows']:,}",
                 f"{run['backend_name']}({run['workers']}w)",
                 f"{run['seconds']:.3f}", f"{run['speedup']:.2f}x",
                 "yes" if run["identical_to_serial"] else "NO"]
            )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "parallel_scaling.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )
    # Append the normalized record to the perf history for the regression
    # gate; wall_* metrics only ever compare against same-host baselines.
    BenchHistory(RESULTS_DIR / "history").append(
        normalize_parallel_scaling(results, note="tiny" if args.tiny else "")
    )
    note = (
        f"cpu_count={os.cpu_count()}"
        + ("  (single core: sharding can only add overhead here)"
           if (os.cpu_count() or 1) < 2 else "")
    )
    table_text = format_table(
        f"Parallel scaling — wall-clock counting passes ({note})",
        ["dataset", "rows", "backend", "best s", "speedup", "identical"],
        rows_out,
    )
    save_report("parallel_scaling", table_text)
    if not all_identical:
        print("ERROR: parallel counts diverged from serial")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
