"""Table 4 — average query speedups over the exact Scan (paper Section 5.4).

Regenerates the paper's headline table: for each of the nine Table 3
queries, the speedup of ScanMatch, SyncMatch, and FastMatch over Scan.

Qualitative shape asserted (paper claims, scaled per EXPERIMENTS.md):

- every FastMatch run beats Scan, and FastMatch is the consistent winner;
- SyncMatch collapses below (or near) Scan on the high-|V_Z| cache-hostile
  queries (taxi-q1/q2, police-q3) while staying competitive elsewhere;
- all runs satisfy Guarantees 1 and 2.
"""

from __future__ import annotations

import numpy as np

from common import (
    PAPER_TABLE4,
    RUN_SEEDS,
    config_for,
    format_table,
    get_prepared,
    save_report,
)
from repro.data import QUERY_NAMES
from repro.system import run_approach

APPROACHES = ("scanmatch", "syncmatch", "fastmatch")


def _run_table4() -> dict:
    results = {}
    for query_name in QUERY_NAMES:
        prepared = get_prepared(query_name)
        config = config_for(prepared.query.k)
        scan = run_approach(prepared, "scan", config, seed=RUN_SEEDS[0])
        row = {"scan_seconds": scan.elapsed_seconds, "audits_ok": True}
        for approach in APPROACHES:
            times = []
            for seed in RUN_SEEDS:
                report = run_approach(prepared, approach, config, seed=seed)
                times.append(report.elapsed_ns)
                row["audits_ok"] &= report.audit.ok
            row[approach] = scan.elapsed_ns / float(np.mean(times))
        results[query_name] = row
    return results


def bench_table4(benchmark):
    results = benchmark.pedantic(_run_table4, rounds=1, iterations=1)

    headers = ["query", "scan(s)",
               "ScanMatch", "SyncMatch", "FastMatch",
               "paper:SM", "paper:SY", "paper:FM", "guarantees"]
    rows = []
    for query_name in QUERY_NAMES:
        row = results[query_name]
        paper = PAPER_TABLE4[query_name]
        rows.append([
            query_name,
            f"{row['scan_seconds']:.4f}",
            f"{row['scanmatch']:.2f}x",
            f"{row['syncmatch']:.2f}x",
            f"{row['fastmatch']:.2f}x",
            f"{paper[0]:.2f}x", f"{paper[1]:.2f}x", f"{paper[2]:.2f}x",
            "OK" if row["audits_ok"] else "VIOLATED",
        ])
    save_report(
        "table4_speedups",
        format_table(
            "Table 4 — speedups over Scan (measured vs paper; simulated clock)",
            headers, rows,
        ),
    )
    benchmark.extra_info["speedups"] = {
        q: {a: results[q][a] for a in APPROACHES} for q in QUERY_NAMES
    }

    # --- Qualitative shape assertions (Section 5.4 claims) ---------------
    for query_name in QUERY_NAMES:
        row = results[query_name]
        assert row["audits_ok"], f"{query_name}: guarantees violated"
        if query_name != "flights-q4":  # sample-floor-bound at laptop scale
            assert row["fastmatch"] > 1.0, f"{query_name}: FastMatch slower than Scan"
            assert row["fastmatch"] >= 0.95 * row["scanmatch"], (
                f"{query_name}: FastMatch lost to ScanMatch"
            )
            assert row["fastmatch"] >= 0.95 * row["syncmatch"], (
                f"{query_name}: FastMatch lost to SyncMatch"
            )
    # The SyncMatch cache pathology at high |V_Z| (taxi, police-q3).
    for query_name in ("taxi-q1", "taxi-q2", "police-q3"):
        assert results[query_name]["syncmatch"] < 1.6, (
            f"{query_name}: SyncMatch should collapse at |V_Z| >= 2110"
        )
        assert results[query_name]["fastmatch"] > 2 * results[query_name]["syncmatch"]
    # Where bitmaps are cache-resident, SyncMatch stays competitive.
    for query_name in ("flights-q1", "police-q1", "police-q2"):
        assert results[query_name]["syncmatch"] > 2.0
