"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from Section 5 of the
paper.  Results are printed and written to ``benchmarks/results/`` so
EXPERIMENTS.md can record paper-vs-measured outcomes.

Scaling notes (see DESIGN.md §2 and EXPERIMENTS.md):

- Datasets default to 6M rows (paper: 606M/679M/448M).  Override with the
  ``REPRO_BENCH_ROWS`` environment variable.
- The default tolerance here is ε = 0.1 (inside the paper's Figure 8 sweep
  range) rather than the paper's ε = 0.04 headline: sample requirements
  scale as 1/ε² and are independent of N, so at 100x fewer rows the same ε
  would push every approach into near-full scans.
- "Latency" is simulated time from the cost model (repro.storage.cost_model)
  — the substitution DESIGN.md documents — not Python wall time.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.core import HistSimConfig
from repro.data import QUERY_NAMES, prepare_workload
from repro.system import PreparedQuery, RunReport, run_approach

RESULTS_DIR = Path(__file__).parent / "results"

#: None = per-dataset defaults (6M rows).
BENCH_ROWS = int(os.environ["REPRO_BENCH_ROWS"]) if "REPRO_BENCH_ROWS" in os.environ else None

BENCH_SEED = 7
RUN_SEEDS = (3, 11)

#: Default benchmark parameters (Section 5.2, ε scaled per module docstring).
BENCH_EPSILON = 0.1
BENCH_DELTA = 0.01
BENCH_SIGMA = 0.0008
BENCH_STAGE1 = 50_000

#: Paper Table 4 speedups (ScanMatch, SyncMatch, FastMatch) for reference.
PAPER_TABLE4 = {
    "flights-q1": (27.74, 25.53, 37.52),
    "flights-q2": (3.17, 2.73, 10.11),
    "flights-q3": (4.76, 3.14, 8.72),
    "flights-q4": (5.93, 5.76, 8.15),
    "taxi-q1": (4.89, 0.32, 15.93),
    "taxi-q2": (6.48, 0.37, 17.38),
    "police-q1": (5.72, 5.14, 13.34),
    "police-q2": (14.31, 15.48, 36.11),
    "police-q3": (9.25, 1.53, 33.26),
}

#: The paper omits SyncMatch for the taxi queries in Figures 8/9/11
#: ("SYNCMATCH not shown"); we follow suit in the sweeps.
SWEEP_APPROACHES = {
    name: ("scanmatch", "fastmatch") if name.startswith("taxi") else
          ("scanmatch", "syncmatch", "fastmatch")
    for name in QUERY_NAMES
}


def config_for(k: int, **overrides) -> HistSimConfig:
    """The Section 5.2 default configuration at benchmark scale."""
    params = dict(
        k=k,
        epsilon=BENCH_EPSILON,
        delta=BENCH_DELTA,
        sigma=BENCH_SIGMA,
        stage1_samples=BENCH_STAGE1,
    )
    params.update(overrides)
    return HistSimConfig(**params)


def get_prepared(query_name: str) -> PreparedQuery:
    """Cached PreparedQuery for one Table 3 query at benchmark scale."""
    return prepare_workload(query_name, rows=BENCH_ROWS, seed=BENCH_SEED)


def run(query_name: str, approach: str, seed: int = RUN_SEEDS[0], **config_overrides) -> RunReport:
    """One approach on one query with benchmark defaults."""
    prepared = get_prepared(query_name)
    config = config_for(prepared.query.k, **config_overrides)
    return run_approach(prepared, approach, config, seed=seed)


def mean_speedup(query_name: str, approach: str, seeds=RUN_SEEDS, **config_overrides) -> float:
    """Average speedup over the exact Scan across seeds."""
    scan = run(query_name, "scan", seeds[0], **config_overrides)
    times = [run(query_name, approach, seed, **config_overrides).elapsed_ns for seed in seeds]
    return scan.elapsed_ns / float(np.mean(times))


def format_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width text table, paper-style."""
    widths = [
        max(len(str(headers[c])), *(len(str(row[c])) for row in rows))
        for c in range(len(headers))
    ]
    lines = [title, ""]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def save_report(slug: str, text: str) -> None:
    """Print a benchmark table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
    print("\n" + text)
