"""Concurrent queries: serve many matching questions from one MatchSession.

One analyst rarely asks one question.  This example builds a retail-style
table once, then drives several different histogram-matching queries —
different targets, k values, and even grouping attributes — through a
single :class:`repro.MatchSession`:

- the expensive preparation (shuffle layout, bitmap index, exact ground
  truth) is computed once per distinct artifact and shared across queries;
- each query runs as a resumable stepper, and a round-robin scheduler
  interleaves their steps on one simulated clock, like a single-threaded
  server working through a queue;
- every query still gets the paper's (ε, δ) guarantees, and its result is
  identical to running it alone.

Run:  python examples/concurrent_queries.py
"""

import numpy as np

from repro import MatchSession
from repro.core import HistSimConfig
from repro.core.target import TargetSpec
from repro.query import HistogramQuery
from repro.storage import CategoricalAttribute, ColumnTable, Schema

rng = np.random.default_rng(7)

# ---------------------------------------------------------------------------
# 1. A table: 300k sales rows over 24 products × 8 age bands × 2 channels.
#    Products 0-2 sell uniformly across ages; the rest each skew toward one
#    band.  Channel is independent of age.
# ---------------------------------------------------------------------------
NUM_PRODUCTS, NUM_AGES, ROWS = 24, 8, 300_000

product = rng.integers(0, NUM_PRODUCTS, size=ROWS)
age = np.empty(ROWS, dtype=np.int64)
for p in range(NUM_PRODUCTS):
    mask = product == p
    base = np.full(NUM_AGES, 1.0 / NUM_AGES)
    if p >= 3:
        base[p % NUM_AGES] += 0.6
        base /= base.sum()
    age[mask] = rng.choice(NUM_AGES, size=int(mask.sum()), p=base)
channel = rng.integers(0, 2, size=ROWS)

table = ColumnTable(
    Schema(
        (
            CategoricalAttribute("product", tuple(f"P{i}" for i in range(NUM_PRODUCTS))),
            CategoricalAttribute("age", tuple(f"{18 + 8 * i}-{25 + 8 * i}" for i in range(NUM_AGES))),
            CategoricalAttribute("channel", ("web", "store")),
        )
    ),
    {"product": product, "age": age, "channel": channel},
)

# ---------------------------------------------------------------------------
# 2. Several concurrent questions over the same table.
# ---------------------------------------------------------------------------
queries = [
    # "Which products sell evenly across ages?"
    HistogramQuery("product", "age",
                   target=TargetSpec(kind="closest_to_uniform"), k=3,
                   name="flat-sellers"),
    # "Which products sell like product P5?"  (same template: index reused)
    HistogramQuery("product", "age",
                   target=TargetSpec(kind="candidate", candidate=5), k=2,
                   name="like-P5"),
    # ...and like P11, P17 (all share shuffle + index + ground truth).
    HistogramQuery("product", "age",
                   target=TargetSpec(kind="candidate", candidate=11), k=2,
                   name="like-P11"),
    HistogramQuery("product", "age",
                   target=TargetSpec(kind="candidate", candidate=17), k=2,
                   name="like-P17"),
    # "Which products split evenly between web and store?"  (new grouping —
    # new ground truth, but the shuffle and the product index are reused)
    HistogramQuery("product", "channel",
                   target=TargetSpec(kind="closest_to_uniform"), k=3,
                   name="channel-balanced"),
]

session = MatchSession(table)
config = HistSimConfig(k=3, epsilon=0.15, delta=0.05, sigma=0.0)
for query in queries:
    session.submit(query, config=config.with_(k=query.k), seed=1)

run = session.run()

# ---------------------------------------------------------------------------
# 3. Per-query latency on the shared clock, and what the session reused.
# ---------------------------------------------------------------------------
print("=== concurrent queries through one MatchSession ===")
print(f"table: {ROWS:,} rows; {len(run)} queries interleaved\n")
for outcome in run:
    result = outcome.report.result
    matches = ", ".join(str(c) for c in result.matching)
    audit_ok = outcome.report.audit.ok if outcome.report.audit else None
    print(f"  {outcome.name:<16} matches=[{matches:<10}] "
          f"latency={outcome.latency_seconds * 1e3:6.2f} ms  "
          f"service={outcome.service_seconds * 1e3:5.2f} ms  "
          f"steps={outcome.steps}  guarantees_ok={audit_ok}")

print(f"\nthroughput : {run.throughput_qps:,.0f} queries/simulated-second")
print(f"cache      : {session.cache_stats.summary()}")
print(f"             ({session.cache_hits} artifact cache hits across "
      f"{len(queries)} queries)")

assert session.cache_hits > 0, "expected shared artifacts across queries"
assert set(run[0].report.result.matching) == {0, 1, 2}
