"""Flights exploration: the paper's headline query (Table 3, flights-q1).

Which airports have departure-hour distributions most similar to Chicago
O'Hare?  Runs all four approaches of Section 5.2 on the synthetic FLIGHTS
dataset and prints a miniature of the paper's Table 4 row, including the
component breakdown that shows lookahead hiding block-selection cost.

Run:  python examples/flights_similarity.py
"""

import numpy as np

from repro.core import HistSimConfig
from repro.data import prepare_workload
from repro.data.flights import ORD

# A laptop-friendly slice (full evaluation scale: 6M rows).
prepared = prepare_workload("flights-q1", rows=1_500_000, seed=7)
config = HistSimConfig(
    k=10, epsilon=0.1, delta=0.01, sigma=0.0008, stage1_samples=30_000
)

from repro.system import run_approach  # noqa: E402

print("=== flights-q1: airports similar to Chicago ORD (departure hour) ===")
print(f"rows={prepared.shuffled.num_rows:,} blocks={prepared.shuffled.num_blocks:,} "
      f"|V_Z|={prepared.num_candidates} |V_X|={prepared.num_groups}\n")

reports = {}
for approach in ("scan", "scanmatch", "syncmatch", "fastmatch"):
    reports[approach] = run_approach(prepared, approach, config, seed=2)

scan = reports["scan"]
print(f"{'approach':>10s} {'sim time':>10s} {'speedup':>8s} {'blocks read':>12s} "
      f"{'skipped':>8s} {'rounds':>6s} {'guarantees':>10s}")
for approach, report in reports.items():
    print(
        f"{approach:>10s} {report.elapsed_seconds * 1e3:8.2f}ms "
        f"{report.speedup_over(scan):7.2f}x "
        f"{report.counters['blocks_read']:12,} "
        f"{report.counters['blocks_skipped']:8,} "
        f"{report.result.stats.rounds:6d} "
        f"{'OK' if report.audit.ok else 'VIOLATED':>10s}"
    )

fast = reports["fastmatch"]
hidden = fast.breakdown.get("overlap_hidden", 0.0)
print(f"\nlookahead hid {hidden / 1e6:.2f} ms of block-selection work behind I/O")
print("top-10 airports (label, estimated distance):")
schema = prepared.shuffled.table.schema
for airport, distance in zip(fast.result.matching, fast.result.distances):
    label = schema["origin"].values[airport]
    marker = " <- ORD (the target itself)" if airport == ORD else ""
    print(f"  {label}: {distance:.3f}{marker}")

assert ORD in fast.result.matching
assert fast.audit.ok
