"""Census exploration (paper Example 1): which countries have income
distributions most similar to Greece?

Builds a synthetic census (countries × income brackets), then runs the full
FastMatch system — shuffled column store, block layout, bitmap index,
AnyActive block selection with lookahead — and compares against the exact
Scan baseline, reporting simulated latency and the guarantee audit.

Run:  python examples/census_income.py
"""

import numpy as np

from repro.core import HistSimConfig
from repro.core.target import TargetSpec
from repro.data.generator import assemble, at_distance, conditional_column, sizes_from_weights, zipf_weights
from repro.query import HistogramQuery
from repro.storage import CategoricalAttribute, ColumnTable, Schema
from repro.system import PreparedQuery, run_approach

rng = np.random.default_rng(7)

# ---------------------------------------------------------------------------
# 1. Synthetic census: 150 countries, 7 income brackets, 1.2M residents.
#    Greece gets a characteristic bracket profile; a handful of countries
#    (its Mediterranean neighbours, say) are engineered to be close.
# ---------------------------------------------------------------------------
NUM_COUNTRIES, NUM_BRACKETS, ROWS = 150, 7, 1_200_000
GREECE = 17
NEIGHBOURS = (23, 41, 58, 96)  # planted close matches

country_names = [f"country{i:03d}" for i in range(NUM_COUNTRIES)]
country_names[GREECE] = "greece"

greek_profile = np.array([0.08, 0.18, 0.27, 0.22, 0.13, 0.08, 0.04])
profiles = np.zeros((NUM_COUNTRIES, NUM_BRACKETS))
profiles[GREECE] = greek_profile
for rank, country in enumerate(NEIGHBOURS):
    profiles[country] = at_distance(greek_profile, 0.05 + 0.05 * rank, rng)
for country in range(NUM_COUNTRIES):
    if profiles[country].sum() == 0:
        profiles[country] = at_distance(
            greek_profile, float(rng.uniform(0.5, 1.2)), rng
        )

sizes = sizes_from_weights(zipf_weights(NUM_COUNTRIES, 0.6), ROWS, rng, min_rows=1500)
columns = assemble(
    {
        "country": np.repeat(np.arange(NUM_COUNTRIES, dtype=np.int64), sizes),
        "income_bracket": conditional_column(sizes, profiles, rng),
    },
    rng,
)
schema = Schema(
    (
        CategoricalAttribute("country", tuple(country_names)),
        CategoricalAttribute(
            "income_bracket", tuple(f"bracket{i + 1}" for i in range(NUM_BRACKETS))
        ),
    )
)
census = ColumnTable(schema, columns)

# ---------------------------------------------------------------------------
# 2. The query of Definition 1 with Greece's histogram as the visual target:
#    SELECT income_bracket, COUNT(*) FROM census
#    WHERE country = $COUNTRY GROUP BY income_bracket
# ---------------------------------------------------------------------------
query = HistogramQuery(
    candidate_attribute="country",
    grouping_attribute="income_bracket",
    target=TargetSpec(kind="candidate", candidate=GREECE),
    k=5,
    name="census-greece",
)
prepared = PreparedQuery.prepare(census, query, rng)
config = HistSimConfig(k=5, epsilon=0.1, delta=0.05, sigma=0.0005, stage1_samples=30_000)

print("=== FastMatch census example: countries similar to Greece ===")
scan = run_approach(prepared, "scan", config, seed=1)
for approach in ("scan", "scanmatch", "syncmatch", "fastmatch"):
    report = run_approach(prepared, approach, config, seed=1)
    names = [country_names[c] for c in report.result.matching]
    print(
        f"{approach:>10s}: {report.elapsed_seconds * 1e3:7.2f} ms simulated "
        f"({report.speedup_over(scan):5.2f}x vs scan) "
        f"guarantees={'OK' if report.audit.ok else 'VIOLATED'}  top-5={names}"
    )

fast = run_approach(prepared, "fastmatch", config, seed=1)
print("\nFastMatch read "
      f"{fast.counters['rows_delivered']:,} of {census.num_rows:,} rows "
      f"({fast.counters['rows_delivered'] / census.num_rows:.1%}), "
      f"skipped {fast.counters['blocks_skipped']:,} blocks via AnyActive+lookahead")
assert GREECE in fast.result.matching
