"""Sales exploration (paper Example 3): products purchased by customers with
similar age distributions — by revenue, not just counts.

Carol wants products whose *revenue-weighted* purchaser-age distribution
matches a reference product.  That is a SUM(revenue) histogram per product,
which FastMatch handles via measure-biased sampling (Appendix A.1.1).  She
also doesn't care whether she gets 3 or 6 recommendations, so the flexible
range-k extension (Appendix A.2.3) picks the easiest k.

Run:  python examples/sales_recommendation.py
"""

import numpy as np

from repro.core import ArraySampler, HistSimConfig
from repro.core.distance import candidate_distances
from repro.extensions import (
    MeasureBiasedSampler,
    exact_sum_histograms,
    run_histsim_range_k,
)

rng = np.random.default_rng(23)

# ---------------------------------------------------------------------------
# 1. Synthetic purchase log: 500k purchases over 60 products and 10 age bands.
#    Products 0-3 share a "young adult" age profile; product 0 is Carol's
#    reference (a particular brand of shoes).
# ---------------------------------------------------------------------------
NUM_PRODUCTS, NUM_AGE_BANDS, PURCHASES = 60, 10, 500_000
young = np.array([0.02, 0.18, 0.3, 0.22, 0.12, 0.07, 0.04, 0.03, 0.01, 0.01])

profiles = np.zeros((NUM_PRODUCTS, NUM_AGE_BANDS))
for product in range(NUM_PRODUCTS):
    if product < 4:
        noise = rng.dirichlet(young * 4000)
        profiles[product] = noise
    else:
        shifted = np.roll(young, rng.integers(2, 7))
        profiles[product] = rng.dirichlet(shifted * 300)

product_popularity = rng.dirichlet(np.ones(NUM_PRODUCTS) * 3)
z = rng.choice(NUM_PRODUCTS, size=PURCHASES, p=product_popularity)
x = np.empty(PURCHASES, dtype=np.int64)
for product in range(NUM_PRODUCTS):
    mask = z == product
    x[mask] = rng.choice(NUM_AGE_BANDS, size=int(mask.sum()), p=profiles[product])
# Revenue per purchase: older buyers of the reference category spend more.
revenue = rng.lognormal(mean=3.0, sigma=0.6, size=PURCHASES) * (1 + 0.1 * x)

# ---------------------------------------------------------------------------
# 2. Revenue-weighted target: the reference product's SUM(revenue) histogram.
# ---------------------------------------------------------------------------
sum_truth = exact_sum_histograms(z, x, revenue, NUM_PRODUCTS, NUM_AGE_BANDS)
REFERENCE = 0
target = sum_truth[REFERENCE]

print("=== FastMatch sales example: revenue-weighted age-profile matching ===")
print(f"reference product {REFERENCE}: revenue {sum_truth[REFERENCE].sum():,.0f}")

# ---------------------------------------------------------------------------
# 3. Measure-biased sampling makes COUNT estimates track SUM(revenue) shares,
#    so HistSim runs unchanged on the biased stream.  Range-k [3, 6] lets the
#    algorithm stop at the easiest boundary.
# ---------------------------------------------------------------------------
sampler = MeasureBiasedSampler(z, x, revenue, NUM_PRODUCTS, NUM_AGE_BANDS, rng)
config = HistSimConfig(k=3, epsilon=0.12, delta=0.05, sigma=0.001, stage1_samples=25_000)
result = run_histsim_range_k(sampler, target, config, k_min=3, k_max=6)

true_d = candidate_distances(sum_truth, target)
print(f"\nrange-k chose k = {result.k} recommendations "
      f"(samples used: {result.stats.total_samples:,})")
print("recommended products (est. distance, true revenue-weighted distance):")
for product, est in zip(result.matching, result.distances):
    print(f"  product {product:2d}: est={est:.3f} true={true_d[product]:.3f}")

# The reference itself plus its young-profile siblings should dominate.
assert REFERENCE in result.matching
assert len(set(result.matching) & {0, 1, 2, 3}) >= 3

# ---------------------------------------------------------------------------
# 4. Contrast with plain COUNT matching: different question, different answer
#    whenever revenue shifts the shape.
# ---------------------------------------------------------------------------
count_truth = np.zeros((NUM_PRODUCTS, NUM_AGE_BANDS), dtype=np.int64)
np.add.at(count_truth, (z, x), 1)
count_d = candidate_distances(count_truth, count_truth[REFERENCE])
print("\nclosest by plain COUNT instead:",
      np.argsort(count_d)[:result.k].tolist())
