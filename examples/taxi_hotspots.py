"""Taxi exploration (paper Example 2): where else do late-night pickups
cluster the way they do around a nightclub?

Uses the synthetic TAXI dataset (7641 pickup locations, hour-of-day
histograms, a heavy low-selectivity tail) and asks FastMatch for the
locations whose pickup-time distributions best match a chosen nightlife
location — Bob's "do they all have nightclubs?" question.

Run:  python examples/taxi_hotspots.py
"""

import numpy as np

from repro.core import HistSimConfig
from repro.core.distance import candidate_distances
from repro.core.target import TargetSpec
from repro.data import load_dataset
from repro.query import HistogramQuery, exact_candidate_counts
from repro.system import PreparedQuery, run_approach

rng = np.random.default_rng(11)

# A laptop-friendly slice of the TAXI dataset (full scale: 6M rows).
taxi = load_dataset("taxi", rows=1_000_000, seed=7)
table = taxi.table

# ---------------------------------------------------------------------------
# 1. Find a genuinely nightlife-shaped location to use as the visual target:
#    the busy location with the most mass in the 0-5am window.
# ---------------------------------------------------------------------------
counts = exact_candidate_counts(table, HistogramQuery("location", "hour_of_day"))
sizes = counts.sum(axis=1)
busy = sizes > 0.001 * table.num_rows
night_share = counts[:, 0:5].sum(axis=1) / np.maximum(sizes, 1)
nightclub = int(np.argmax(np.where(busy, night_share, -1.0)))
print("=== FastMatch taxi example: late-night pickup hotspots ===")
print(
    f"target location L{nightclub:04d}: {sizes[nightclub]:,} trips, "
    f"{night_share[nightclub]:.0%} of them between midnight and 5am"
)

# ---------------------------------------------------------------------------
# 2. Ask for the 8 locations with the most similar pickup-hour shape.
# ---------------------------------------------------------------------------
query = HistogramQuery(
    candidate_attribute="location",
    grouping_attribute="hour_of_day",
    target=TargetSpec(kind="candidate", candidate=nightclub),
    k=8,
    name="taxi-nightclubs",
)
prepared = PreparedQuery.prepare(table, query, rng)
config = HistSimConfig(k=8, epsilon=0.12, delta=0.05, sigma=0.0008, stage1_samples=40_000)

scan = run_approach(prepared, "scan", config, seed=5)
fast = run_approach(prepared, "fastmatch", config, seed=5)

print(f"\nexact scan      : {scan.elapsed_seconds * 1e3:7.2f} ms simulated")
print(
    f"fastmatch       : {fast.elapsed_seconds * 1e3:7.2f} ms simulated "
    f"({fast.speedup_over(scan):.1f}x speedup), guarantees="
    f"{'OK' if fast.audit.ok else 'VIOLATED'}"
)
print(f"stage 1 pruned  : {fast.result.stats.pruned_candidates:,} rare locations "
      f"(of {prepared.num_candidates:,})")

true_d = candidate_distances(prepared.exact_counts, prepared.target)
print("\nmatches (location, est. distance, true distance, night share):")
for loc, est in zip(fast.result.matching, fast.result.distances):
    print(
        f"  L{loc:04d}  est={est:.3f}  true={true_d[loc]:.3f}  "
        f"night={night_share[loc]:.0%}"
    )

# Bob's conclusion: matching locations share the late-night signature.
matched_night_shares = [night_share[loc] for loc in fast.result.matching if loc != nightclub]
assert np.mean(matched_night_shares) > 2 * np.median(night_share[busy])
