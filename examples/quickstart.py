"""Quickstart: find the top-k histograms matching a target, with guarantees.

Builds a small synthetic population of candidate histograms, then runs the
HistSim algorithm (the paper's Algorithm 1) through the pure-algorithm API:
an in-memory sampler, a target distribution, and (k, ε, δ, σ) parameters.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    ArraySampler,
    HistSimConfig,
    audit_result,
    run_histsim,
    uniform_target,
)

rng = np.random.default_rng(42)

# ---------------------------------------------------------------------------
# 1. A population: 40 candidates ("products"), each with its own distribution
#    over 8 histogram buckets ("customer age bands").  Three products are
#    engineered to be near-uniform; the rest are skewed.
# ---------------------------------------------------------------------------
NUM_CANDIDATES, NUM_GROUPS, ROWS_PER_CANDIDATE = 40, 8, 25_000

distributions = []
for i in range(NUM_CANDIDATES):
    base = np.full(NUM_GROUPS, 1.0 / NUM_GROUPS)
    if i >= 3:  # skew everyone except candidates 0, 1, 2
        base[i % NUM_GROUPS] += 0.5 + 0.05 * (i % 5)
        base /= base.sum()
    distributions.append(base)

z = np.repeat(np.arange(NUM_CANDIDATES), ROWS_PER_CANDIDATE)
x = np.concatenate(
    [rng.choice(NUM_GROUPS, size=ROWS_PER_CANDIDATE, p=d) for d in distributions]
)

# ---------------------------------------------------------------------------
# 2. Ask for the top-3 candidates closest (normalized L1) to uniform, with
#    ε = 0.1 accuracy and failure probability δ = 0.05.
# ---------------------------------------------------------------------------
target = uniform_target(NUM_GROUPS)
config = HistSimConfig(k=3, epsilon=0.1, delta=0.05, sigma=0.0, stage1_samples=20_000)
sampler = ArraySampler(z, x, NUM_CANDIDATES, NUM_GROUPS, rng)

result = run_histsim(sampler, target, config)

print("=== HistSim quickstart ===")
print(f"population: {z.size:,} rows, {NUM_CANDIDATES} candidates, {NUM_GROUPS} buckets")
print(f"samples used: {result.stats.total_samples:,} "
      f"({result.stats.total_samples / z.size:.1%} of the data)")
print(f"stage-2 rounds: {result.stats.rounds}")
print(f"top-{config.k} matches (candidate: estimated distance):")
for candidate, distance in zip(result.matching, result.distances):
    print(f"  candidate {candidate:2d}: {distance:.4f}")

# ---------------------------------------------------------------------------
# 3. Verify the paper's guarantees against exact ground truth.
# ---------------------------------------------------------------------------
exact = np.zeros((NUM_CANDIDATES, NUM_GROUPS), dtype=np.int64)
np.add.at(exact, (z, x), 1)
audit = audit_result(result, exact, target, config.epsilon, config.sigma)
print(f"separation guarantee held:     {audit.separation_ok}")
print(f"reconstruction guarantee held: {audit.reconstruction_ok}")
print(f"relative distance error (delta_d): {audit.delta_d:+.4f}")

assert set(result.matching) == {0, 1, 2}, "expected the planted flat candidates"
