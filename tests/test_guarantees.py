"""Tests for guarantee auditing and the Δd metric (Sections 2.2, 5.3)."""

import numpy as np
import pytest

from repro.core.guarantees import audit_result, delta_d, true_top_k
from repro.core.result import MatchResult, StageStats


def make_result(matching, histograms, distances=None):
    matching = tuple(matching)
    histograms = np.asarray(histograms, dtype=float)
    if distances is None:
        distances = np.zeros(len(matching))
    return MatchResult(
        matching=matching,
        histograms=histograms,
        distances=np.asarray(distances, dtype=float),
        pruned=(),
        exact=False,
        stats=StageStats(),
    )


@pytest.fixture
def world():
    """Four candidates over two groups with known distances to q=[1,1].

    distances to uniform: c0: 0.0, c1: 0.1, c2: 0.5, c3: 1.0
    """
    exact = np.array(
        [
            [50.0, 50.0],
            [45.0, 55.0],
            [25.0, 75.0],
            [0.0, 100.0],
        ]
    )
    target = np.array([1.0, 1.0])
    return exact, target


class TestTrueTopK:
    def test_orders_by_distance(self, world):
        exact, target = world
        np.testing.assert_array_equal(true_top_k(exact, target, 2), [0, 1])
        np.testing.assert_array_equal(true_top_k(exact, target, 4), [0, 1, 2, 3])

    def test_sigma_excludes_rare(self, world):
        exact, target = world
        exact = exact.copy()
        exact[0] = [1.0, 1.0]  # closest but tiny: 2 rows of ~302
        top = true_top_k(exact, target, 2, sigma=0.05)
        np.testing.assert_array_equal(top, [1, 2])

    def test_empty_counts_raise(self):
        with pytest.raises(ValueError):
            true_top_k(np.zeros((2, 2)), np.ones(2), 1)


class TestDeltaD:
    def test_perfect_selection_is_zero(self, world):
        exact, target = world
        assert delta_d(np.array([0, 1]), exact, target, 2) == pytest.approx(0.0)

    def test_suboptimal_selection_positive(self, world):
        exact, target = world
        val = delta_d(np.array([0, 2]), exact, target, 2)
        # (0.0 + 0.5 - (0.0 + 0.1)) / 0.1 = 4.0
        assert val == pytest.approx(4.0)

    def test_negative_when_beating_sigma_limited_truth(self, world):
        """Returning a rare-but-closer candidate makes Δd negative (Section 5.3)."""
        exact, target = world
        exact = exact.copy()
        exact[0] = [1.0, 1.0]  # rare and perfect
        val = delta_d(np.array([0, 1]), exact, target, 2, sigma=0.05)
        assert val < 0


class TestAudit:
    def test_correct_output_passes(self, world):
        exact, target = world
        result = make_result([0, 1], exact[[0, 1]])
        audit = audit_result(result, exact, target, epsilon=0.1, sigma=0.0)
        assert audit.separation_ok
        assert audit.reconstruction_ok
        assert audit.ok

    def test_separation_violation_detected(self, world):
        exact, target = world
        # Returning c3 (distance 1.0) while c1 (0.2) is excluded: gap 0.8 > ε.
        result = make_result([0, 3], exact[[0, 3]])
        audit = audit_result(result, exact, target, epsilon=0.1, sigma=0.0)
        assert not audit.separation_ok

    def test_separation_tolerates_near_ties(self, world):
        exact, target = world
        # Swap c1 (0.2) for c2 (0.5) with ε = 0.5: |0.5 - 0.2| < 0.5 -> OK.
        result = make_result([0, 2], exact[[0, 2]])
        audit = audit_result(result, exact, target, epsilon=0.5, sigma=0.0)
        assert audit.separation_ok

    def test_separation_ignores_rare_candidates(self, world):
        exact, target = world
        exact = exact.copy()
        exact[1] = [9.0, 11.0]  # now rare (20 of ~270 rows is 7.4%)
        result = make_result([0, 2], exact[[0, 2]])
        audit = audit_result(result, exact, target, epsilon=0.1, sigma=0.08)
        assert audit.separation_ok

    def test_reconstruction_violation_detected(self, world):
        exact, target = world
        bad_histogram = np.array([[100.0, 0.0], [45.0, 55.0]])  # c0 badly wrong
        result = make_result([0, 1], bad_histogram)
        audit = audit_result(result, exact, target, epsilon=0.3, sigma=0.0)
        assert not audit.reconstruction_ok
        assert audit.worst_reconstruction_error == pytest.approx(1.0)

    def test_reconstruction_scale_invariant(self, world):
        exact, target = world
        scaled = exact[[0, 1]] * 0.01  # sampled counts are scaled-down truth
        result = make_result([0, 1], scaled)
        audit = audit_result(result, exact, target, epsilon=0.01, sigma=0.0)
        assert audit.reconstruction_ok

    def test_empty_output_with_all_rare(self):
        exact = np.array([[1.0, 0.0], [0.0, 1.0]])
        result = make_result([], np.zeros((0, 2)))
        audit = audit_result(result, exact, np.ones(2), epsilon=0.1, sigma=0.9)
        assert audit.separation_ok
        audit2 = audit_result(result, exact, np.ones(2), epsilon=0.1, sigma=0.1)
        assert not audit2.separation_ok
