"""Multi-tenant serving tests: SessionRegistry routing, the global cache
budget, and the driver-equivalence acceptance matrix.

Acceptance property of the engine/driver split: per-query answers are
byte-identical across the thread ``FrontDoor``, the asyncio
``AsyncFrontDoor``, and the ``BatchScheduler`` drain, for every policy —
drivers and policies shape latency, never answers.
"""

import asyncio

import numpy as np
import pytest

from repro import (
    FrontDoor,
    MatchSession,
    QueryRequest,
    SessionRegistry,
    match_histograms,
)
from repro.core import HistSimConfig
from repro.core.target import TargetSpec
from repro.query import HistogramQuery
from repro.serving import POLICIES, UnknownDataset
from repro.storage import CategoricalAttribute, ColumnTable, Schema

EPS, DELTA = 0.2, 0.05
CANDIDATES, GROUPS = 12, 5


def make_table(seed: int, n: int = 24_000) -> ColumnTable:
    rng = np.random.default_rng(seed)
    z = rng.integers(0, CANDIDATES, size=n)
    x = np.empty(n, dtype=np.int64)
    for c in range(CANDIDATES):
        mask = z == c
        base = np.full(GROUPS, 1.0 / GROUPS)
        if c >= 2:
            base[c % GROUPS] += 0.6
            base /= base.sum()
        x[mask] = rng.choice(GROUPS, size=int(mask.sum()), p=base)
    schema = Schema(
        (
            CategoricalAttribute("product", tuple(f"p{i}" for i in range(CANDIDATES))),
            CategoricalAttribute("age", tuple(f"a{i}" for i in range(GROUPS))),
        )
    )
    return ColumnTable(schema, {"product": z, "age": x})


@pytest.fixture(scope="module")
def table_a():
    return make_table(21)


@pytest.fixture(scope="module")
def table_b():
    return make_table(22)


def make_query(k: int = 3, name: str = "q") -> HistogramQuery:
    return HistogramQuery(
        "product", "age", target=TargetSpec(kind="closest_to_uniform"), k=k,
        name=name,
    )


def make_request(k: int = 3, seed: int = 3, name: str = "q", **overrides):
    config = HistSimConfig(k=k, epsilon=EPS, delta=DELTA, sigma=0.0)
    return QueryRequest(
        make_query(k, name), config=config, seed=seed, name=name, **overrides
    )


def standalone(table, k: int = 3, seed: int = 3):
    return match_histograms(
        table, "product", "age", k=k, epsilon=EPS, delta=DELTA, sigma=0.0,
        seed=seed,
    )


def assert_reports_identical(report, reference, where: str) -> None:
    assert report.result.matching == reference.result.matching, where
    assert np.array_equal(report.result.histograms, reference.result.histograms), where
    assert np.array_equal(report.result.distances, reference.result.distances), where
    assert report.result.stats == reference.result.stats, where


# ---------------------------------------------------------------------------
# Driver equivalence: thread FrontDoor / AsyncFrontDoor / BatchScheduler
# ---------------------------------------------------------------------------


def serve_via_batch(table, policy):
    session = MatchSession(table, policy=policy)
    session.submit(make_query(3, "first"), config=HistSimConfig(
        k=3, epsilon=EPS, delta=DELTA, sigma=0.0), seed=3)
    session.submit(make_query(2, "second"), config=HistSimConfig(
        k=2, epsilon=EPS, delta=DELTA, sigma=0.0), seed=3)
    run = session.run()
    session.close()
    return [outcome.report for outcome in run]


def serve_via_thread_door(table, policy):
    session = MatchSession(table)
    with FrontDoor(session, policy=policy) as door:
        door.start()
        handles = [
            door.submit(make_request(3, name="first")),
            door.submit(make_request(k=2, name="second")),
        ]
        return [handle.result(timeout=60) for handle in handles]


def serve_via_async_door(table, policy):
    async def drive():
        session = MatchSession(table)
        async with session.serve_async(policy=policy) as door:
            handles = [
                await door.submit(make_request(3, name="first")),
                await door.submit(make_request(k=2, name="second")),
            ]
            return [await handle.result() for handle in handles]

    return asyncio.run(drive())


DRIVERS = {
    "batch": serve_via_batch,
    "thread": serve_via_thread_door,
    "async": serve_via_async_door,
}


class TestDriverEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("driver", sorted(DRIVERS))
    def test_reports_identical_across_drivers_and_policies(
        self, table_a, policy, driver
    ):
        """Acceptance: byte-identical per-query answers for every
        (driver, policy) combination, against the standalone pipeline."""
        first = standalone(table_a, k=3)
        second = standalone(table_a, k=2)
        reports = DRIVERS[driver](table_a, policy)
        assert_reports_identical(reports[0], first, f"{driver}/{policy}/first")
        assert_reports_identical(reports[1], second, f"{driver}/{policy}/second")


class TestAsyncDoorLifecycle:
    def test_concurrent_shutdowns_wait_for_one_drain(self, table_a):
        """Two coroutines racing shutdown(): the second must wait for the
        first to finish draining instead of closing the service under the
        still-stepping scheduler task."""

        async def drive():
            session = MatchSession(table_a)
            door = session.serve_async(policy="fifo")
            door.start()
            handle = await door.submit(make_request(name="inflight"))
            await asyncio.gather(door.shutdown(), door.shutdown())
            outcome = await handle.outcome()
            assert outcome.status == "completed"  # drained before close
            assert session.closed
            await door.shutdown()  # idempotent afterwards too

        asyncio.run(drive())

    def test_submit_after_shutdown_raises(self, table_a):
        from repro.serving import ServingError

        async def drive():
            session = MatchSession(table_a)
            door = session.serve_async()
            door.start()
            await door.shutdown()
            with pytest.raises(ServingError):
                await door.submit(make_request())

        asyncio.run(drive())


# ---------------------------------------------------------------------------
# Multi-tenant routing through a SessionRegistry
# ---------------------------------------------------------------------------


class TestRegistryRouting:
    def test_interleaved_tenants_match_standalone(self, table_a, table_b):
        """Two datasets behind one door, interleaved requests: every
        tenant's answers equal its standalone run."""
        registry = SessionRegistry()
        registry.add_dataset("a", table_a)
        registry.add_dataset("b", table_b)
        door = registry.serve(policy="rr")
        outcomes = door.replay(
            [
                (0.0, make_request(name="a0", dataset="a")),
                (0.0, make_request(name="b0", dataset="b")),
                (0.0, make_request(k=2, name="a1", dataset="a")),
                (0.0, make_request(k=2, name="b1", dataset="b")),
            ]
        )
        door.shutdown()
        refs = {
            "a0": standalone(table_a, 3), "b0": standalone(table_b, 3),
            "a1": standalone(table_a, 2), "b1": standalone(table_b, 2),
        }
        assert [o.status for o in outcomes] == ["completed"] * 4
        for outcome in outcomes:
            assert_reports_identical(outcome.report, refs[outcome.name], outcome.name)

    def test_sessions_share_clock_and_backend(self, table_a, table_b):
        registry = SessionRegistry()
        a = registry.add_dataset("a", table_a)
        b = registry.add_dataset("b", table_b)
        assert a.clock is registry.clock and b.clock is registry.clock
        assert a.backend is registry.backend and b.backend is registry.backend
        registry.close()
        assert a.closed and b.closed

    def test_unknown_dataset_is_typed(self, table_a):
        registry = SessionRegistry()
        registry.add_dataset("a", table_a)
        with pytest.raises(UnknownDataset):
            registry.route(make_request(dataset="missing"))
        registry.add_dataset("b", make_table(9, n=4_000))
        with pytest.raises(UnknownDataset):
            # Ambiguous: no key with two tenants registered.
            registry.route(make_request())
        registry.close()

    def test_keyless_request_routes_to_single_tenant(self, table_a):
        registry = SessionRegistry()
        session = registry.add_dataset("a", table_a)
        assert registry.route(make_request()) is session
        registry.close()

    def test_duplicate_and_post_close_registration_rejected(self, table_a):
        registry = SessionRegistry()
        registry.add_dataset("a", table_a)
        with pytest.raises(ValueError, match="already"):
            registry.add_dataset("a", table_a)
        registry.close()
        registry.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            registry.add_dataset("b", table_a)

    def test_shed_request_releases_slot_across_tenants(self, table_a, table_b):
        registry = SessionRegistry()
        registry.add_dataset("a", table_a)
        registry.add_dataset("b", table_b)
        door = registry.serve(policy="fifo", max_queue=1)
        outcomes = door.replay(
            [
                (0.0, make_request(name="a0", dataset="a")),
                (0.0, make_request(name="b0", dataset="b")),  # queue full
                (1e9, make_request(name="b1", dataset="b")),  # capacity back
            ]
        )
        door.shutdown()
        assert [o.status for o in outcomes] == ["completed", "shed", "completed"]

    def test_sharded_backend_is_shared_and_identical(self, table_a, table_b):
        """One sharded backend (one pool, one shm store) serves both
        tenants with answers identical to the serial registry."""
        from repro.parallel import ShardedBackend

        backend = ShardedBackend(2, min_shard_rows=0)
        registry = SessionRegistry(backend=backend)
        try:
            registry.add_dataset("a", table_a)
            registry.add_dataset("b", table_b)
            door = registry.serve(policy="rr")
            outcomes = door.replay(
                [
                    (0.0, make_request(name="a0", dataset="a")),
                    (0.0, make_request(name="b0", dataset="b")),
                ]
            )
            door.shutdown()
            assert backend.shard_tasks > 0  # the pool really ran
            assert_reports_identical(
                outcomes[0].report, standalone(table_a, 3), "sharded/a"
            )
            assert_reports_identical(
                outcomes[1].report, standalone(table_b, 3), "sharded/b"
            )
            # The registry treats a passed-in backend as borrowed.
            assert not backend.closed
        finally:
            backend.close()


# ---------------------------------------------------------------------------
# Global cache budget across tenants
# ---------------------------------------------------------------------------


class TestRegistryCacheBudget:
    def prepare(self, registry, key, seed):
        session = registry.session(key)
        prepared = session.prepared(make_query(3, "q"), seed=seed)
        return session, (prepared.query, session.block_size, seed)

    def test_global_lru_eviction_ordering(self, table_a, table_b):
        """The globally least-recently-used evictable entry goes first,
        regardless of which tenant holds it."""
        registry = SessionRegistry()
        registry.add_dataset("a", table_a)
        registry.add_dataset("b", table_b)
        session_a, key_a1 = self.prepare(registry, "a", seed=1)
        session_b, key_b1 = self.prepare(registry, "b", seed=1)
        _, key_b2 = self.prepare(registry, "b", seed=2)
        _, key_a2 = self.prepare(registry, "a", seed=2)
        # Global recency: a1, b1, b2, a2.  Touch a1 -> b1, b2, a2, a1.
        session_a.prepared(make_query(3, "q"), seed=1)
        assert registry.cached_entries == 4
        # Shrink the budget below the current footprint: b1 (globally the
        # oldest evictable entry) must go first — not a2, and not the
        # just-touched a1, even though tenant a holds more bytes.
        registry.max_cached_bytes = registry.cache_bytes - 1
        assert registry.enforce_budget() >= 1
        assert key_b1 not in session_b._prepared_cache
        assert key_b2 in session_b._prepared_cache
        assert key_a1 in session_a._prepared_cache
        assert key_a2 in session_a._prepared_cache
        assert session_b.cache_stats.evictions.get("prepared", 0) == 1
        # Next squeeze: b2 is now tenant b's sole (in-use) entry and is
        # skipped; the next globally-oldest evictable entry is a2.
        registry.max_cached_bytes = registry.cache_bytes - 1
        assert registry.enforce_budget() >= 1
        assert key_b2 in session_b._prepared_cache
        assert key_a2 not in session_a._prepared_cache
        assert key_a1 in session_a._prepared_cache
        registry.close()

    def test_budget_enforced_on_insert(self, table_a, table_b):
        registry = SessionRegistry(max_cached_bytes=1)  # one entry's worth
        registry.add_dataset("a", table_a)
        registry.add_dataset("b", table_b)
        session_a, key_a1 = self.prepare(registry, "a", seed=1)
        session_b, key_b1 = self.prepare(registry, "b", seed=1)
        # Over budget on insert: the older tenant entry was evicted, but
        # each session's most recent (in-use) entry survives, so the floor
        # is one entry per tenant.
        assert key_a1 in session_a._prepared_cache
        assert key_b1 in session_b._prepared_cache
        _, key_b2 = self.prepare(registry, "b", seed=2)
        assert key_b1 not in session_b._prepared_cache  # evictable, gone
        assert key_b2 in session_b._prepared_cache
        assert key_a1 in session_a._prepared_cache  # a's most recent
        registry.close()

    def test_most_recent_entry_is_never_evicted(self, table_a):
        registry = SessionRegistry(max_cached_bytes=1)
        registry.add_dataset("a", table_a)
        session, key = self.prepare(registry, "a", seed=1)
        assert key in session._prepared_cache  # over budget but in use
        assert registry.enforce_budget() == 0
        registry.close()

    def test_results_identical_under_eviction_pressure(self, table_a, table_b):
        """A thrashing global budget changes recomputation, never answers."""
        registry = SessionRegistry(max_cached_bytes=1)
        registry.add_dataset("a", table_a)
        registry.add_dataset("b", table_b)
        door = registry.serve(policy="fifo")
        outcomes = door.replay(
            [
                (0.0, make_request(name="a0", dataset="a")),
                (0.0, make_request(name="b0", dataset="b")),
                (0.0, make_request(name="a1", dataset="a")),
            ]
        )
        door.shutdown()
        assert_reports_identical(outcomes[0].report, standalone(table_a, 3), "a0")
        assert_reports_identical(outcomes[1].report, standalone(table_b, 3), "b0")
        assert_reports_identical(outcomes[2].report, standalone(table_a, 3), "a1")
