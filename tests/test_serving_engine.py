"""Tests for the pure scheduling engine, the clock protocol, and edf-f.

The engine half of the serving refactor: clock-agnostic scheduling
(simulated or wall), per-job clock stamping of every outcome (the metrics
fix — cancelled outcomes must not mix timelines), and the
feasibility-aware ``edf-f`` policy's queued-job shedding.
"""

import time

import pytest

from repro.serving import ServingMetrics
from repro.serving.engine import ServingEngine
from repro.serving.policies import FeasibleEdfPolicy, make_policy
from repro.system import Clock, SimulatedClock, WallClock


class FakeJob:
    """Deterministic job: charges ``cost_ns`` per step on its own clock."""

    def __init__(self, name, work, clock, cost_ns=10.0, log=None,
                 remaining_ns=None):
        self.name = name
        self.clock = clock
        self._work = work
        self._cost = cost_ns
        self._log = log if log is not None else []
        #: Mutable so tests can model estimates that drift mid-run.
        self.remaining_ns = remaining_ns
        self.partials = 0

    @property
    def done(self):
        return self._work == 0

    def step(self):
        self._log.append(self.name)
        self._work -= 1
        self.clock.charge_serial(io=self._cost)

    def estimated_remaining_rows(self):
        return self._work * self._cost

    def estimated_remaining_ns(self):
        if self.remaining_ns is not None:
            return self.remaining_ns
        return self._work * self._cost

    def finish(self, service_ns):
        class _Report:
            elapsed_ns = service_ns
        return _Report()

    def finish_partial(self, service_ns):
        self.partials += 1

        class _Report:
            elapsed_ns = service_ns
            partial = True
        return _Report()


class TestClockProtocol:
    def test_simulated_clock_is_virtual(self):
        clock = SimulatedClock()
        assert isinstance(clock, Clock)
        assert clock.virtual
        clock.charge_serial(io=5.0)
        assert clock.elapsed_ns == 5.0

    def test_simulated_idle_until(self):
        clock = SimulatedClock()
        clock.charge_serial(io=5.0)
        clock.idle_until(100.0)
        assert clock.elapsed_ns == 100.0
        assert clock.snapshot()["idle"] == 95.0
        clock.idle_until(50.0)  # never goes backwards
        assert clock.elapsed_ns == 100.0

    def test_wall_clock_advances_on_its_own(self):
        clock = WallClock()
        assert isinstance(clock, Clock)
        assert not clock.virtual
        first = clock.elapsed_ns
        time.sleep(0.002)
        assert clock.elapsed_ns > first

    def test_wall_clock_charges_record_breakdown_only(self):
        clock = WallClock()
        before = clock.elapsed_ns
        clock.charge_serial(io=1e12)  # a thousand simulated seconds
        clock.charge_pipelined(io_ns=100.0, mark_ns=40.0)
        # Elapsed is real time: charging cannot have moved it by 1e12.
        assert clock.elapsed_ns - before < 1e9
        snap = clock.snapshot()
        assert snap["io"] == 1e12 + 100.0
        assert snap["mark"] == 40.0
        assert snap["overlap_hidden"] == 40.0

    def test_wall_clock_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            WallClock().charge_serial(io=-1.0)


class TestEngineOnWallClock:
    def test_jobs_complete_with_real_time_stamps(self):
        clock = WallClock()
        engine = ServingEngine(clock, policy="fifo")
        engine.submit(FakeJob("a", work=3, clock=clock))
        (outcome,) = engine.run_until_idle()
        assert outcome.status == "completed"
        assert outcome.finished_ns >= outcome.submitted_ns
        assert outcome.steps == 3

    def test_real_deadline_expires_on_wall_clock(self):
        clock = WallClock()
        engine = ServingEngine(clock, policy="edf")

        class Sleeper(FakeJob):
            def step(self):
                time.sleep(0.005)
                super().step()

        engine.submit(Sleeper("slow", work=100, clock=clock),
                      deadline_ns=2e6)  # 2 ms of real time
        (outcome,) = engine.run_until_idle()
        assert outcome.status == "partial"
        assert outcome.steps < 100


class TestPerJobClockStamping:
    """Outcomes are stamped from the job's own clock, never the driver's.

    Regression for the metrics bug: latency percentiles mixed simulated
    and wall nanoseconds when a wall-clock driver cancelled
    simulated-clock jobs mid-flight.
    """

    def test_cancelled_outcome_stays_on_job_clock(self):
        wall = WallClock()
        sim = SimulatedClock()
        metrics = ServingMetrics()
        engine = ServingEngine(wall, policy="fifo", metrics=metrics)
        job = FakeJob("j", work=5, clock=sim)
        entry = engine.submit(job)  # clock inferred from the job
        assert entry.clock is sim
        engine.step()
        engine.cancel_pending("shutdown")
        outcome = entry.outcome
        assert outcome.status == "cancelled"
        # Stamped on the simulated timeline: one 10ns step, not wall ns.
        assert outcome.submitted_ns == 0.0
        assert outcome.finished_ns == sim.elapsed_ns == 10.0
        assert outcome.latency_ns == 10.0
        # The percentiles aggregate coherent (simulated) latencies.
        assert metrics.snapshot().p99_latency_ms == pytest.approx(1e-5)

    def test_deadline_lives_on_job_clock(self):
        wall = WallClock()
        sim = SimulatedClock()
        sim.charge_serial(io=1000.0)
        engine = ServingEngine(wall, policy="fifo")
        entry = engine.submit(FakeJob("j", work=1, clock=sim), deadline_ns=50.0)
        assert entry.submitted_ns == 1000.0
        assert entry.deadline_ns == 1050.0

    def test_explicit_clock_argument_wins(self):
        wall = WallClock()
        sim = SimulatedClock()
        engine = ServingEngine(wall, policy="fifo")
        job = FakeJob("j", work=1, clock=wall)
        entry = engine.submit(job, clock=sim)
        assert entry.clock is sim


class TestFeasibilityShedding:
    def test_doomed_queued_job_settles_immediately_as_partial(self):
        clock = SimulatedClock()
        engine = ServingEngine(clock, policy="edf-f")
        doomed = FakeJob("doomed", work=5, clock=clock)   # needs 50ns
        engine.submit(doomed, deadline_ns=30.0)           # cannot make it
        feasible = FakeJob("ok", work=2, clock=clock)     # needs 20ns
        engine.submit(feasible, deadline_ns=40.0)
        outcomes = {o.name: o for o in engine.run_until_idle()}
        assert outcomes["doomed"].status == "partial"
        assert outcomes["doomed"].steps == 0              # never got a slice
        assert outcomes["doomed"].finished_ns == 0.0      # settled at once
        assert doomed.partials == 1
        assert outcomes["ok"].status == "completed"
        assert outcomes["ok"].deadline_hit

    def test_doomed_miss_mode_gets_typed_infeasible_error(self):
        """A predictive shed is distinguishable from a real expiry: the
        error is an InfeasibleDeadline (still a DeadlineMiss for callers
        that only branch on misses) and its message does not claim an
        expiry that never happened."""
        from repro.serving import DeadlineMiss, InfeasibleDeadline

        clock = SimulatedClock()
        engine = ServingEngine(clock, policy="edf-f")
        engine.submit(FakeJob("doomed", work=5, clock=clock),
                      deadline_ns=30.0, on_deadline="miss")
        (outcome,) = engine.run_until_idle()
        assert outcome.status == "miss"
        assert isinstance(outcome.error, InfeasibleDeadline)
        assert isinstance(outcome.error, DeadlineMiss)
        assert outcome.error.estimated_remaining_ns == 50.0
        assert "infeasible" in str(outcome.error)
        # A real expiry still reports the plain DeadlineMiss.
        engine2 = ServingEngine(SimulatedClock(), policy="edf")
        job = FakeJob("late", work=5, clock=engine2.clock)
        engine2.submit(job, deadline_ns=30.0, on_deadline="miss")
        (expired,) = engine2.run_until_idle()
        assert isinstance(expired.error, DeadlineMiss)
        assert not isinstance(expired.error, InfeasibleDeadline)

    def test_edf_f_dominates_edf_on_a_doomed_mix(self):
        """The domino scenario: EDF burns its slices on the most imminent
        (doomed) request and misses everything; edf-f answers the doomed
        one immediately and saves the feasible one."""

        def hits(policy):
            clock = SimulatedClock()
            engine = ServingEngine(clock, policy=policy)
            engine.submit(FakeJob("doomed", work=5, clock=clock),
                          deadline_ns=30.0)
            engine.submit(FakeJob("ok", work=2, clock=clock),
                          deadline_ns=40.0)
            return sum(o.deadline_hit for o in engine.run_until_idle())

        assert hits("edf") == 0
        assert hits("edf-f") == 1

    def test_running_jobs_are_never_shed(self):
        """Mid-run estimates are unreliable; once a job has a slice, only
        its real deadline can settle it."""
        clock = SimulatedClock()
        engine = ServingEngine(clock, policy="edf-f")
        job = FakeJob("j", work=3, clock=clock, remaining_ns=10.0)
        engine.submit(job, deadline_ns=100.0)
        assert engine.step()
        job.remaining_ns = 1e12  # estimate goes insane mid-run
        (outcome,) = engine.run_until_idle()
        assert outcome.status == "completed"
        assert outcome.deadline_hit

    def test_jobs_without_estimates_or_deadlines_pass_through(self):
        clock = SimulatedClock()
        engine = ServingEngine(clock, policy="edf-f")

        class NoEstimate(FakeJob):
            def estimated_remaining_ns(self):
                return float("inf")

        engine.submit(NoEstimate("blind", work=2, clock=clock),
                      deadline_ns=5.0)  # unmeetable, but unknowable
        engine.submit(FakeJob("free", work=2, clock=clock))  # no deadline
        outcomes = {o.name: o for o in engine.run_until_idle()}
        # The estimate-free job ran until its deadline actually expired.
        assert outcomes["blind"].status == "partial"
        assert outcomes["free"].status == "completed"

    def test_zero_margin_degenerates_to_edf(self):
        policy = make_policy("edf-f")
        assert isinstance(policy, FeasibleEdfPolicy)
        policy.feasibility_margin = 0.0
        clock = SimulatedClock()
        engine = ServingEngine(clock, policy=policy)
        engine.submit(FakeJob("doomed", work=5, clock=clock), deadline_ns=30.0)
        outcomes = engine.run_until_idle()
        # Never shed up front: it ran until the deadline really expired.
        assert outcomes[0].steps == 3
        assert outcomes[0].status == "partial"


class TestPickDispatchSettle:
    """The three-phase split: pick marks in-flight, settle accounts, and
    ``step()`` is exactly pick → job.step() → settle."""

    def test_pick_marks_in_flight_and_skips_it(self):
        clock = SimulatedClock()
        engine = ServingEngine(clock, policy="fifo")
        a = engine.submit(FakeJob("a", work=2, clock=clock))
        b = engine.submit(FakeJob("b", work=1, clock=clock))
        first = engine.pick()
        assert first is a and a.in_flight
        assert engine.in_flight == 1
        # FIFO must move on to b: a is mid-step, not dispatchable.
        second = engine.pick()
        assert second is b
        assert engine.pick() is None  # every runnable entry is in flight
        assert engine.pending == 2    # ... but none of them is finalized
        first.job.step()
        engine.settle(first)
        assert not first.in_flight and first.outcome is None  # 1 of 2 steps
        second.job.step()
        engine.settle(second)
        assert second.outcome.status == "completed"
        assert second.steps == 1

    def test_step_is_pick_step_settle(self):
        def drain(three_phase):
            clock = SimulatedClock()
            log = []
            engine = ServingEngine(clock, policy="rr")
            engine.submit(FakeJob("a", work=3, clock=clock, log=log))
            engine.submit(FakeJob("b", work=2, clock=clock, log=log))
            if three_phase:
                while True:
                    entry = engine.pick()
                    if entry is None:
                        break
                    entry.job.step()
                    engine.settle(entry)
            else:
                while engine.step():
                    pass
            outcomes = {
                e.name: (e.outcome.status, e.outcome.steps, e.outcome.service_ns)
                for e in engine.take_finished()
            }
            return log, outcomes

        assert drain(three_phase=True) == drain(three_phase=False)

    def test_settle_requires_a_picked_step(self):
        clock = SimulatedClock()
        engine = ServingEngine(clock, policy="fifo")
        entry = engine.submit(FakeJob("a", work=1, clock=clock))
        with pytest.raises(RuntimeError, match="no step to settle"):
            engine.settle(entry)

    def test_expiry_skips_in_flight_entries_until_their_settle(self):
        clock = SimulatedClock()
        engine = ServingEngine(clock, policy="fifo")
        entry = engine.submit(
            FakeJob("a", work=2, clock=clock), deadline_ns=5.0
        )
        picked = engine.pick()
        assert picked is entry
        picked.job.step()  # clock is now past the 5ns deadline
        # Expiry scans (via another pick) must not finalize a mid-step job
        # under its running step.
        assert engine.pick() is None
        assert entry.outcome is None
        engine.settle(picked)  # settle re-runs expiry and catches it
        assert entry.outcome is not None
        assert entry.outcome.status == "partial"
        assert entry.steps == 1

    def test_cancel_mid_step_discards_the_straggler_settle(self):
        clock = SimulatedClock()
        engine = ServingEngine(clock, policy="fifo")
        entry = engine.submit(FakeJob("a", work=2, clock=clock))
        picked = engine.pick()
        assert engine.cancel_pending("shutdown") == 1
        assert entry.outcome.status == "cancelled"
        picked.job.step()
        engine.settle(picked)  # the step's work is discarded, not re-finalized
        assert entry.outcome.status == "cancelled"
        assert entry.outcome.steps == 0
        assert len(engine.take_finished()) == 1
