"""Tests for the stage-1 under-representation test (Section 3.3)."""

import numpy as np
import pytest
from scipy.stats import hypergeom

from repro.core.hypergeometric import (
    rare_threshold,
    underrepresentation_pvalue,
    underrepresentation_pvalues,
)


class TestRareThreshold:
    def test_ceiling(self):
        assert rare_threshold(1000, 0.0008) == 1
        assert rare_threshold(10_000, 0.0008) == 8
        assert rare_threshold(10_001, 0.0008) == 9

    def test_zero_sigma(self):
        assert rare_threshold(1000, 0.0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            rare_threshold(-1, 0.5)
        with pytest.raises(ValueError):
            rare_threshold(10, 1.5)


class TestPvalues:
    def test_matches_scipy_cdf(self):
        n_total, sigma, m = 100_000, 0.001, 5_000
        threshold = rare_threshold(n_total, sigma)
        for observed in (0, 1, 3, 10, 50):
            expected = hypergeom.cdf(observed, n_total, threshold, m)
            got = underrepresentation_pvalue(observed, n_total, sigma, m)
            assert got == pytest.approx(expected)

    def test_zero_observed_is_surprising_for_common_candidate(self):
        """Seeing nothing from a 1%-selectivity candidate in 10k samples."""
        p = underrepresentation_pvalue(0, 1_000_000, 0.01, 10_000)
        assert p < 1e-20

    def test_expected_count_is_unsurprising(self):
        """Observing roughly σ·m tuples should not look rare."""
        n_total, sigma, m = 1_000_000, 0.01, 10_000
        p = underrepresentation_pvalue(int(sigma * m), n_total, sigma, m)
        assert p > 0.4

    def test_monotone_in_observed(self):
        n_total, sigma, m = 500_000, 0.005, 20_000
        counts = np.arange(0, 200)
        p = underrepresentation_pvalues(counts, n_total, sigma, m)
        assert np.all(np.diff(p) >= 0)

    def test_sigma_zero_never_flags(self):
        p = underrepresentation_pvalues(np.array([0, 1, 5]), 1000, 0.0, 100)
        np.testing.assert_array_equal(p, np.ones(3))

    def test_shared_computation_matches_elementwise(self):
        rng = np.random.default_rng(7)
        counts = rng.integers(0, 40, size=100)
        n_total, sigma, m = 2_000_000, 0.0008, 500_000
        vec = underrepresentation_pvalues(counts, n_total, sigma, m)
        for i in (0, 17, 55, 99):
            assert vec[i] == pytest.approx(
                underrepresentation_pvalue(int(counts[i]), n_total, sigma, m)
            )

    def test_pvalues_in_unit_interval(self):
        counts = np.arange(0, 5000, 37)
        p = underrepresentation_pvalues(counts, 10_000_000, 0.0008, 500_000)
        assert np.all(p >= 0) and np.all(p <= 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            underrepresentation_pvalues(np.array([[1]]), 10, 0.5, 5)
        with pytest.raises(ValueError):
            underrepresentation_pvalues(np.array([-1]), 10, 0.5, 5)
        with pytest.raises(ValueError):
            underrepresentation_pvalues(np.array([1]), 10, 0.5, 11)

    def test_type_one_error_monte_carlo(self):
        """Rejecting at level 0.05 flags a boundary candidate ~5% of the time."""
        rng = np.random.default_rng(42)
        n_total, sigma = 20_000, 0.01
        threshold = rare_threshold(n_total, sigma)  # exactly at the boundary
        m = 2_000
        trials = 400
        # Draw hypergeometric counts for a candidate with exactly σN rows.
        counts = rng.hypergeometric(threshold, n_total - threshold, m, size=trials)
        p = underrepresentation_pvalues(counts, n_total, sigma, m)
        false_positive_rate = np.mean(p <= 0.05)
        assert false_positive_rate <= 0.08  # 5% nominal + MC slack
