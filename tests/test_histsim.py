"""End-to-end statistical tests for the HistSim algorithm (Algorithm 1).

These run the pure algorithm against the in-memory ArraySampler on seeded
synthetic populations with known ground truth, checking the paper's
guarantees, stage bookkeeping, and the finite-data edge cases.
"""

import numpy as np
import pytest

from repro.core import (
    ArraySampler,
    HistSim,
    HistSimConfig,
    audit_result,
    run_histsim,
    select_matching,
    split_point,
    stage3_sample_target,
    true_top_k,
)


def synth_population(
    rng,
    sizes,
    distributions,
):
    """Build (z, x) columns: candidate i contributes sizes[i] rows with
    group values drawn from distributions[i]."""
    z_parts, x_parts = [], []
    for i, (size, dist) in enumerate(zip(sizes, distributions)):
        z_parts.append(np.full(size, i, dtype=np.int64))
        x_parts.append(rng.choice(len(dist), size=size, p=dist))
    z = np.concatenate(z_parts)
    x = np.concatenate(x_parts)
    return z, x


def exact_counts(z, x, candidates, groups):
    counts = np.zeros((candidates, groups), dtype=np.int64)
    np.add.at(counts, (z, x), 1)
    return counts


def tilted(base, group, amount):
    """A copy of ``base`` with probability mass shifted onto one group."""
    out = np.array(base, dtype=float)
    out[group] += amount
    return out / out.sum()


@pytest.fixture
def clear_separation():
    """20 candidates, 8 groups; 3 are near the target, the rest far."""
    rng = np.random.default_rng(1234)
    groups = 8
    target_dist = np.full(groups, 1.0 / groups)
    distributions = []
    for i in range(20):
        if i < 3:
            distributions.append(tilted(target_dist, i, 0.02))  # near target
        else:
            distributions.append(tilted(target_dist, i % groups, 0.9))  # far
    sizes = [12_000] * 20
    z, x = synth_population(rng, sizes, distributions)
    return z, x, 20, groups, target_dist


class TestHistSimBasics:
    def test_finds_true_top_k(self, clear_separation):
        z, x, candidates, groups, target = clear_separation
        sampler = ArraySampler(z, x, candidates, groups, np.random.default_rng(7))
        config = HistSimConfig(
            k=3, epsilon=0.15, delta=0.05, sigma=0.0, stage1_samples=5000
        )
        result = run_histsim(sampler, target, config)
        assert set(result.matching) == {0, 1, 2}

    def test_guarantees_hold(self, clear_separation):
        z, x, candidates, groups, target = clear_separation
        truth = exact_counts(z, x, candidates, groups)
        sampler = ArraySampler(z, x, candidates, groups, np.random.default_rng(8))
        config = HistSimConfig(
            k=3, epsilon=0.15, delta=0.05, sigma=0.0, stage1_samples=5000
        )
        result = run_histsim(sampler, target, config)
        audit = audit_result(result, truth, target, config.epsilon, config.sigma)
        assert audit.ok
        assert abs(audit.delta_d) < 0.10

    def test_distances_sorted_ascending(self, clear_separation):
        z, x, candidates, groups, target = clear_separation
        sampler = ArraySampler(z, x, candidates, groups, np.random.default_rng(9))
        config = HistSimConfig(k=5, epsilon=0.2, delta=0.05, sigma=0.0, stage1_samples=5000)
        result = run_histsim(sampler, target, config)
        assert np.all(np.diff(result.distances) >= 0)

    def test_uses_fewer_samples_than_scan(self, clear_separation):
        """The entire point of the paper: terminate before reading everything."""
        z, x, candidates, groups, target = clear_separation
        sampler = ArraySampler(z, x, candidates, groups, np.random.default_rng(10))
        config = HistSimConfig(
            k=3, epsilon=0.25, delta=0.05, sigma=0.0, stage1_samples=5000
        )
        result = run_histsim(sampler, target, config)
        assert not result.exact
        assert result.stats.total_samples < z.size

    def test_round_traces_delta_halving(self, clear_separation):
        z, x, candidates, groups, target = clear_separation
        sampler = ArraySampler(z, x, candidates, groups, np.random.default_rng(11))
        config = HistSimConfig(k=3, epsilon=0.1, delta=0.03, sigma=0.0, stage1_samples=5000)
        algo = HistSim(sampler, target, config)
        algo.run()
        for t, trace in enumerate(algo.rounds, start=1):
            assert trace.delta_upper == pytest.approx(0.01 / 2**t)
            assert trace.round_index == t

    def test_stats_cost_hook_invoked(self, clear_separation):
        z, x, candidates, groups, target = clear_separation
        sampler = ArraySampler(z, x, candidates, groups, np.random.default_rng(12))
        calls = []
        config = HistSimConfig(k=3, epsilon=0.2, delta=0.05, sigma=0.0, stage1_samples=5000)
        run_histsim(sampler, target, config, stats_cost=lambda st, ops: calls.append(st))
        assert "stage1" in calls
        assert "stage3" in calls


class TestStage1Pruning:
    def test_rare_candidates_pruned(self):
        rng = np.random.default_rng(5)
        groups = 4
        uniform = np.full(groups, 0.25)
        # 10 common candidates (~10k rows each), 5 rare (20 rows each).
        sizes = [10_000] * 10 + [20] * 5
        dists = [uniform] * 15
        z, x = synth_population(rng, sizes, dists)
        sampler = ArraySampler(z, x, 15, groups, np.random.default_rng(6))
        config = HistSimConfig(
            k=3, epsilon=0.2, delta=0.05, sigma=0.01, stage1_samples=20_000,
            stage1_max_fraction=0.5,
        )
        algo = HistSim(sampler, uniform, config)
        pruned = algo.run_stage1()
        truth_rows = np.bincount(z, minlength=15)
        # Everything pruned must truly be rare (precision, Lemma 1)...
        assert np.all(truth_rows[pruned] / z.size < config.sigma)
        # ...and with 20k samples the 20-row candidates are clearly flagged.
        assert pruned[10:].all()
        assert not pruned[:10].any()

    def test_sigma_zero_prunes_nothing(self):
        rng = np.random.default_rng(5)
        sizes = [100] * 5 + [5] * 5
        dists = [np.array([0.5, 0.5])] * 10
        z, x = synth_population(rng, sizes, dists)
        sampler = ArraySampler(z, x, 10, 2, np.random.default_rng(6))
        config = HistSimConfig(k=2, epsilon=0.3, delta=0.05, sigma=0.0)
        algo = HistSim(sampler, np.array([0.5, 0.5]), config)
        pruned = algo.run_stage1()
        assert not pruned.any()

    def test_pruned_candidates_never_output(self):
        rng = np.random.default_rng(15)
        groups = 4
        uniform = np.full(groups, 0.25)
        # The rare candidate matches the target perfectly; common ones do not.
        sizes = [50_000] * 6 + [30]
        dists = [tilted(uniform, i % groups, 0.5) for i in range(6)] + [uniform]
        z, x = synth_population(rng, sizes, dists)
        sampler = ArraySampler(z, x, 7, groups, np.random.default_rng(16))
        config = HistSimConfig(
            k=2, epsilon=0.2, delta=0.05, sigma=0.001, stage1_samples=50_000,
            stage1_max_fraction=0.5,
        )
        result = run_histsim(sampler, uniform, config)
        assert 6 in result.pruned
        assert 6 not in result.matching


class TestFiniteData:
    def test_tiny_dataset_goes_exact(self):
        rng = np.random.default_rng(21)
        sizes = [50] * 6
        dists = [np.array([0.3, 0.3, 0.4])] * 6
        z, x = synth_population(rng, sizes, dists)
        truth = exact_counts(z, x, 6, 3)
        sampler = ArraySampler(z, x, 6, 3, np.random.default_rng(22))
        target = np.array([1.0, 1.0, 1.0])
        config = HistSimConfig(k=2, epsilon=0.05, delta=0.01, sigma=0.0)
        result = run_histsim(sampler, target, config)
        assert result.exact
        expected = true_top_k(truth, target, 2)
        assert set(result.matching) == set(int(i) for i in expected)
        # Exact results: reconstruction error is zero.
        audit = audit_result(result, truth, target, config.epsilon, config.sigma)
        assert audit.worst_reconstruction_error == pytest.approx(0.0)

    def test_alive_not_more_than_k_skips_stage2(self):
        rng = np.random.default_rng(31)
        sizes = [1000] * 3
        dists = [np.array([0.5, 0.5])] * 3
        z, x = synth_population(rng, sizes, dists)
        sampler = ArraySampler(z, x, 3, 2, np.random.default_rng(32))
        config = HistSimConfig(k=5, epsilon=0.2, delta=0.05, sigma=0.0)
        result = run_histsim(sampler, np.array([0.5, 0.5]), config)
        assert len(result.matching) == 3
        assert result.stats.rounds == 0

    def test_stage3_reconstruction_target_met(self, clear_separation=None):
        rng = np.random.default_rng(41)
        groups = 6
        uniform = np.full(groups, 1.0 / groups)
        sizes = [40_000] * 8
        dists = [tilted(uniform, i % groups, 0.1 * i) for i in range(8)]
        z, x = synth_population(rng, sizes, dists)
        sampler = ArraySampler(z, x, 8, groups, np.random.default_rng(42))
        config = HistSimConfig(k=2, epsilon=0.15, delta=0.05, sigma=0.0)
        algo = HistSim(sampler, uniform, config)
        result = algo.run()
        target_n = stage3_sample_target(config.epsilon, config.delta, config.k, groups)
        for candidate in result.matching:
            n_i = algo.state.samples[candidate]
            n_total_i = algo.state.candidate_rows[candidate]
            assert n_i >= min(target_n, n_total_i)


class TestHelperFunctions:
    def test_select_matching_prefers_smallest(self):
        tau = np.array([0.5, 0.1, 0.3, 0.2])
        alive = np.array([True, True, True, True])
        np.testing.assert_array_equal(select_matching(tau, alive, 2), [1, 3])

    def test_select_matching_ignores_dead(self):
        tau = np.array([0.5, 0.1, 0.3, 0.2])
        alive = np.array([True, False, True, True])
        np.testing.assert_array_equal(select_matching(tau, alive, 2), [3, 2])

    def test_select_matching_handles_small_alive(self):
        tau = np.array([0.5, 0.1])
        alive = np.array([True, True])
        np.testing.assert_array_equal(select_matching(tau, alive, 5), [1, 0])

    def test_select_matching_k_equals_alive_count(self):
        tau = np.array([0.5, 0.1, 0.3, 0.2])
        alive = np.array([True, False, True, True])
        np.testing.assert_array_equal(select_matching(tau, alive, 3), [3, 2, 0])

    def test_select_matching_distance_ties_stable_by_index(self):
        """Definition 3: equal estimates break ties by candidate index."""
        tau = np.array([0.2, 0.1, 0.2, 0.1, 0.2])
        alive = np.ones(5, dtype=bool)
        np.testing.assert_array_equal(select_matching(tau, alive, 3), [1, 3, 0])
        np.testing.assert_array_equal(select_matching(tau, alive, 5), [1, 3, 0, 2, 4])

    def test_select_matching_no_alive(self):
        tau = np.array([0.5, 0.1])
        alive = np.array([False, False])
        assert select_matching(tau, alive, 2).size == 0

    def test_split_point_is_midpoint(self):
        tau = np.array([0.1, 0.2, 0.6, 0.8])
        s = split_point(tau, np.array([0, 1]), np.array([2, 3]))
        assert s == pytest.approx(0.4)

    def test_split_point_requires_both_sides(self):
        with pytest.raises(ValueError):
            split_point(np.array([0.1]), np.array([0]), np.array([], dtype=int))

    def test_split_point_requires_nonempty_matching(self):
        with pytest.raises(ValueError):
            split_point(np.array([0.1]), np.array([], dtype=int), np.array([0]))

    def test_split_point_with_ties_across_boundary(self):
        """Equal k-th and (k+1)-th distances: s sits exactly on the tie."""
        tau = np.array([0.1, 0.3, 0.3, 0.9])
        s = split_point(tau, np.array([0, 1]), np.array([2, 3]))
        assert s == pytest.approx(0.3)


class TestGuaranteeMonteCarlo:
    """Run the algorithm repeatedly: violations must be far rarer than δ.

    The paper reports zero violations over all runs (Section 5.4), noting δ
    is a loose bound; we allow at most 1 of 15 seeded runs to fail at
    δ = 0.05 (expected: none).
    """

    def test_repeated_runs_satisfy_guarantees(self):
        rng = np.random.default_rng(99)
        groups = 8
        target = np.full(groups, 1.0 / groups)
        dists = [tilted(target, i % groups, 0.03 + 0.05 * (i % 7)) for i in range(25)]
        sizes = [8_000] * 25
        z, x = synth_population(rng, sizes, dists)
        truth = exact_counts(z, x, 25, groups)
        config = HistSimConfig(
            k=4, epsilon=0.12, delta=0.05, sigma=0.0, stage1_samples=5000
        )
        failures = 0
        for seed in range(15):
            sampler = ArraySampler(z, x, 25, groups, np.random.default_rng(seed))
            result = run_histsim(sampler, target, config)
            audit = audit_result(result, truth, target, config.epsilon, config.sigma)
            if not audit.ok:
                failures += 1
        assert failures <= 1
