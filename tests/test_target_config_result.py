"""Tests for TargetSpec resolution, HistSimConfig validation, and result types."""

import numpy as np
import pytest

from repro.core.config import DEFAULT_CONFIG, HistSimConfig
from repro.core.result import MatchResult, StageStats
from repro.core.target import TargetSpec, resolve_target, uniform_target


class TestUniformTarget:
    def test_values(self):
        np.testing.assert_allclose(uniform_target(4), [0.25] * 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_target(0)


class TestTargetSpec:
    def setup_method(self):
        self.exact = np.array(
            [
                [10.0, 10.0, 10.0, 10.0],  # exactly uniform
                [40.0, 0.0, 0.0, 0.0],
                [5.0, 5.0, 5.0, 6.0],  # near uniform
                [0.0, 0.0, 0.0, 0.0],  # empty candidate
            ]
        )

    def test_explicit(self):
        spec = TargetSpec(kind="explicit", vector=(0.25, 0.125, 0.5, 0.125))
        np.testing.assert_allclose(
            resolve_target(spec, self.exact), [0.25, 0.125, 0.5, 0.125]
        )

    def test_explicit_wrong_length(self):
        spec = TargetSpec(kind="explicit", vector=(0.5, 0.5))
        with pytest.raises(ValueError):
            resolve_target(spec, self.exact)

    def test_candidate(self):
        spec = TargetSpec(kind="candidate", candidate=1)
        np.testing.assert_allclose(resolve_target(spec, self.exact), [40, 0, 0, 0])

    def test_candidate_out_of_range(self):
        with pytest.raises(ValueError):
            resolve_target(TargetSpec(kind="candidate", candidate=9), self.exact)

    def test_empty_candidate_rejected(self):
        with pytest.raises(ValueError):
            resolve_target(TargetSpec(kind="candidate", candidate=3), self.exact)

    def test_closest_to_uniform_picks_exact_uniform(self):
        spec = TargetSpec(kind="closest_to_uniform")
        np.testing.assert_allclose(resolve_target(spec, self.exact), self.exact[0])

    def test_closest_to_uniform_ignores_empty(self):
        exact = np.array([[0.0, 0.0], [10.0, 0.0]])
        spec = TargetSpec(kind="closest_to_uniform")
        np.testing.assert_allclose(resolve_target(spec, exact), [10.0, 0.0])

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TargetSpec(kind="nonsense")
        with pytest.raises(ValueError):
            TargetSpec(kind="explicit")
        with pytest.raises(ValueError):
            TargetSpec(kind="candidate")


class TestHistSimConfig:
    def test_defaults_match_paper(self):
        assert DEFAULT_CONFIG.epsilon == 0.04
        assert DEFAULT_CONFIG.delta == 0.01
        assert DEFAULT_CONFIG.sigma == 0.0008
        assert DEFAULT_CONFIG.stage1_samples == 500_000
        assert DEFAULT_CONFIG.lookahead == 1024
        assert DEFAULT_CONFIG.k == 10

    def test_stage_delta_is_a_third(self):
        assert HistSimConfig(delta=0.03).stage_delta == pytest.approx(0.01)

    def test_effective_stage1_samples_caps_at_fraction(self):
        cfg = HistSimConfig(stage1_samples=500_000, stage1_max_fraction=0.1)
        assert cfg.effective_stage1_samples(1_000_000) == 100_000
        assert cfg.effective_stage1_samples(100_000_000) == 500_000
        assert cfg.effective_stage1_samples(10) == 1

    def test_with_functional_update(self):
        cfg = DEFAULT_CONFIG.with_(epsilon=0.08)
        assert cfg.epsilon == 0.08
        assert DEFAULT_CONFIG.epsilon == 0.04

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"epsilon": 0.0},
            {"epsilon": 2.5},
            {"delta": 0.0},
            {"delta": 1.0},
            {"sigma": -0.1},
            {"sigma": 1.5},
            {"stage1_samples": 0},
            {"stage1_max_fraction": 0.0},
            {"lookahead": 0},
            {"min_round_samples": 0},
            {"max_rounds": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HistSimConfig(**kwargs)


class TestResultTypes:
    def test_stage_stats_total(self):
        stats = StageStats(stage1_samples=10, stage2_samples=20, stage3_samples=5)
        assert stats.total_samples == 35

    def test_histogram_for(self):
        result = MatchResult(
            matching=(3, 7),
            histograms=np.array([[1, 2], [3, 4]]),
            distances=np.array([0.1, 0.2]),
            pruned=(),
            exact=False,
            stats=StageStats(),
        )
        np.testing.assert_array_equal(result.histogram_for(7), [3, 4])
        assert result.k == 2
        with pytest.raises(KeyError):
            result.histogram_for(5)
