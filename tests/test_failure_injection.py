"""Failure injection and adversarial edge cases across the stack."""

import numpy as np
import pytest

from repro.bitmap import BlockBitmapIndex, build_density_map
from repro.core import ArraySampler, HistSim, HistSimConfig, run_histsim
from repro.sampling import BlockSamplingEngine, DensityAnyActivePolicy, ScanAllPolicy
from repro.sampling.policies import PolicyDecision
from repro.storage import (
    CategoricalAttribute,
    ColumnTable,
    CostModel,
    Schema,
    shuffle_table,
)
from repro.system import SimulatedClock


def small_world(n=4000, candidates=6, groups=3, seed=0, block_size=32):
    rng = np.random.default_rng(seed)
    schema = Schema(
        (
            CategoricalAttribute("z", tuple(f"z{i}" for i in range(candidates))),
            CategoricalAttribute("x", tuple(f"x{i}" for i in range(groups))),
        )
    )
    table = ColumnTable(
        schema,
        {"z": rng.integers(0, candidates, size=n), "x": rng.integers(0, groups, size=n)},
    )
    shuffled = shuffle_table(table, block_size, rng)
    index = BlockBitmapIndex.build(shuffled.table.column("z"), candidates, block_size)
    return shuffled, index


class RefusesToReadPolicy:
    """Adversarial policy: claims nothing is worth reading."""

    name = "refuses"
    overlaps_io = True

    def select(self, index, blocks, active_values, cost_model, resident):
        return PolicyDecision(
            read_mask=np.zeros(blocks.size, dtype=bool),
            mark_cost_ns=0.0,
            overlaps_io=True,
            probes=0,
        )


class TestEngineFailureModes:
    def test_refusing_policy_trips_window_budget(self):
        """A policy that never reads must raise, not loop forever."""
        shuffled, index = small_world()
        engine = BlockSamplingEngine(
            shuffled, "z", "x", index, CostModel(), SimulatedClock(),
            policy=RefusesToReadPolicy(), rng=np.random.default_rng(1),
            window_blocks=16,
        )
        with pytest.raises(RuntimeError, match="window budget"):
            engine.sample_until(np.full(6, 50.0))

    def test_histsim_survives_degenerate_single_candidate(self):
        rng = np.random.default_rng(2)
        z = np.zeros(5000, dtype=np.int64)
        x = rng.integers(0, 4, size=5000)
        sampler = ArraySampler(z, x, 1, 4, rng)
        config = HistSimConfig(k=1, epsilon=0.2, delta=0.05, sigma=0.0)
        result = run_histsim(sampler, np.ones(4), config)
        assert result.matching == (0,)

    def test_histsim_single_group_support(self):
        """|V_X| = 1: every distance is zero; output must still be valid."""
        rng = np.random.default_rng(3)
        z = rng.integers(0, 5, size=5000)
        x = np.zeros(5000, dtype=np.int64)
        sampler = ArraySampler(z, x, 5, 1, rng)
        config = HistSimConfig(k=2, epsilon=0.2, delta=0.05, sigma=0.0)
        result = run_histsim(sampler, np.ones(1), config)
        assert len(result.matching) == 2
        np.testing.assert_allclose(result.distances, 0.0)

    def test_histsim_rejects_bad_targets(self):
        rng = np.random.default_rng(4)
        sampler = ArraySampler(
            rng.integers(0, 3, size=100), rng.integers(0, 2, size=100), 3, 2, rng
        )
        config = HistSimConfig(k=1, epsilon=0.2, delta=0.05)
        with pytest.raises(ValueError):
            HistSim(sampler, np.zeros(2), config)  # zero mass
        with pytest.raises(ValueError):
            HistSim(sampler, np.array([1.0, -1.0]), config)  # negative
        with pytest.raises(ValueError):
            HistSim(sampler, np.ones(3), config)  # wrong support

    def test_k_larger_than_candidate_count(self):
        rng = np.random.default_rng(5)
        sampler = ArraySampler(
            rng.integers(0, 3, size=3000), rng.integers(0, 2, size=3000), 3, 2, rng
        )
        config = HistSimConfig(k=10, epsilon=0.2, delta=0.05, sigma=0.0)
        result = run_histsim(sampler, np.ones(2), config)
        assert len(result.matching) == 3

    def test_empty_candidate_never_matches(self):
        """A candidate with zero rows must not be returned ahead of real ones."""
        rng = np.random.default_rng(6)
        z = rng.integers(1, 4, size=4000)  # candidate 0 absent entirely
        x = rng.integers(0, 3, size=4000)
        sampler = ArraySampler(z, x, 4, 3, rng)
        config = HistSimConfig(k=3, epsilon=0.2, delta=0.05, sigma=0.0)
        result = run_histsim(sampler, np.ones(3), config)
        assert 0 not in result.matching

    def test_max_rounds_fallback_is_exact(self):
        """Forcing stage 2 to exhaust its round budget falls back to a scan."""
        rng = np.random.default_rng(7)
        # Two candidates with identical distributions: impossible to separate.
        z = rng.integers(0, 4, size=20_000)
        x = rng.integers(0, 4, size=20_000)
        sampler = ArraySampler(z, x, 4, 4, rng)
        config = HistSimConfig(
            k=2, epsilon=0.01, delta=0.01, sigma=0.0, max_rounds=2,
            min_round_samples=64,
        )
        result = run_histsim(sampler, np.ones(4), config)
        assert result.exact  # fell back to the always-correct full scan
        assert len(result.matching) == 2


class TestDensityAnyActivePolicy:
    def test_selects_blocks_with_matching_predicate_tuples(self):
        shuffled, index = small_world(n=2000, candidates=6, block_size=16)
        density = build_density_map(shuffled, "z")
        # Candidate 0 accepts z in {1, 2}; candidate 1 accepts z = 5.
        masks = np.zeros((2, 6), dtype=bool)
        masks[0, [1, 2]] = True
        masks[1, 5] = True
        policy = DensityAnyActivePolicy(masks, density)
        blocks = np.arange(shuffled.num_blocks)
        decision = policy.select(
            index, blocks, np.array([0]), CostModel(), resident=True
        )
        col = shuffled.table.column("z")
        for b in blocks:
            chunk = col[b * 16 : (b + 1) * 16]
            assert decision.read_mask[b] == bool(np.isin(chunk, [1, 2]).any())

    def test_union_over_active_candidates(self):
        shuffled, index = small_world(n=2000, candidates=6, block_size=16)
        density = build_density_map(shuffled, "z")
        masks = np.zeros((2, 6), dtype=bool)
        masks[0, 1] = True
        masks[1, 5] = True
        policy = DensityAnyActivePolicy(masks, density)
        blocks = np.arange(shuffled.num_blocks)
        both = policy.select(index, blocks, np.array([0, 1]), CostModel(), True)
        only0 = policy.select(index, blocks, np.array([0]), CostModel(), True)
        assert both.read_mask.sum() >= only0.read_mask.sum()

    def test_no_active_reads_nothing(self):
        shuffled, index = small_world(n=500, block_size=16)
        density = build_density_map(shuffled, "z")
        policy = DensityAnyActivePolicy(np.zeros((1, 6), dtype=bool), density)
        decision = policy.select(
            index, np.arange(5), np.array([], dtype=int), CostModel(), True
        )
        assert not decision.read_mask.any()

    def test_out_of_range_candidate_rejected(self):
        shuffled, index = small_world(n=500, block_size=16)
        density = build_density_map(shuffled, "z")
        policy = DensityAnyActivePolicy(np.zeros((1, 6), dtype=bool), density)
        with pytest.raises(ValueError):
            policy.select(index, np.arange(5), np.array([3]), CostModel(), True)


class TestStateCorruptionGuards:
    def test_engine_rejects_misshapen_filter(self):
        shuffled, index = small_world()
        with pytest.raises(ValueError):
            BlockSamplingEngine(
                shuffled, "z", "x", index, CostModel(), SimulatedClock(),
                policy=ScanAllPolicy(), rng=np.random.default_rng(0),
                row_filter=np.ones(10, dtype=bool),
            )

    def test_engine_rejects_bad_start_block(self):
        shuffled, index = small_world()
        with pytest.raises(ValueError):
            BlockSamplingEngine(
                shuffled, "z", "x", index, CostModel(), SimulatedClock(),
                policy=ScanAllPolicy(), rng=np.random.default_rng(0),
                start_block=10_000,
            )

    def test_engine_rejects_bad_window(self):
        shuffled, index = small_world()
        with pytest.raises(ValueError):
            BlockSamplingEngine(
                shuffled, "z", "x", index, CostModel(), SimulatedClock(),
                policy=ScanAllPolicy(), rng=np.random.default_rng(0),
                window_blocks=0,
            )

    def test_negative_uniform_request_rejected(self):
        shuffled, index = small_world()
        engine = BlockSamplingEngine(
            shuffled, "z", "x", index, CostModel(), SimulatedClock(),
            policy=ScanAllPolicy(), rng=np.random.default_rng(0),
        )
        with pytest.raises(ValueError):
            engine.sample_uniform(-1)
