"""Property-based fuzzing of HistSim on random small populations.

Whatever the population looks like, a finished run must produce
structurally valid output, and — because these populations are small
enough that runs frequently go exact — the guarantees must hold whenever
audited.  This complements the targeted statistical tests in
test_histsim.py with breadth.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ArraySampler,
    HistSimConfig,
    audit_result,
    run_histsim,
    uniform_target,
)


@st.composite
def populations(draw):
    num_candidates = draw(st.integers(min_value=1, max_value=12))
    num_groups = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rows = draw(st.integers(min_value=num_candidates, max_value=4000))
    k = draw(st.integers(min_value=1, max_value=num_candidates))
    rng = np.random.default_rng(seed)
    z = rng.integers(0, num_candidates, size=rows)
    x = rng.integers(0, num_groups, size=rows)
    return z, x, num_candidates, num_groups, k, seed


@given(populations())
@settings(max_examples=60, deadline=None)
def test_histsim_structural_invariants(population):
    z, x, num_candidates, num_groups, k, seed = population
    rng = np.random.default_rng(seed + 1)
    sampler = ArraySampler(z, x, num_candidates, num_groups, rng, batch_size=257)
    config = HistSimConfig(
        k=k, epsilon=0.3, delta=0.1, sigma=0.0, stage1_samples=200,
        min_round_samples=32,
    )
    target = uniform_target(num_groups)
    result = run_histsim(sampler, target, config)

    # Output structure.
    assert len(result.matching) == len(set(result.matching))
    assert len(result.matching) <= k
    assert result.histograms.shape == (len(result.matching), num_groups)
    assert np.all(np.diff(result.distances) >= -1e-12)
    assert np.all((result.distances >= 0) & (result.distances <= 2.0 + 1e-12))

    # Sampling accounting: never deliver more rows than exist.
    assert result.stats.total_samples <= z.size

    # Matching and pruned sets are disjoint; all indices valid.
    assert not (set(result.matching) & set(result.pruned))
    assert all(0 <= c < num_candidates for c in result.matching)

    # Guarantees against ground truth (sigma=0: every candidate eligible).
    exact = np.zeros((num_candidates, num_groups), dtype=np.int64)
    np.add.at(exact, (z, x), 1)
    if result.exact:
        audit = audit_result(result, exact, target, config.epsilon, config.sigma)
        assert audit.reconstruction_ok  # exact runs reconstruct perfectly


@given(populations())
@settings(max_examples=30, deadline=None)
def test_histsim_deterministic_given_seed(population):
    z, x, num_candidates, num_groups, k, seed = population
    config = HistSimConfig(
        k=k, epsilon=0.3, delta=0.1, sigma=0.0, stage1_samples=200,
        min_round_samples=32,
    )
    target = uniform_target(num_groups)

    def one_run():
        sampler = ArraySampler(
            z, x, num_candidates, num_groups, np.random.default_rng(seed), batch_size=97
        )
        return run_histsim(sampler, target, config)

    a, b = one_run(), one_run()
    assert a.matching == b.matching
    np.testing.assert_array_equal(a.histograms, b.histograms)
    assert a.stats.total_samples == b.stats.total_samples
