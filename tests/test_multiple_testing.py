"""Tests for Holm–Bonferroni and the Lemma 4 simultaneous tester."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.multiple_testing import (
    bonferroni,
    holm_bonferroni,
    simultaneous_rejection,
    simultaneous_rejection_log,
)

pvalue_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=0, max_value=64),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


class TestHolmBonferroni:
    def test_textbook_example(self):
        """Classic Holm worked example: p = (0.01, 0.04, 0.03, 0.005) at α=0.05."""
        p = np.array([0.01, 0.04, 0.03, 0.005])
        rejected = holm_bonferroni(p, 0.05)
        # sorted: 0.005 <= 0.05/4, 0.01 <= 0.05/3, 0.03 > 0.05/2 -> stop.
        np.testing.assert_array_equal(rejected, [True, False, False, True])

    def test_step_down_stops_at_first_failure(self):
        # 0.001 <= alpha/3; 0.02 > alpha/2 stops; 0.003 (would pass alpha/1) must NOT reject.
        p = np.array([0.02, 0.001, 0.003])
        rejected = holm_bonferroni(p, 0.05)
        # sorted: 0.001 <= 0.0167 ok; 0.003 <= 0.025 ok; 0.02 <= 0.05 ok -> all reject!
        np.testing.assert_array_equal(rejected, [True, True, True])

    def test_step_down_blocks_later_passes(self):
        p = np.array([0.0001, 0.5, 0.04])
        rejected = holm_bonferroni(p, 0.05)
        # sorted: 0.0001 <= 0.05/3 ok; 0.04 > 0.05/2 stop; 0.5 blocked.
        np.testing.assert_array_equal(rejected, [True, False, False])

    def test_empty_family(self):
        assert holm_bonferroni(np.array([]), 0.05).size == 0

    def test_all_ones_reject_nothing(self):
        assert not holm_bonferroni(np.ones(10), 0.05).any()

    def test_all_zeros_reject_everything(self):
        assert holm_bonferroni(np.zeros(10), 0.05).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            holm_bonferroni(np.array([0.5]), 0.0)
        with pytest.raises(ValueError):
            holm_bonferroni(np.array([1.5]), 0.05)
        with pytest.raises(ValueError):
            holm_bonferroni(np.array([np.nan]), 0.05)

    @given(pvalue_arrays, st.floats(min_value=0.001, max_value=0.2))
    @settings(max_examples=120)
    def test_uniformly_more_powerful_than_bonferroni(self, p, alpha):
        """Every Bonferroni rejection is also a Holm rejection (Section 3.2)."""
        holm = holm_bonferroni(p, alpha)
        bonf = bonferroni(p, alpha)
        assert np.all(holm[bonf])

    @given(pvalue_arrays, st.floats(min_value=0.001, max_value=0.2))
    @settings(max_examples=120)
    def test_rejections_form_prefix_of_sorted_pvalues(self, p, alpha):
        rejected = holm_bonferroni(p, alpha)
        if rejected.any() and (~rejected).any():
            assert p[rejected].max() <= p[~rejected].min() + 1e-15

    def test_family_wise_error_monte_carlo(self):
        """Under the global null, FWER at α=0.1 should be ≤ ~0.1."""
        rng = np.random.default_rng(3)
        errors = 0
        trials = 500
        for _ in range(trials):
            p = rng.uniform(size=20)
            if holm_bonferroni(p, 0.1).any():
                errors += 1
        assert errors / trials <= 0.13


class TestSimultaneousRejection:
    def test_rejects_iff_max_below_threshold(self):
        assert simultaneous_rejection(np.array([0.001, 0.002]), 0.01)
        assert not simultaneous_rejection(np.array([0.001, 0.02]), 0.01)

    def test_empty_family_rejects_vacuously(self):
        assert simultaneous_rejection(np.array([]), 0.01)

    def test_log_variant_matches(self):
        p = np.array([1e-5, 1e-8, 1e-3])
        assert simultaneous_rejection(p, 0.01) == simultaneous_rejection_log(
            np.log(p), 0.01
        )
        p2 = np.array([1e-5, 0.5])
        assert simultaneous_rejection(p2, 0.01) == simultaneous_rejection_log(
            np.log(p2), 0.01
        )

    def test_log_variant_handles_neg_inf(self):
        assert simultaneous_rejection_log(np.array([-np.inf, np.log(1e-9)]), 0.01)

    def test_log_variant_rejects_positive_logp(self):
        with pytest.raises(ValueError):
            simultaneous_rejection_log(np.array([0.5]), 0.01)

    @given(pvalue_arrays.filter(lambda p: p.size > 0))
    @settings(max_examples=60)
    def test_all_or_nothing_semantics(self, p):
        """Rejecting implies every p-value individually cleared the bar."""
        if simultaneous_rejection(p, 0.05):
            assert np.all(p <= 0.05)
