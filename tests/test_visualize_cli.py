"""Tests for ASCII visualization rendering and the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.result import MatchResult, StageStats
from repro.system.visualize import render_comparison, render_histogram, render_result


class TestRenderHistogram:
    def test_contains_bars_and_shares(self):
        out = render_histogram(np.array([10, 30, 60]), title="demo")
        assert "demo" in out
        lines = out.splitlines()[1:]
        assert len(lines) == 3
        assert "60.0%" in lines[2]
        # The largest bucket gets the longest bar.
        assert lines[2].count("█") > lines[0].count("█")

    def test_custom_labels(self):
        out = render_histogram(np.array([1, 1]), labels=["mon", "tue"])
        assert "mon" in out and "tue" in out

    def test_zero_histogram_renders(self):
        out = render_histogram(np.zeros(3))
        assert out.count("|") == 6  # bars empty but aligned

    def test_validation(self):
        with pytest.raises(ValueError):
            render_histogram(np.ones((2, 2)))
        with pytest.raises(ValueError):
            render_histogram(np.ones(3), labels=["a"])
        with pytest.raises(ValueError):
            render_histogram(np.ones(3), width=2)


class TestRenderComparison:
    def test_shows_distance_and_names(self):
        out = render_comparison(
            np.array([1.0, 1.0]), np.array([1.0, 3.0]),
            target_name="greece", candidate_name="italy",
        )
        assert "greece" in out and "italy" in out
        assert "0.500" in out  # L1 distance of these two

    def test_identical_histograms_zero_distance(self):
        h = np.array([2.0, 5.0, 3.0])
        out = render_comparison(h, 10 * h)
        assert "0.000" in out

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            render_comparison(np.ones(2), np.ones(3))


class TestRenderResult:
    def make_result(self):
        return MatchResult(
            matching=(4, 7, 2),
            histograms=np.array([[5, 5], [8, 2], [1, 9]]),
            distances=np.array([0.0, 0.6, 0.8]),
            pruned=(),
            exact=False,
            stats=StageStats(),
        )

    def test_panels_ordered_closest_first(self):
        out = render_result(self.make_result(), np.array([1.0, 1.0]), max_candidates=2)
        assert "#1 candidate 4" in out
        assert "#2 candidate 7" in out
        assert "candidate 2" not in out  # truncated at max_candidates

    def test_custom_labels(self):
        labels = [f"P{i}" for i in range(10)]
        out = render_result(
            self.make_result(), np.array([1.0, 1.0]),
            candidate_labels=labels, max_candidates=1,
        )
        assert "#1 P4" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            render_result(self.make_result(), np.ones(2), max_candidates=0)


class TestCli:
    def test_list_queries(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "flights-q1" in out and "police-q3" in out

    def test_query_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_parser_defaults(self):
        args = build_parser().parse_args(["--query", "flights-q1"])
        assert args.approach == "fastmatch"
        assert args.epsilon == 0.1

    def test_end_to_end_run(self, capsys):
        code = main([
            "--query", "police-q1",
            "--rows", "200000",
            "--epsilon", "0.2",
            "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "guarantees" in out
        assert "separation=OK" in out
        assert "matches" in out
        assert "█" in out  # rendered panels

    def test_scan_approach_and_no_render(self, capsys):
        code = main([
            "--query", "police-q1",
            "--approach", "scan",
            "--rows", "200000",
            "--no-render",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1.00x vs scan" in out
        assert "█" not in out
