"""Tests for the one-call front door (repro.match.match_histograms) and the
Theorem-1 empirical coverage + composite-group-by integrations."""

import numpy as np
import pytest

from repro.core import ArraySampler, HistSimConfig, run_histsim
from repro.core.deviation import epsilon_given_samples
from repro.core.target import TargetSpec
from repro.extensions import composite_grouping
from repro.match import match_histograms
from repro.query import Equals
from repro.storage import CategoricalAttribute, ColumnTable, Schema


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(31)
    n = 120_000
    candidates, groups = 20, 6
    z = rng.integers(0, candidates, size=n)
    x = np.empty(n, dtype=np.int64)
    for c in range(candidates):
        mask = z == c
        base = np.full(groups, 1.0 / groups)
        if c >= 3:
            base[c % groups] += 0.7
            base /= base.sum()
        x[mask] = rng.choice(groups, size=int(mask.sum()), p=base)
    schema = Schema(
        (
            CategoricalAttribute("product", tuple(f"p{i}" for i in range(candidates))),
            CategoricalAttribute("age", tuple(f"a{i}" for i in range(groups))),
            CategoricalAttribute("channel", ("web", "store")),
        )
    )
    return ColumnTable(
        schema,
        {"product": z, "age": x, "channel": rng.integers(0, 2, size=n)},
    )


class TestMatchHistograms:
    def test_default_uniform_target(self, table):
        report = match_histograms(table, "product", "age", k=3, epsilon=0.15, seed=1)
        assert set(report.result.matching) == {0, 1, 2}
        assert report.audit.ok

    def test_candidate_target_as_int(self, table):
        report = match_histograms(table, "product", "age", target=5, k=1, epsilon=0.2, seed=1)
        # Candidates 5, 11, 17 share the same planted profile (peak = c mod 6),
        # so any of them is a correct closest match within epsilon.
        assert report.result.matching[0] in {5, 11, 17}
        assert report.audit.ok

    def test_explicit_vector_target(self, table):
        report = match_histograms(
            table, "product", "age", target=np.full(6, 1 / 6), k=3, epsilon=0.15, seed=1
        )
        assert set(report.result.matching) == {0, 1, 2}

    def test_target_spec_passthrough(self, table):
        spec = TargetSpec(kind="candidate", candidate=7)
        report = match_histograms(table, "product", "age", target=spec, k=1, epsilon=0.2)
        # 7, 13, 19 share the planted profile (peak = c mod 6): all correct.
        assert report.result.matching[0] in {7, 13, 19}

    def test_predicate(self, table):
        report = match_histograms(
            table, "product", "age", k=3, epsilon=0.2,
            predicate=Equals("channel", 0), seed=2,
        )
        assert report.audit.ok
        assert report.result.stats.total_samples <= int(
            (table.column("channel") == 0).sum()
        )

    def test_exact_scan_approach(self, table):
        report = match_histograms(table, "product", "age", k=3, approach="scan")
        assert report.result.exact
        assert report.audit.delta_d == pytest.approx(0.0)


class TestTheorem1Coverage:
    def test_empirical_coverage_of_l1_bound(self):
        """Monte Carlo: P(||r̂ − r*||₁ ≥ ε(n, δ)) must be ≤ δ.

        Theorem 1 is conservative (union bound over 2^v sign patterns), so
        the empirical violation rate should be far below δ.
        """
        rng = np.random.default_rng(77)
        v, n, delta = 6, 400, 0.1
        p = rng.dirichlet(np.ones(v))
        eps = epsilon_given_samples(n, delta, v)
        violations = 0
        trials = 300
        for _ in range(trials):
            sample = rng.multinomial(n, p) / n
            if np.abs(sample - p).sum() >= eps:
                violations += 1
        assert violations / trials <= delta

    def test_bound_is_conservative_not_vacuous(self):
        """ε(n, δ) should be within ~10x of typical deviations, not absurd."""
        rng = np.random.default_rng(78)
        v, n = 6, 400
        p = np.full(v, 1 / v)
        typical = np.mean(
            [np.abs(rng.multinomial(n, p) / n - p).sum() for _ in range(200)]
        )
        eps = epsilon_given_samples(n, 0.1, v)
        assert typical < eps < 12 * typical


class TestCompositeGroupByIntegration:
    def test_histsim_over_composite_support(self, table):
        """Appendix A.1.3 end to end: group by (age, channel) jointly."""
        codes, cardinality, labels = composite_grouping(table, ("age", "channel"))
        assert cardinality == 12
        z = table.column("product").astype(np.int64)
        rng = np.random.default_rng(3)
        sampler = ArraySampler(z, codes, 20, cardinality, rng)
        config = HistSimConfig(k=3, epsilon=0.25, delta=0.05, sigma=0.0)
        result = run_histsim(sampler, np.ones(cardinality), config)
        # channel is independent of age, so near-uniform-over-age products
        # stay near uniform over the product support.
        assert set(result.matching) == {0, 1, 2}
