"""Counting-kernel layer: byte-identity, auto-selection, bytes-moved
accounting, the pair-code artifact cache, and affinity-aware placement.

Acceptance properties of the native-speed-kernels PR:

- every kernel (classic / narrow / fused) produces byte-identical count
  matrices to a straight-line legacy reference, across stored dtypes,
  code-space cardinalities, filter shapes, and block-subset geometries;
- auto-selection picks the narrowest exact path and degrades gracefully
  (``fused`` without a prepared code column falls back, never fails);
- end-to-end runs are byte-identical (answers, simulated clock, RunReport
  counters) across serial / threads / sharded x every kernel spec;
- the fused kernel measurably moves fewer bytes than the classic one
  (profiler ``bytes_moved``), which is the whole point;
- ``MatchSession(kernel="fused")`` caches the pair-code column as a
  prepared artifact: repeats hit, eviction releases it;
- affinity planning is deterministic and pinning is best-effort everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HistSimConfig
from repro.core.target import TargetSpec
from repro.obs import Profiler
from repro.parallel import (
    AFFINITY_POLICIES,
    KERNEL_SPECS,
    ShardedBackend,
    ThreadPoolBackend,
    WorkerPool,
    apply_affinity,
    build_pair_codes,
    count_shard,
    count_window,
    make_backend,
    pair_code_dtype,
    plan_affinity,
    resolve_kernel,
)
from repro.query import Equals, HistogramQuery
from repro.storage import CategoricalAttribute, ColumnTable, Schema
from repro.storage.blocks import BlockLayout
from repro.system import MatchSession


# ---------------------------------------------------------------------------
# pair-code dtype + auto-selection
# ---------------------------------------------------------------------------


class TestPairCodeDtype:
    @pytest.mark.parametrize("c,g,expected", [
        (1, 1, np.uint8),
        (16, 16, np.uint8),          # 256 codes -> max 255 fits uint8
        (16, 17, np.uint16),         # 272 codes -> uint16
        (256, 256, np.uint16),       # 65536 codes -> max 65535 fits uint16
        (256, 257, np.uint32),
        (2**16, 2**16, np.uint32),   # 2^32 codes -> max 2^32-1 fits uint32
        (2**17, 2**16, np.int64),    # over uint32: int64, never uint64
    ])
    def test_narrowest_dtype(self, c, g, expected):
        assert pair_code_dtype(c, g) == np.dtype(expected)

    def test_never_uint64(self):
        # np.bincount rejects uint64 input; the fallback must be int64.
        assert pair_code_dtype(2**32, 2**31) == np.dtype(np.int64)

    def test_degenerate_zero(self):
        assert pair_code_dtype(0, 0) == np.dtype(np.uint8)


class TestResolveKernel:
    def test_classic_always_wins_when_asked(self):
        codes = np.zeros(4, dtype=np.uint8)
        assert resolve_kernel("classic", 4, 4, codes=codes) == "classic"

    def test_codes_force_fused(self):
        codes = np.zeros(4, dtype=np.uint8)
        assert resolve_kernel("auto", 4, 4, codes=codes) == "fused"
        assert resolve_kernel("narrow", 4, 4, codes=codes) == "fused"

    def test_auto_narrow_when_codes_fit(self):
        assert resolve_kernel("auto", 16, 16) == "narrow"

    def test_auto_classic_when_code_space_huge(self):
        assert resolve_kernel("auto", 2**17, 2**16) == "classic"

    def test_fused_without_codes_degrades(self):
        assert resolve_kernel("fused", 16, 16) == "narrow"
        assert resolve_kernel("fused", 2**17, 2**16) == "classic"

    def test_rejects_unknown_spec(self):
        with pytest.raises(ValueError):
            resolve_kernel("turbo", 4, 4)


# ---------------------------------------------------------------------------
# count_window byte-identity matrix
# ---------------------------------------------------------------------------


def legacy_reference(z, x, blocks, layout, c, g, row_filter=None, filter_slice=None):
    """The pre-kernel serial arithmetic, verbatim (the identity oracle)."""
    rows = layout.rows_of_blocks(np.asarray(blocks, dtype=np.int64))
    zz = z[rows].astype(np.int64)
    xx = x[rows].astype(np.int64)
    keep = row_filter[rows] if row_filter is not None else filter_slice
    if keep is not None:
        zz = zz[keep]
        xx = xx[keep]
    flat = np.bincount(zz * g + xx, minlength=c * g)
    return flat.reshape(c, g)


def block_subsets(num_blocks):
    return {
        "all": np.arange(num_blocks, dtype=np.int64),
        "contiguous": np.arange(2, min(9, num_blocks), dtype=np.int64),
        "scattered": np.arange(0, num_blocks, 3, dtype=np.int64),
        "single": np.array([num_blocks // 2], dtype=np.int64),
    }


class TestCountWindowIdentity:
    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.uint32, np.int64])
    @pytest.mark.parametrize("c,g", [(7, 5), (40, 30), (300, 300)])
    @pytest.mark.parametrize("filter_kind", ["none", "row_filter", "filter_slice"])
    def test_all_kernels_match_legacy(self, dtype, c, g, filter_kind):
        rng = np.random.default_rng(hash((c, g, filter_kind)) % 2**32)
        n, block_size = 1003, 32  # short final block on purpose
        layout = BlockLayout(num_rows=n, block_size=block_size)
        z = rng.integers(0, c, size=n).astype(dtype)
        x = rng.integers(0, g, size=n).astype(dtype)
        codes = build_pair_codes(z, x, c, g)
        row_filter = rng.random(n) < 0.6 if filter_kind == "row_filter" else None

        for name, blocks in block_subsets(layout.num_blocks).items():
            filter_slice = None
            if filter_kind == "filter_slice":
                rows = layout.rows_of_blocks(blocks)
                filter_slice = rng.random(rows.size) < 0.6
            expected = legacy_reference(
                z, x, blocks, layout, c, g, row_filter, filter_slice
            )
            for kernel in KERNEL_SPECS:
                counts, moved = count_window(
                    z, x, blocks, layout, c, g,
                    row_filter=row_filter, filter_slice=filter_slice,
                    codes=codes if kernel == "fused" else None,
                    kernel=kernel,
                )
                assert counts.dtype == np.int64
                assert moved >= 0
                np.testing.assert_array_equal(
                    counts, expected,
                    err_msg=f"kernel={kernel} subset={name} dtype={dtype}",
                )

    def test_empty_blocks(self):
        layout = BlockLayout(num_rows=100, block_size=10)
        z = np.zeros(100, dtype=np.uint8)
        for kernel in KERNEL_SPECS:
            counts, moved = count_window(
                z, z, np.empty(0, dtype=np.int64), layout, 3, 3, kernel=kernel
            )
            assert counts.shape == (3, 3) and counts.sum() == 0 and moved == 0

    def test_fused_single_run_unfiltered_moves_zero_bytes(self):
        layout = BlockLayout(num_rows=640, block_size=32)
        rng = np.random.default_rng(0)
        z = rng.integers(0, 6, size=640).astype(np.uint8)
        x = rng.integers(0, 4, size=640).astype(np.uint8)
        codes = build_pair_codes(z, x, 6, 4)
        blocks = np.arange(5, 15, dtype=np.int64)  # one contiguous run
        counts, moved = count_window(
            z, x, blocks, layout, 6, 4, codes=codes, kernel="fused"
        )
        assert moved == 0  # zero-copy slice view straight into bincount
        np.testing.assert_array_equal(
            counts, legacy_reference(z, x, blocks, layout, 6, 4)
        )

    def test_fused_and_narrow_move_fewer_bytes_than_classic(self):
        layout = BlockLayout(num_rows=4096, block_size=32)
        rng = np.random.default_rng(1)
        z = rng.integers(0, 10, size=4096).astype(np.uint8)
        x = rng.integers(0, 8, size=4096).astype(np.uint8)
        codes = build_pair_codes(z, x, 10, 8)
        blocks = np.arange(0, layout.num_blocks, 2, dtype=np.int64)
        _, classic = count_window(z, x, blocks, layout, 10, 8, kernel="classic")
        _, narrow = count_window(z, x, blocks, layout, 10, 8, kernel="narrow")
        _, fused = count_window(
            z, x, blocks, layout, 10, 8, codes=codes, kernel="fused"
        )
        assert narrow < 0.3 * classic  # no row-index array, no int64 upcast
        assert fused < narrow  # one narrow column instead of two

    def test_count_shard_wrapper_backward_compatible(self):
        layout = BlockLayout(num_rows=320, block_size=32)
        rng = np.random.default_rng(2)
        z = rng.integers(0, 5, size=320)
        x = rng.integers(0, 3, size=320)
        blocks = np.arange(10, dtype=np.int64)
        np.testing.assert_array_equal(
            count_shard(z, x, blocks, layout, 5, 3),
            legacy_reference(z, x, blocks, layout, 5, 3),
        )


class TestBuildPairCodes:
    def test_codes_are_narrow_and_read_only(self):
        z = np.array([0, 1, 2, 3], dtype=np.uint16)
        x = np.array([1, 0, 1, 0], dtype=np.uint16)
        codes = build_pair_codes(z, x, 4, 2)
        assert codes.dtype == np.dtype(np.uint8)
        np.testing.assert_array_equal(codes, [1, 2, 5, 6])
        assert not codes.flags.writeable

    def test_codes_exact_at_dtype_boundary(self):
        c, g = 16, 16  # 256 codes: the last one is exactly uint8 max
        z = np.array([15], dtype=np.uint8)
        x = np.array([15], dtype=np.uint8)
        codes = build_pair_codes(z, x, c, g)
        assert codes.dtype == np.dtype(np.uint8) and codes[0] == 255


# ---------------------------------------------------------------------------
# end-to-end identity: backends x kernels
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(77)
    n = 40_000
    candidates, groups = 12, 6
    z = rng.integers(0, candidates, size=n)
    x = np.empty(n, dtype=np.int64)
    for c in range(candidates):
        mask = z == c
        base = np.full(groups, 1.0 / groups)
        if c >= 2:
            base[c % groups] += 0.6
            base /= base.sum()
        x[mask] = rng.choice(groups, size=int(mask.sum()), p=base)
    schema = Schema(
        (
            CategoricalAttribute("product", tuple(f"p{i}" for i in range(candidates))),
            CategoricalAttribute("age", tuple(f"a{i}" for i in range(groups))),
            CategoricalAttribute("channel", ("web", "store")),
        )
    )
    return ColumnTable(
        schema,
        {"product": z, "age": x, "channel": rng.integers(0, 2, size=n)},
    )


QUERY = HistogramQuery(
    "product", "age", target=TargetSpec(kind="closest_to_uniform"), k=3,
    name="uniform",
)
FILTERED_QUERY = HistogramQuery(
    "product", "age", target=TargetSpec(kind="closest_to_uniform"), k=3,
    predicate=Equals("channel", 0), name="filtered",
)


def run_session(table, query, *, kernel, backend="serial", workers=None,
                profiler=None):
    config = HistSimConfig(k=query.k, epsilon=0.15, delta=0.05, sigma=0.0)
    with MatchSession(
        table, backend=backend, workers=workers, kernel=kernel,
        profiler=profiler,
    ) as session:
        return session.match(query, config=config, seed=5)


class TestEndToEndIdentity:
    @pytest.mark.parametrize("query", [QUERY, FILTERED_QUERY],
                             ids=["plain", "filtered"])
    def test_backends_x_kernels_byte_identical(self, table, query):
        baseline = run_session(table, query, kernel="classic")
        backends = [
            ("serial", None),
            ("threads", 2),
            ("sharded", 2),
        ]
        for backend, workers in backends:
            for kernel in KERNEL_SPECS:
                outcome = run_session(
                    table, query, kernel=kernel, backend=backend, workers=workers
                )
                report = outcome.report
                assert report.result.matching == baseline.report.result.matching
                np.testing.assert_array_equal(
                    report.result.histograms, baseline.report.result.histograms
                )
                np.testing.assert_array_equal(
                    report.result.distances, baseline.report.result.distances
                )
                # Same simulated clock and same observable effort: kernel
                # choice changes bytes moved, never the answer or the cost.
                assert report.elapsed_ns == baseline.report.elapsed_ns
                assert report.counters == baseline.report.counters

    def test_fused_profile_moves_measurably_fewer_bytes(self, table):
        moved = {}
        for kernel in ("classic", "fused"):
            profiler = Profiler()
            outcome = run_session(table, QUERY, kernel=kernel, profiler=profiler)
            moved[kernel] = outcome.report.profile["totals"]["bytes_moved"]
        assert moved["fused"] > 0  # filters/multi-run gathers still copy
        # The acceptance bar is >= 30% fewer bytes; in practice it is ~95%.
        assert moved["fused"] < 0.7 * moved["classic"]


# ---------------------------------------------------------------------------
# session-level pair-code artifact cache
# ---------------------------------------------------------------------------


class TestPairCodeCache:
    def test_fused_session_caches_and_reuses_codes(self, table):
        config = HistSimConfig(k=3, epsilon=0.15, delta=0.05, sigma=0.0)
        with MatchSession(table, kernel="fused") as session:
            first = session.prepared(QUERY, seed=5)
            assert first.pair_codes is not None
            assert first.pair_codes.dtype == pair_code_dtype(12, 6)
            assert session.cache_stats.misses.get("pair_codes") == 1
            # Same (z, x, layout, seed): the column is shared, not rebuilt.
            again = session.prepared(FILTERED_QUERY, seed=5)
            assert again.pair_codes is first.pair_codes
            assert session.cache_stats.hits.get("pair_codes") == 1
            session.match(QUERY, config=config, seed=5)

    def test_classic_session_builds_no_codes(self, table):
        with MatchSession(table, kernel="classic") as session:
            assert session.prepared(QUERY, seed=5).pair_codes is None
            assert "pair_codes" not in session.cache_stats.misses

    def test_eviction_releases_pair_codes(self, table):
        channel_query = HistogramQuery(
            "product", "channel", target=TargetSpec(kind="closest_to_uniform"),
            k=2, name="channel",
        )
        with MatchSession(table, kernel="fused") as session:
            prepared = session.prepared(QUERY, seed=5)
            nbytes = prepared.pair_codes.nbytes
            # A second entry over a different (z, x) pair: its own code
            # column, and QUERY stops being the protected most-recent entry.
            session.prepared(channel_query, seed=5)
            before = session.cache_bytes
            assert before >= nbytes
            assert session.evict_prepared((QUERY, session.block_size, 5))
            assert session.cache_stats.evictions.get("pair_codes") == 1
            assert session.cache_bytes <= before - nbytes

    def test_rejects_unknown_kernel(self, table):
        with pytest.raises(ValueError):
            MatchSession(table, kernel="turbo")


# ---------------------------------------------------------------------------
# affinity planning + placement
# ---------------------------------------------------------------------------


class TestAffinity:
    def test_none_disables(self):
        assert plan_affinity(None, 4) is None
        assert plan_affinity("none", 4) is None

    def test_spread_spaces_workers_evenly(self):
        cpus = tuple(range(8))
        assert plan_affinity("spread", 2, cpus) == [{0}, {4}]
        assert plan_affinity("spread", 4, cpus) == [{0}, {2}, {4}, {6}]

    def test_compact_packs_low_cpus(self):
        cpus = tuple(range(8))
        assert plan_affinity("compact", 3, cpus) == [{0}, {1}, {2}]

    def test_oversubscribed_wraps(self):
        cpus = (0, 1)
        assert plan_affinity("spread", 5, cpus) == [{0}, {1}, {0}, {1}, {0}]
        assert plan_affinity("compact", 5, cpus) == [{0}, {1}, {0}, {1}, {0}]

    def test_single_cpu_host(self):
        assert plan_affinity("spread", 3, (0,)) == [{0}, {0}, {0}]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            plan_affinity("diagonal", 2)
        with pytest.raises(ValueError):
            plan_affinity("spread", 0)

    def test_apply_affinity_best_effort(self):
        import os

        cpus = plan_affinity("compact", 1)
        if hasattr(os, "sched_setaffinity"):
            # Re-pinning ourselves to our own full CPU set must succeed.
            assert apply_affinity(0, set(os.sched_getaffinity(0)))
            assert not apply_affinity(0, {10**6})  # nonexistent CPU
        else:  # pragma: no cover - non-Linux
            assert apply_affinity(0, cpus[0]) is False

    def test_worker_pool_pins_and_counts(self):
        with WorkerPool(2, cpu_affinity="compact") as pool:
            import os

            expected = 2 if hasattr(os, "sched_setaffinity") else 0
            assert pool.affinity_applied == expected

    def test_thread_backend_pins_on_first_use(self, table):
        backend = ThreadPoolBackend(2, min_shard_rows=0, cpu_affinity="spread")
        try:
            outcome_a = run_session(table, QUERY, kernel="auto")
            config = HistSimConfig(k=3, epsilon=0.15, delta=0.05, sigma=0.0)
            with MatchSession(table, backend=backend, kernel="auto") as session:
                outcome_b = session.match(QUERY, config=config, seed=5)
            import os

            if hasattr(os, "sched_setaffinity"):
                assert backend.affinity_applied == 2
            assert backend.describe()["cpu_affinity"] == "spread"
            assert (
                outcome_b.report.result.matching
                == outcome_a.report.result.matching
            )
        finally:
            backend.close()

    def test_backend_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            ThreadPoolBackend(2, cpu_affinity="diagonal")
        with pytest.raises(ValueError):
            plan_affinity("diagonal", 2, (0, 1))


class TestMakeBackendAffinity:
    def test_policy_tuple_is_canonical(self):
        assert AFFINITY_POLICIES == ("none", "spread", "compact")

    def test_none_string_normalized(self):
        backend = make_backend("threads", 2, "none")
        try:
            assert backend.cpu_affinity is None
        finally:
            backend.close()

    def test_serial_rejects_affinity(self):
        with pytest.raises(ValueError):
            make_backend("serial", None, "spread")

    def test_instance_rejects_affinity_override(self):
        backend = ShardedBackend(2)
        try:
            with pytest.raises(ValueError):
                make_backend(backend, None, "spread")
        finally:
            backend.close()

    def test_worker_backends_accept_affinity(self):
        for spec in ("threads", "sharded"):
            backend = make_backend(spec, 2, "compact")
            try:
                assert backend.describe()["cpu_affinity"] == "compact"
            finally:
                backend.close()
