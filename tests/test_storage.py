"""Tests for the storage substrate: schema, table, blocks, shuffle, I/O, costs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    BinnedAttribute,
    BlockLayout,
    CategoricalAttribute,
    ColumnTable,
    CostModel,
    IOManager,
    Schema,
    shuffle_table,
)


class TestCategoricalAttribute:
    def test_encode_decode_roundtrip(self):
        attr = CategoricalAttribute("country", ("greece", "italy", "france"))
        codes = attr.encode(["italy", "greece", "france", "italy"])
        np.testing.assert_array_equal(codes, [1, 0, 2, 1])
        assert attr.decode(codes) == ["italy", "greece", "france", "italy"]

    def test_unknown_value(self):
        attr = CategoricalAttribute("c", ("a",))
        with pytest.raises(ValueError):
            attr.encode(["b"])

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError):
            CategoricalAttribute("c", ("a", "a"))

    def test_decode_range_check(self):
        attr = CategoricalAttribute("c", ("a", "b"))
        with pytest.raises(ValueError):
            attr.decode(np.array([2]))


class TestBinnedAttribute:
    def test_encoding_places_values_in_bins(self):
        attr = BinnedAttribute("hour", tuple(range(0, 25)))  # 24 bins
        assert attr.cardinality == 24
        codes = attr.encode(np.array([0.0, 0.5, 1.0, 23.99, 24.0]))
        np.testing.assert_array_equal(codes, [0, 0, 1, 23, 23])

    def test_out_of_range_raises(self):
        attr = BinnedAttribute("x", (0.0, 1.0))
        with pytest.raises(ValueError):
            attr.encode(np.array([-0.1]))
        with pytest.raises(ValueError):
            attr.encode(np.array([1.5]))

    def test_edges_must_increase(self):
        with pytest.raises(ValueError):
            BinnedAttribute("x", (0.0, 0.0, 1.0))

    def test_labels(self):
        attr = BinnedAttribute("x", (0.0, 0.5, 1.0))
        assert attr.values == ("[0, 0.5)", "[0.5, 1)")


class TestSchema:
    def test_lookup(self):
        a = CategoricalAttribute("z", ("p", "q"))
        schema = Schema((a,))
        assert schema["z"] is a
        assert "z" in schema and "w" not in schema
        assert schema.cardinality("z") == 2
        with pytest.raises(KeyError):
            schema["w"]

    def test_duplicate_names_rejected(self):
        a = CategoricalAttribute("z", ("p",))
        b = CategoricalAttribute("z", ("q",))
        with pytest.raises(ValueError):
            Schema((a, b))


def small_table(n=1000, seed=0):
    rng = np.random.default_rng(seed)
    schema = Schema(
        (
            CategoricalAttribute("z", tuple(f"z{i}" for i in range(7))),
            CategoricalAttribute("x", tuple(f"x{i}" for i in range(4))),
        )
    )
    cols = {
        "z": rng.integers(0, 7, size=n),
        "x": rng.integers(0, 4, size=n),
    }
    return ColumnTable(schema, cols)


class TestColumnTable:
    def test_num_rows_and_columns(self):
        t = small_table(123)
        assert len(t) == 123
        assert t.column("z").shape == (123,)

    def test_column_is_readonly(self):
        t = small_table()
        with pytest.raises(ValueError):
            t.column("z")[0] = 3

    def test_validates_codes(self):
        schema = Schema((CategoricalAttribute("z", ("a", "b")),))
        with pytest.raises(ValueError):
            ColumnTable(schema, {"z": np.array([0, 2])})

    def test_validates_schema_match(self):
        schema = Schema((CategoricalAttribute("z", ("a",)),))
        with pytest.raises(ValueError):
            ColumnTable(schema, {"w": np.array([0])})

    def test_ragged_columns_rejected(self):
        schema = Schema(
            (
                CategoricalAttribute("a", ("x",)),
                CategoricalAttribute("b", ("y",)),
            )
        )
        with pytest.raises(ValueError):
            ColumnTable(schema, {"a": np.zeros(2, dtype=int), "b": np.zeros(3, dtype=int)})

    def test_permuted_preserves_multiset(self):
        t = small_table()
        p = t.permuted(np.random.default_rng(1))
        np.testing.assert_array_equal(
            np.sort(t.column("z")), np.sort(p.column("z"))
        )
        # Row pairing preserved: joint (z, x) histogram identical.
        joint = lambda tab: np.bincount(tab.column("z") * 4 + tab.column("x"), minlength=28)
        np.testing.assert_array_equal(joint(t), joint(p))

    def test_value_counts(self):
        t = small_table()
        np.testing.assert_array_equal(
            t.value_counts("z"), np.bincount(t.column("z"), minlength=7)
        )


class TestBlockLayout:
    def test_block_math(self):
        layout = BlockLayout(num_rows=1000, block_size=150)
        assert layout.num_blocks == 7
        assert layout.block_bounds(0) == (0, 150)
        assert layout.block_bounds(6) == (900, 1000)  # short final block
        assert layout.block_rows(6) == 100
        assert layout.block_of_row(899) == 5
        assert layout.block_of_row(900) == 6

    def test_rows_of_blocks(self):
        layout = BlockLayout(num_rows=100, block_size=30)
        rows = layout.rows_of_blocks(np.array([0, 3]))
        np.testing.assert_array_equal(rows, list(range(30)) + list(range(90, 100)))

    def test_rows_of_blocks_empty(self):
        layout = BlockLayout(10, 3)
        assert layout.rows_of_blocks(np.array([], dtype=int)).size == 0

    def test_iter_chunks_wraps_exactly_once(self):
        layout = BlockLayout(num_rows=100, block_size=10)  # 10 blocks
        windows = list(layout.iter_chunks(start_block=7, chunk=4))
        covered = []
        for lo, hi in windows:
            covered.extend(range(lo, hi))
        assert sorted(covered) == list(range(10))
        assert len(covered) == 10  # no block visited twice
        assert windows[0] == (7, 10)

    def test_iter_chunks_from_zero(self):
        layout = BlockLayout(num_rows=95, block_size=10)
        windows = list(layout.iter_chunks(0, 4))
        assert windows == [(0, 4), (4, 8), (8, 10)]

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockLayout(-1, 10)
        with pytest.raises(ValueError):
            BlockLayout(10, 0)
        layout = BlockLayout(10, 3)
        with pytest.raises(ValueError):
            layout.block_bounds(4)
        with pytest.raises(ValueError):
            layout.block_of_row(10)

    @given(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=80)
    def test_iter_chunks_partition_property(self, rows, block_size, start, chunk):
        layout = BlockLayout(rows, block_size)
        start = start % layout.num_blocks
        covered = []
        for lo, hi in layout.iter_chunks(start, chunk):
            assert lo < hi
            covered.extend(range(lo, hi))
        assert sorted(covered) == list(range(layout.num_blocks))


class TestShuffledTable:
    def test_shuffle_table(self):
        t = small_table(500)
        s = shuffle_table(t, block_size=64, rng=np.random.default_rng(3))
        assert s.num_rows == 500
        assert s.num_blocks == 8
        assert 0 <= s.random_start_block(np.random.default_rng(4)) < 8

    def test_layout_mismatch_rejected(self):
        from repro.storage import ShuffledTable

        t = small_table(500)
        with pytest.raises(ValueError):
            ShuffledTable(t, BlockLayout(400, 64))


class TestCostModel:
    def test_block_read_cost(self):
        cm = CostModel(tuple_read_ns=10, block_overhead_ns=100)
        assert cm.block_read_cost(50) == pytest.approx(100 + 500)
        assert cm.block_read_cost(np.array([50, 30])) == pytest.approx(200 + 800)

    def test_scan_cost(self):
        cm = CostModel(tuple_read_ns=20, block_overhead_ns=0)
        assert cm.scan_cost(1_000_000, 100) == pytest.approx(20_000_000)

    def test_residency_threshold(self):
        cm = CostModel(l3_bytes=8 * 1024 * 1024, l3_residency_fraction=0.25)
        # 2 MiB effective: 347 candidates x 40_000 blocks = 1.7 MB -> resident
        assert cm.bitmaps_resident(347, 40_000)
        # 7641 candidates x 40_000 blocks = 38 MB -> not resident
        assert not cm.bitmaps_resident(7641, 40_000)

    def test_probe_cost_depends_on_residency(self):
        cm = CostModel(cacheline_dram_ns=100, cacheline_l3_ns=10)
        assert cm.probe_cost(5, resident=True) == pytest.approx(50)
        assert cm.probe_cost(5, resident=False) == pytest.approx(500)

    def test_lookahead_mark_cost_amortizes(self):
        cm = CostModel(cacheline_dram_ns=100, cacheline_l3_ns=10, bit_scan_ns=0.0)
        # 1024 blocks = 2 cache lines per candidate.
        batch = cm.lookahead_mark_cost(10, 1024, resident=False)
        assert batch == pytest.approx(10 * 2 * 100)
        # Per-block cost is far below one probe per block.
        assert batch / 1024 < cm.probe_cost(10, resident=False)

    def test_zero_active_is_free(self):
        cm = CostModel()
        assert cm.lookahead_mark_cost(0, 1024, True) == 0.0
        assert cm.lookahead_mark_cost(10, 0, True) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(tuple_read_ns=-1)
        with pytest.raises(ValueError):
            CostModel(l3_bytes=0)
        with pytest.raises(ValueError):
            CostModel(l3_residency_fraction=0.0)


class TestIOManager:
    def test_read_blocks_gathers_rows(self):
        t = small_table(300)
        s = shuffle_table(t, block_size=50, rng=np.random.default_rng(5))
        io = IOManager(s, CostModel())
        read = io.read_blocks(np.array([1, 3]), ("z", "x"))
        assert read.rows_read == 100
        assert read.blocks_read == 2
        np.testing.assert_array_equal(
            read.columns["z"], s.table.column("z")[np.r_[50:100, 150:200]]
        )
        assert read.cost_ns > 0
        assert io.total_rows_read == 100

    def test_short_final_block(self):
        t = small_table(120)
        s = shuffle_table(t, block_size=50, rng=np.random.default_rng(5))
        io = IOManager(s, CostModel())
        read = io.read_blocks(np.array([2]), ("z",))
        assert read.rows_read == 20

    def test_requires_sorted_unique(self):
        t = small_table(300)
        s = shuffle_table(t, block_size=50, rng=np.random.default_rng(5))
        io = IOManager(s, CostModel())
        with pytest.raises(ValueError):
            io.read_blocks(np.array([3, 1]), ("z",))
        with pytest.raises(ValueError):
            io.read_blocks(np.array([1, 1]), ("z",))

    def test_empty_request(self):
        t = small_table(300)
        s = shuffle_table(t, block_size=50, rng=np.random.default_rng(5))
        io = IOManager(s, CostModel())
        read = io.read_blocks(np.array([], dtype=int), ("z", "x"))
        assert read.rows_read == 0 and read.cost_ns == 0.0
        # Empty reads carry each column's schema dtype, so concatenating an
        # empty read with a real one never upcasts the compact encoding.
        for name in ("z", "x"):
            assert read.columns[name].dtype == s.table.column(name).dtype

    def test_read_cost_matches_read_blocks_accounting(self):
        t = small_table(300)
        s = shuffle_table(t, block_size=50, rng=np.random.default_rng(5))
        blocks = np.array([1, 3, 5])
        io_a, io_b = IOManager(s, CostModel()), IOManager(s, CostModel())
        read = io_a.read_blocks(blocks, ("z",))
        cost = io_b.read_cost(blocks)
        assert cost == read.cost_ns
        assert io_a.total_blocks_read == io_b.total_blocks_read
        assert io_a.total_rows_read == io_b.total_rows_read
        assert io_a.total_cost_ns == io_b.total_cost_ns
        with pytest.raises(ValueError):
            io_b.read_cost(np.array([3, 1]))
