"""Tests for the resumable HistSim stepper (core/histsim.py state machine).

The load-bearing property: step-driven execution is *identical* to
run-to-completion execution — same samples, same tests, same result — for
any step granularity, because the stepper calls the same stage methods in
the same order over a sampler that consumes a fixed scan order.
"""

import numpy as np
import pytest

from repro.core import (
    ArraySampler,
    HistSim,
    HistSimConfig,
    HistSimStepper,
    run_histsim,
)
from repro.core.histsim import Done, Stage1, Stage2Round, Stage3


def synth_population(rng, sizes, distributions):
    z_parts, x_parts = [], []
    for i, (size, dist) in enumerate(zip(sizes, distributions)):
        z_parts.append(np.full(size, i, dtype=np.int64))
        x_parts.append(rng.choice(len(dist), size=size, p=dist))
    return np.concatenate(z_parts), np.concatenate(x_parts)


def tilted(base, group, amount):
    out = np.array(base, dtype=float)
    out[group] += amount
    return out / out.sum()


@pytest.fixture
def population():
    """20 candidates, 8 groups; 3 near the target, the rest far."""
    rng = np.random.default_rng(1234)
    groups = 8
    target = np.full(groups, 1.0 / groups)
    dists = []
    for i in range(20):
        if i < 3:
            dists.append(tilted(target, i, 0.02))
        else:
            dists.append(tilted(target, i % groups, 0.9))
    z, x = synth_population(rng, [12_000] * 20, dists)
    return z, x, 20, groups, target


CONFIG = HistSimConfig(k=3, epsilon=0.12, delta=0.05, sigma=0.0, stage1_samples=5000)


def make_sampler(population, seed=7):
    z, x, candidates, groups, _ = population
    return ArraySampler(z, x, candidates, groups, np.random.default_rng(seed))


def assert_results_identical(a, b):
    """Byte-level equality of two MatchResults."""
    assert a.matching == b.matching
    assert np.array_equal(a.histograms, b.histograms)
    assert np.array_equal(a.distances, b.distances)
    assert a.pruned == b.pruned
    assert a.exact == b.exact
    assert a.stats == b.stats
    assert a.rounds == b.rounds


class TestStepRunEquivalence:
    def test_step_driven_matches_run(self, population):
        target = population[-1]
        via_run = HistSim(make_sampler(population), target, CONFIG).run()

        stepper = HistSimStepper(make_sampler(population), target, CONFIG)
        while not stepper.done:
            stepper.step()
        assert_results_identical(stepper.result, via_run)

    @pytest.mark.parametrize("max_step_rows", [200, 1000, 7919, 100_000])
    def test_bounded_steps_match_run(self, population, max_step_rows):
        """Splitting a round's sampling across steps changes nothing."""
        target = population[-1]
        via_run = HistSim(make_sampler(population), target, CONFIG).run()

        stepper = HistSimStepper(
            make_sampler(population), target, CONFIG, max_step_rows=max_step_rows
        )
        result = stepper.run_to_completion()
        assert_results_identical(result, via_run)

    def test_smaller_bound_takes_more_steps(self, population):
        target = population[-1]
        coarse = HistSimStepper(make_sampler(population), target, CONFIG)
        coarse.run_to_completion()
        fine = HistSimStepper(
            make_sampler(population), target, CONFIG, max_step_rows=200
        )
        fine.run_to_completion()
        assert fine.steps_taken > coarse.steps_taken

    def test_run_histsim_unchanged(self, population):
        """The convenience wrapper drives the same machinery."""
        target = population[-1]
        a = run_histsim(make_sampler(population), target, CONFIG)
        b = HistSim(make_sampler(population), target, CONFIG).run()
        assert_results_identical(a, b)


class TestStateMachine:
    def test_stage_progression(self, population):
        target = population[-1]
        stepper = HistSimStepper(make_sampler(population), target, CONFIG)
        assert isinstance(stepper.stage, Stage1)
        assert stepper.stage_name == "stage1"

        report = stepper.step()
        assert report.stage == "stage1"
        assert report.fresh_rows > 0
        assert isinstance(stepper.stage, Stage2Round)
        assert stepper.stage.round_index == 1
        assert stepper.stage.delta_upper == pytest.approx(CONFIG.stage_delta / 2)

        seen = [stepper.stage_name]
        while not stepper.done:
            stepper.step()
            seen.append(stepper.stage_name)
        # Stages only move forward: stage2* then stage3 then done.
        assert seen[-1] == "done"
        assert seen[-2] == "stage3"
        order = {"stage2": 0, "stage3": 1, "done": 2}
        ranks = [order[s] for s in seen]
        assert ranks == sorted(ranks)

    def test_final_step_reports_done(self, population):
        target = population[-1]
        stepper = HistSimStepper(make_sampler(population), target, CONFIG)
        reports = []
        while not stepper.done:
            reports.append(stepper.step())
        assert reports[-1].done
        assert all(not r.done for r in reports[:-1])
        assert stepper.steps_taken == len(reports)

    def test_result_before_done_raises(self, population):
        target = population[-1]
        stepper = HistSimStepper(make_sampler(population), target, CONFIG)
        with pytest.raises(RuntimeError, match="no result yet"):
            stepper.result

    def test_step_after_done_raises(self, population):
        target = population[-1]
        stepper = HistSimStepper(make_sampler(population), target, CONFIG)
        stepper.run_to_completion()
        assert isinstance(stepper.stage, Done)
        with pytest.raises(RuntimeError, match="already done"):
            stepper.step()

    def test_degenerate_alive_skips_stage2(self):
        """With |candidates| <= k, the machine goes stage1 -> stage3."""
        rng = np.random.default_rng(31)
        z, x = synth_population(rng, [1000] * 3, [np.array([0.5, 0.5])] * 3)
        sampler = ArraySampler(z, x, 3, 2, np.random.default_rng(32))
        config = HistSimConfig(k=5, epsilon=0.2, delta=0.05, sigma=0.0)
        stepper = HistSimStepper(sampler, np.array([0.5, 0.5]), config)
        stepper.step()
        assert isinstance(stepper.stage, Stage3)
        result = stepper.run_to_completion()
        assert len(result.matching) == 3
        assert result.stats.rounds == 0

    def test_wrapping_existing_algorithm(self, population):
        target = population[-1]
        algo = HistSim(make_sampler(population), target, CONFIG)
        stepper = HistSimStepper(algorithm=algo)
        result = stepper.run_to_completion()
        assert result.matching == tuple(sorted(result.matching, key=lambda c: list(result.matching).index(c)))
        assert algo.rounds  # the wrapped instance did the work

    def test_constructor_validation(self, population):
        target = population[-1]
        algo = HistSim(make_sampler(population), target, CONFIG)
        with pytest.raises(ValueError, match="not both"):
            HistSimStepper(make_sampler(population), target, algorithm=algo)
        with pytest.raises(ValueError, match="not both"):
            HistSimStepper(algorithm=algo, stats_cost=lambda stage, ops: None)
        with pytest.raises(ValueError, match="provide a sampler"):
            HistSimStepper()
        with pytest.raises(ValueError, match="max_step_rows"):
            HistSimStepper(make_sampler(population), target, CONFIG, max_step_rows=0)


class TestIncrementalSampling:
    """sample_until(max_rows=...) — the substrate the stepper relies on."""

    def test_array_sampler_incremental_identical(self, population):
        z, x, candidates, groups, _ = population
        whole = ArraySampler(z, x, candidates, groups, np.random.default_rng(5))
        split = ArraySampler(z, x, candidates, groups, np.random.default_rng(5))

        needed = np.full(candidates, 300.0)
        full = whole.sample_until(needed)

        total = np.zeros_like(full)
        remaining = needed.copy()
        while True:
            fresh = split.sample_until(remaining, max_rows=500)
            total += fresh
            remaining = np.maximum(remaining - fresh.sum(axis=1), 0.0)
            if fresh.sum() < 500:
                break
        assert np.array_equal(total, full)
        assert np.array_equal(whole.delivered_rows(), split.delivered_rows())

    def test_max_rows_bounds_delivery(self, population):
        z, x, candidates, groups, _ = population
        sampler = ArraySampler(
            z, x, candidates, groups, np.random.default_rng(5), batch_size=100
        )
        fresh = sampler.sample_until(np.full(candidates, 10_000.0), max_rows=250)
        # Delivery stops at the first batch boundary at/after the bound.
        assert 250 <= fresh.sum() <= 250 + 100
